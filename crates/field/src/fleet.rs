//! Fleets of seeded lifetimes → empirical survival curves and MTTF.
//!
//! Two execution engines produce the aggregate:
//!
//! * the **lane-packed engine** ([`crate::lane`]) — 64 lifetimes per
//!   packed array walk, the default for [`simulate_fleet`]; and
//! * the **golden per-trial engine** ([`simulate_fleet_golden`]) —
//!   one [`simulate_lifetime`] per trial, kept as the reference.
//!
//! Both derive per-lifetime seeds with [`bisram_exec::trial_seed`] and
//! merge integer partial tallies in chunk order, so they are
//! byte-identical to each other and across worker counts — the chunk
//! sizes differ (64 lanes vs [`bisram_exec::TRIAL_CHUNK`]), which is
//! fine because regrouping exact integer sums is associative. The
//! identity is asserted in this module's tests and in
//! `tests/determinism.rs`.

use crate::lane::simulate_lifetimes_lane;
use crate::sim::{simulate_lifetime, FailureCause, FieldConfig, LifetimeOutcome};
use bisram_exec::{resolve_jobs, run_chunked, trial_seed, TRIAL_CHUNK};
use bisram_mem::LANE_WIDTH;
use bisram_yield::reliability::SurvivalCurve;

/// Aggregate of `N` independent simulated lifetimes.
///
/// Equality is bit-exact: the float fields (`mttf_hours` and the curve)
/// compare via `f64::to_bits`, so two results are equal only when they
/// are byte-identical — the comparison the lane-vs-golden and
/// jobs-invariance contracts are stated in. (A derived `PartialEq`
/// would be `NaN`-hostile and only partial; all floats here are finite
/// ratios and trapezoid sums of finite grids, so total bit equality is
/// the honest relation.)
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Empirical survival curve `R̂(t)` on the session grid.
    pub curve: SurvivalCurve,
    /// Grid-censored MTTF, hours (see [`censored_mttf`]): a lower bound
    /// whenever any lifetime outlives the horizon.
    pub mttf_hours: f64,
    /// Lifetimes simulated.
    pub lifetimes: usize,
    /// Lifetimes that failed (or degraded) inside the horizon.
    pub deaths: usize,
    /// Deaths whose first cause was a faulty spare row.
    pub deaths_spare_fault: usize,
    /// Deaths whose first cause was spare exhaustion.
    pub deaths_exhausted: usize,
    /// Deaths whose first cause was non-converging repair.
    pub deaths_persist: usize,
    /// Maintenance sessions that ran across the whole fleet.
    pub sessions_run: u64,
    /// Quiet sessions skipped across the whole fleet.
    pub sessions_skipped: u64,
    /// Soft-upset alarms dismissed across the whole fleet.
    pub transients_dismissed: u64,
    /// Rows successfully remapped across the whole fleet.
    pub rows_repaired: u64,
}

impl PartialEq for FleetResult {
    fn eq(&self, other: &Self) -> bool {
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        self.mttf_hours.to_bits() == other.mttf_hours.to_bits()
            && self.curve.times_hours.len() == other.curve.times_hours.len()
            && bits(&self.curve.times_hours) == bits(&other.curve.times_hours)
            && bits(&self.curve.survival) == bits(&other.curve.survival)
            && self.lifetimes == other.lifetimes
            && self.deaths == other.deaths
            && self.deaths_spare_fault == other.deaths_spare_fault
            && self.deaths_exhausted == other.deaths_exhausted
            && self.deaths_persist == other.deaths_persist
            && self.sessions_run == other.sessions_run
            && self.sessions_skipped == other.sessions_skipped
            && self.transients_dismissed == other.transients_dismissed
            && self.rows_repaired == other.rows_repaired
    }
}

/// Bit-exact equality (see [`PartialEq`] impl) is reflexive, symmetric
/// and transitive, so the relation is total.
impl Eq for FleetResult {}

/// Per-chunk partial aggregate: every counter a worker accumulates
/// before the in-order merge. All fields are integers, so merging is
/// exact and the merged totals cannot depend on how work was split —
/// nor on the chunk size, which is why the lane engine (64-wide chunks)
/// and the golden engine ([`TRIAL_CHUNK`]-wide) aggregate identically.
#[derive(Debug, Clone)]
struct FleetPartial {
    alive: Vec<usize>,
    deaths: usize,
    deaths_spare_fault: usize,
    deaths_exhausted: usize,
    deaths_persist: usize,
    sessions_run: u64,
    sessions_skipped: u64,
    transients_dismissed: u64,
    rows_repaired: u64,
}

impl FleetPartial {
    fn new(grid_len: usize) -> Self {
        FleetPartial {
            alive: vec![0; grid_len],
            deaths: 0,
            deaths_spare_fault: 0,
            deaths_exhausted: 0,
            deaths_persist: 0,
            sessions_run: 0,
            sessions_skipped: 0,
            transients_dismissed: 0,
            rows_repaired: 0,
        }
    }

    fn absorb(&mut self, out: &LifetimeOutcome, times: &[f64]) {
        for (slot, &t) in self.alive.iter_mut().zip(times) {
            if out.alive_at(t) {
                *slot += 1;
            }
        }
        if out.failure_time_hours.is_some() {
            self.deaths += 1;
        }
        match out.failure_cause {
            Some(FailureCause::SpareFault) => self.deaths_spare_fault += 1,
            Some(FailureCause::SparesExhausted) => self.deaths_exhausted += 1,
            Some(FailureCause::FaultsPersist) => self.deaths_persist += 1,
            None => {}
        }
        self.sessions_run += out.sessions_run as u64;
        self.sessions_skipped += out.sessions_skipped as u64;
        self.transients_dismissed += out.transients_dismissed as u64;
        self.rows_repaired += out.rows_repaired as u64;
    }
}

/// Merges ordered partials into the final aggregate — shared by both
/// engines so the census math cannot diverge between them.
///
/// # Grid-censoring convention
///
/// The survival curve lives on the session grid `t_k = k·period`,
/// `k = 1..=sessions()`; a failure stamped exactly at `t_k` counts as
/// dead *at* `t_k` ([`LifetimeOutcome::alive_at`] uses strict `>`).
/// `mttf_hours` is the trapezoidal `∫R̂ dt` over that grid anchored at
/// `R̂(0) = 1` and truncated at the last grid point — a lower bound
/// whenever any lifetime outlives the horizon. Both engines inherit the
/// convention from this one function.
fn aggregate(partials: Vec<FleetPartial>, times: Vec<f64>, lifetimes: usize) -> FleetResult {
    let mut alive = vec![0usize; times.len()];
    let mut result = FleetResult {
        curve: SurvivalCurve::new(Vec::new(), Vec::new()),
        mttf_hours: 0.0,
        lifetimes,
        deaths: 0,
        deaths_spare_fault: 0,
        deaths_exhausted: 0,
        deaths_persist: 0,
        sessions_run: 0,
        sessions_skipped: 0,
        transients_dismissed: 0,
        rows_repaired: 0,
    };
    for p in partials {
        for (total, part) in alive.iter_mut().zip(&p.alive) {
            *total += part;
        }
        result.deaths += p.deaths;
        result.deaths_spare_fault += p.deaths_spare_fault;
        result.deaths_exhausted += p.deaths_exhausted;
        result.deaths_persist += p.deaths_persist;
        result.sessions_run += p.sessions_run;
        result.sessions_skipped += p.sessions_skipped;
        result.transients_dismissed += p.transients_dismissed;
        result.rows_repaired += p.rows_repaired;
    }
    let survival: Vec<f64> = alive.iter().map(|&a| a as f64 / lifetimes as f64).collect();
    result.curve = SurvivalCurve::new(times, survival);
    result.mttf_hours = censored_mttf(&result.curve);
    result
}

/// Runs `lifetimes` seeded lifetimes on the lane-packed engine and
/// aggregates them, fanning lane batches over the default worker count
/// (`BISRAM_JOBS`, else the CPU count — see
/// [`bisram_exec::resolve_jobs`]).
///
/// Per-lifetime seeds are derived from `base_seed` by
/// [`bisram_exec::trial_seed`], so fleets are reproducible (same
/// `base_seed` ⇒ same fleet, byte for byte) yet the individual streams
/// are decorrelated — and because the lane engine replays exactly the
/// golden per-trial streams, the result is also byte-identical to
/// [`simulate_fleet_golden`].
///
/// # Panics
///
/// Panics when `lifetimes` is zero (a survival fraction needs a
/// denominator).
pub fn simulate_fleet(config: &FieldConfig, lifetimes: usize, base_seed: u64) -> FleetResult {
    simulate_fleet_jobs(config, lifetimes, base_seed, resolve_jobs(None))
}

/// [`simulate_fleet`] with an explicit worker count.
///
/// Determinism contract: the result is byte-identical for every `jobs`
/// value *and* to the golden per-trial path. Each lifetime's RNG stream
/// depends only on `base_seed` and its index, lane-batch boundaries
/// depend only on the fleet size, and the integer partial aggregates
/// are merged in batch order.
///
/// # Panics
///
/// Panics when `lifetimes` or `jobs` is zero.
pub fn simulate_fleet_jobs(
    config: &FieldConfig,
    lifetimes: usize,
    base_seed: u64,
    jobs: usize,
) -> FleetResult {
    assert!(lifetimes > 0, "a fleet needs at least one lifetime");
    let times = config.session_times();
    // One executor task per lane batch: trials i..i+64 share a packed
    // walk. A final ragged batch (fleet size not divisible by 64) simply
    // runs with fewer lanes.
    let partials = run_chunked(jobs, lifetimes, LANE_WIDTH, |range| {
        let mut p = FleetPartial::new(times.len());
        let seeds: Vec<u64> = range.map(|i| trial_seed(base_seed, i)).collect();
        for out in simulate_lifetimes_lane(config, &seeds) {
            p.absorb(&out, &times);
        }
        p
    });
    aggregate(partials, times, lifetimes)
}

/// The golden reference: one scalar [`simulate_lifetime`] per trial,
/// default worker count. Kept alongside the lane engine so the
/// byte-identity contract stays checkable forever.
///
/// # Panics
///
/// Panics when `lifetimes` is zero.
pub fn simulate_fleet_golden(
    config: &FieldConfig,
    lifetimes: usize,
    base_seed: u64,
) -> FleetResult {
    simulate_fleet_golden_jobs(config, lifetimes, base_seed, resolve_jobs(None))
}

/// [`simulate_fleet_golden`] with an explicit worker count.
///
/// # Panics
///
/// Panics when `lifetimes` or `jobs` is zero.
pub fn simulate_fleet_golden_jobs(
    config: &FieldConfig,
    lifetimes: usize,
    base_seed: u64,
    jobs: usize,
) -> FleetResult {
    assert!(lifetimes > 0, "a fleet needs at least one lifetime");
    let times = config.session_times();
    let partials = run_chunked(jobs, lifetimes, TRIAL_CHUNK, |range| {
        let mut p = FleetPartial::new(times.len());
        for i in range {
            p.absorb(&simulate_lifetime(config, trial_seed(base_seed, i)), &times);
        }
        p
    });
    aggregate(partials, times, lifetimes)
}

/// Trapezoidal `∫R dt` over the curve's grid, anchored at `R(0) = 1`,
/// truncated at the last grid point — an MTTF lower bound under
/// censoring (see [`aggregate`] for the full grid-censoring
/// convention). Works on analytic samples too, which makes empirical
/// and analytic MTTF comparable on the same grid.
///
/// Returns 0 for an empty curve.
pub fn censored_mttf(curve: &SurvivalCurve) -> f64 {
    let mut acc = 0.0;
    let mut prev_t = 0.0;
    let mut prev_r = 1.0;
    for (&t, &r) in curve.times_hours.iter().zip(curve.survival.iter()) {
        acc += 0.5 * (prev_r + r) * (t - prev_t);
        prev_t = t;
        prev_r = r;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SparePolicy;
    use bisram_mem::ArrayOrg;

    fn config(spares: usize) -> FieldConfig {
        let org = ArrayOrg::new(32, 2, 2, spares).expect("valid test geometry");
        FieldConfig::new(org, 9.0e-7, 10_000.0, 120_000.0)
    }

    #[test]
    fn fleet_is_reproducible_and_monotone() {
        let cfg = config(4);
        let a = simulate_fleet(&cfg, 64, 0xF1EE7);
        let b = simulate_fleet(&cfg, 64, 0xF1EE7);
        assert_eq!(a, b);
        assert!(a
            .curve
            .survival
            .windows(2)
            .all(|w| w[0] >= w[1]), "survival never increases: {:?}", a.curve.survival);
        assert!(a.curve.survival.iter().all(|r| (0.0..=1.0).contains(r)));
        assert_eq!(a.lifetimes, 64);
        assert!(a.deaths <= a.lifetimes);
    }

    #[test]
    fn parallel_fleets_are_byte_identical_across_job_counts() {
        let cfg = config(3);
        let one = simulate_fleet_jobs(&cfg, 40, 0xBAD5EED, 1);
        let two = simulate_fleet_jobs(&cfg, 40, 0xBAD5EED, 2);
        let eight = simulate_fleet_jobs(&cfg, 40, 0xBAD5EED, 8);
        assert_eq!(one, two);
        assert_eq!(one, eight);
        // And the defaulted entry point agrees with all of them.
        assert_eq!(one, simulate_fleet(&cfg, 40, 0xBAD5EED));
    }

    #[test]
    fn lane_and_golden_engines_are_byte_identical() {
        // The tentpole contract, on fleet sizes straddling the lane
        // width and with enough fault pressure that repairs, deaths and
        // exhaustion all occur.
        for spares in [1, 4] {
            let mut cfg = config(spares);
            cfg.lambda_per_hour = 2.0e-6;
            for lifetimes in [1, 63, 64, 65, 130] {
                let lane = simulate_fleet_jobs(&cfg, lifetimes, 0xF1EE7, 2);
                let golden = simulate_fleet_golden_jobs(&cfg, lifetimes, 0xF1EE7, 2);
                assert_eq!(
                    lane, golden,
                    "spares={spares} lifetimes={lifetimes}: engines diverged"
                );
            }
        }
    }

    #[test]
    fn lane_and_golden_agree_under_upsets_and_opportunistic_policy() {
        // Soft upsets consume extra RNG draws and the opportunistic
        // policy exercises the degradation path — both must stay aligned
        // draw for draw.
        let mut cfg = config(2);
        cfg.lambda_per_hour = 2.0e-6;
        cfg.transient_upset_probability = 0.2;
        cfg.spare_policy = SparePolicy::Opportunistic;
        let lane = simulate_fleet_jobs(&cfg, 70, 0xA11CE, 4);
        let golden = simulate_fleet_golden_jobs(&cfg, 70, 0xA11CE, 4);
        assert_eq!(lane, golden);
        cfg.max_retries = 0; // the signature-only dismissal corner
        let lane = simulate_fleet_jobs(&cfg, 70, 0xA11CE, 4);
        let golden = simulate_fleet_golden_jobs(&cfg, 70, 0xA11CE, 4);
        assert_eq!(lane, golden);
    }

    #[test]
    fn censored_mttf_of_constant_one_is_the_horizon() {
        let curve = SurvivalCurve::new(vec![10.0, 20.0, 30.0], vec![1.0, 1.0, 1.0]);
        assert!((censored_mttf(&curve) - 30.0).abs() < 1e-12);
        let empty = SurvivalCurve::new(Vec::new(), Vec::new());
        assert_eq!(censored_mttf(&empty), 0.0);
    }

    #[test]
    fn immortal_fleet_survives_everywhere() {
        let mut cfg = config(2);
        cfg.lambda_per_hour = 0.0;
        let fleet = simulate_fleet(&cfg, 8, 1);
        assert_eq!(fleet.deaths, 0);
        assert!(fleet.curve.survival.iter().all(|&r| r == 1.0));
        assert!((fleet.mttf_hours - cfg.horizon_hours).abs() < 1e-9);
    }
}
