//! The lane scheduler: up to 64 device lifetimes simulated in lockstep.
//!
//! [`simulate_lifetimes_lane`] is the batched counterpart of
//! [`crate::simulate_lifetime`]: one packed array walk per session
//! advances a whole batch, with per-lane RNG streams, TLBs and outcome
//! bookkeeping. It is bit-exact against the golden scalar path — every
//! per-lane [`LifetimeOutcome`] field matches `simulate_lifetime` of the
//! same seed, except that the event log is not materialized (fleet
//! aggregation never reads it, and building 64 interleaved logs would
//! cost more than the simulation).
//!
//! # Why lockstep batching is exact, not approximate
//!
//! The in-field fault population is per-cell stuck-at only (one
//! first-hit arrival per physical row), which collapses the scalar
//! engine's screen → retry → diagnose ladder into one packed run:
//!
//! * A transparent run leaves a stuck-at-only memory *unchanged* (stuck
//!   cells already hold their stuck value, everything else is restored),
//!   so the scalar path's bounded re-screens are provably identical
//!   re-runs. The retry classification therefore needs no extra walks:
//!   an alarm is a transient iff `max_retries >= 1` and the *memory*
//!   signature (before any soft-upset flip) was clean.
//! * The same invariance means the word-exact diagnosis the scalar path
//!   runs as a separate pass reads the same state — so the packed run
//!   computes signatures and per-row mismatch masks in one pass
//!   ([`bisram_bist::lane::run_transparent_lanes`]).
//! * Lanes are fully independent (no shared cells, masked writes), so
//!   devices at different points of their repair history coexist in one
//!   walk; lanes that fail fatally retire from the active mask and cost
//!   nothing afterwards.
//!
//! Session skipping, soft-upset draws, the pessimistic spare screen,
//! incremental repair through per-lane TLBs, degradation to detect-only
//! and the repair-round bound all follow the golden control flow
//! decision for decision — in the same RNG draw order, which is what
//! the byte-identity tests in `fleet.rs` and `tests/determinism.rs`
//! pin down.

use crate::sim::{
    sample_arrivals, Arrival, DegradationState, FailureCause, FieldConfig, LifetimeOutcome,
    SparePolicy,
};
use bisram_bist::lane::{march_row_lanes, run_transparent_lanes, LaneRowMap};
use bisram_bist::RowMap;
use bisram_mem::{lane_mask, FaultKind, LaneSram, ALL_LANES, LANE_WIDTH};
use bisram_repair::{Tlb, TlbError};
use bisram_rng::rngs::StdRng;
use bisram_rng::{Rng, SeedableRng};

/// Iterates the set lane indices of a mask, ascending.
fn lanes(mask: u64) -> impl Iterator<Item = usize> {
    let mut m = mask;
    std::iter::from_fn(move || {
        if m == 0 {
            None
        } else {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            Some(l)
        }
    })
}

/// Simulates one lifetime per seed (at most [`LANE_WIDTH`]) in lockstep,
/// returning the outcomes in seed order.
///
/// Each outcome equals `simulate_lifetime(config, seeds[i])` field for
/// field, except `events`, which is left empty (see module docs).
///
/// # Panics
///
/// Panics when `seeds` is empty or holds more than [`LANE_WIDTH`]
/// entries.
pub fn simulate_lifetimes_lane(config: &FieldConfig, seeds: &[u64]) -> Vec<LifetimeOutcome> {
    assert!(
        !seeds.is_empty() && seeds.len() <= LANE_WIDTH,
        "a lane batch holds 1..=64 lifetimes"
    );
    let org = config.org;
    let n = seeds.len();

    // Per-lane streams: RNG, pre-sampled arrivals, arrival cursor, TLB.
    let mut rngs: Vec<StdRng> = seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect();
    let arrivals: Vec<Vec<Arrival>> = rngs
        .iter_mut()
        .map(|rng| sample_arrivals(config, rng))
        .collect();
    let mut next_arrival = vec![0usize; n];
    let mut tlbs: Vec<Tlb> = (0..n)
        .map(|_| Tlb::new(org.rows(), org.spare_rows()))
        .collect();
    let mut outs: Vec<LifetimeOutcome> = vec![LifetimeOutcome::default(); n];
    // Per logical row: lanes holding that row in their unrepairable map.
    let mut unrep: Vec<u64> = vec![0; org.rows()];

    // Shared packed memory with the golden path's resident user data.
    let mut sram = LaneSram::new(org);
    let data_mask = if org.bpw() >= 64 {
        u64::MAX
    } else {
        (1u64 << org.bpw()) - 1
    };
    for addr in 0..org.words() {
        let (row, col) = org.split(addr);
        sram.write_word_uniform(row, col, addr as u64 & data_mask);
    }

    // Lane status masks. `alive`: not fatally failed (the golden path's
    // `break 'sessions`); `clean`: last session screened clean (fresh
    // silicon counts as clean); `detect_only`: degraded lanes.
    let mut alive = lane_mask(n);
    let mut clean = alive;
    let mut detect_only = 0u64;

    for k in 1..=config.sessions() {
        if alive == 0 {
            break; // every lane retired: the batch is done early
        }
        let t = k as f64 * config.session_period_hours;

        // Activate every defect that arrived inside this window. The
        // in-field stream is stuck-at only; injection at the session
        // instant equals the golden stage-then-activate (nothing reads
        // the array in between).
        let mut activated = 0u64;
        for l in lanes(alive) {
            let bit = 1u64 << l;
            let arr = &arrivals[l];
            while next_arrival[l] < arr.len() && arr[next_arrival[l]].time_hours <= t {
                let a = arr[next_arrival[l]];
                if let FaultKind::StuckAt(v) = a.fault.kind {
                    sram.inject_stuck(a.fault.cell, if v { ALL_LANES } else { 0 }, bit);
                }
                next_arrival[l] += 1;
                activated |= bit;
            }
        }

        // Soft-upset draws — one per alive lane per session whenever the
        // probability is positive, exactly the golden draw order.
        let mut upset = 0u64;
        if config.transient_upset_probability > 0.0 {
            for l in lanes(alive) {
                if rngs[l].gen_bool(config.transient_upset_probability) {
                    upset |= 1u64 << l;
                }
            }
        }

        // Quiet-session skip per lane.
        let run_mask = alive & (activated | upset | !clean);
        for l in lanes(alive & !run_mask) {
            outs[l].sessions_skipped += 1;
        }
        for l in lanes(run_mask) {
            outs[l].sessions_run += 1;
        }
        if run_mask == 0 {
            continue;
        }

        let mut session = run_mask;

        // Pessimistic policy: destructively march the spares no repair is
        // using yet. Decomposed per spare row — each running lane marches
        // exactly its own unused spares, which is op-for-op what the
        // scalar row-subset march does to that lane's cells.
        if config.spare_policy == SparePolicy::Pessimistic {
            let mut fatal = 0u64;
            for s in 0..org.spare_rows() {
                let mut marchers = 0u64;
                for l in lanes(session) {
                    if tlbs[l].used() <= s {
                        marchers |= 1u64 << l;
                    }
                }
                if marchers != 0 {
                    fatal |=
                        march_row_lanes(&config.test, &mut sram, org.rows() + s, marchers);
                }
            }
            for l in lanes(fatal) {
                fail_lane(&mut outs[l], t, FailureCause::SpareFault);
            }
            alive &= !fatal;
            session &= !fatal;
        }

        // Degraded lanes only diagnose; healthy lanes run the repair
        // loop. Both share the first packed transparent run.
        let detect_run = session & detect_only;
        let mut loop_mask = session & !detect_only;
        let mut upset_pending = upset & loop_mask;
        let mut rounds = vec![0usize; n];
        let mut round = 0usize;

        loop {
            let run_set = loop_mask | if round == 0 { detect_run } else { 0 };
            if run_set == 0 {
                break;
            }
            let map = build_lane_map(&tlbs, run_set);
            let mut res = run_transparent_lanes(&config.test, &mut sram, &map, run_set);

            if round == 0 && detect_run != 0 {
                // Detect-only operation: extend the unrepairable map from
                // the word-exact mismatches, nothing more. Never clean.
                for (u, &f) in unrep.iter_mut().zip(&res.row_faults) {
                    *u |= f & detect_run;
                }
                clean &= !detect_run;
            }
            if loop_mask == 0 {
                break;
            }

            // Signature-level memory detection — evaluated before any
            // soft-upset flip, which is what the golden path's retries
            // converge to (a transparent re-run is an identical re-run).
            let memory_detected = res.detected_lanes(loop_mask);
            for l in lanes(upset_pending) {
                // Same draw expression as the golden path, so the stream
                // stays aligned: `1u64 << rng.gen_range(0..64)`.
                let flip: u64 = 1u64 << rngs[l].gen_range(0..64);
                res.observed
                    .flip_signature_bit(flip.trailing_zeros() as usize, 1u64 << l);
            }
            upset_pending = 0;
            let detected = res.detected_lanes(loop_mask);

            // Clean screens end the lane's session.
            let clean_now = loop_mask & !detected;
            clean |= clean_now;
            loop_mask &= !clean_now;

            // Transient dismissal by re-screen: with at least one retry
            // allowed, an alarm with a clean memory signature is a soft
            // upset.
            let transient = if config.max_retries >= 1 {
                loop_mask & detected & !memory_detected
            } else {
                0
            };
            for l in lanes(transient) {
                outs[l].transients_dismissed += 1;
            }
            clean |= transient;
            loop_mask &= !transient;

            // Hard alarms: word-exact diagnosis, spare-backed check,
            // incremental repair — per lane, against the shared array.
            let mut exited = 0u64;
            for l in lanes(loop_mask) {
                let bit = 1u64 << l;
                let rows: Vec<usize> = (0..org.rows())
                    .filter(|&r| res.row_faults[r] & bit != 0)
                    .collect();
                if rows.is_empty() {
                    // Signature-only disturbance with nothing word-exact
                    // behind it (e.g. an upset with max_retries = 0).
                    outs[l].transients_dismissed += 1;
                    clean |= bit;
                    exited |= bit;
                    continue;
                }
                if config.spare_policy == SparePolicy::Pessimistic
                    && rows.iter().any(|&r| tlbs[l].is_mapped(r))
                {
                    fail_lane(&mut outs[l], t, FailureCause::SpareFault);
                    alive &= !bit;
                    exited |= bit;
                    continue;
                }
                // Incremental repair: capture each faulty row onto the
                // next spare and migrate its live data for this lane.
                let mut mapped = 0usize;
                let mut unmapped: Vec<usize> = Vec::new();
                for &r in &rows {
                    let source = tlbs[l].map_row(r);
                    match tlbs[l].capture(r) {
                        Ok(spare) => {
                            let dest = tlbs[l].spare_row(spare);
                            sram.copy_row_lane(source, dest, bit);
                            mapped += 1;
                        }
                        Err(TlbError::Exhausted { .. }) => unmapped.push(r),
                        Err(TlbError::RowOutOfRange { .. }) => {} // r < rows(): unreachable
                    }
                }
                outs[l].rows_repaired += mapped;
                if !unmapped.is_empty() {
                    if config.spare_policy == SparePolicy::Pessimistic {
                        fail_lane(&mut outs[l], t, FailureCause::SparesExhausted);
                        alive &= !bit;
                    } else {
                        degrade_lane(
                            &mut outs[l],
                            &mut detect_only,
                            &mut unrep,
                            bit,
                            t,
                            FailureCause::SparesExhausted,
                            &unmapped,
                        );
                        clean &= !bit;
                    }
                    exited |= bit;
                    continue;
                }
                if mapped == 0 {
                    degrade_lane(
                        &mut outs[l],
                        &mut detect_only,
                        &mut unrep,
                        bit,
                        t,
                        FailureCause::FaultsPersist,
                        &rows,
                    );
                    clean &= !bit;
                    exited |= bit;
                    continue;
                }
                rounds[l] += 1;
                if rounds[l] > org.spare_rows() + 1 {
                    degrade_lane(
                        &mut outs[l],
                        &mut detect_only,
                        &mut unrep,
                        bit,
                        t,
                        FailureCause::FaultsPersist,
                        &rows,
                    );
                    clean &= !bit;
                    exited |= bit;
                }
            }
            loop_mask &= !exited;
            round += 1;
        }
    }

    // Materialize the per-lane unrepairable maps (bitmask rows are
    // already sorted and deduplicated by construction).
    for (l, out) in outs.iter_mut().enumerate() {
        let bit = 1u64 << l;
        out.unrepairable_rows = (0..org.rows())
            .filter(|&r| unrep[r] & bit != 0)
            .collect();
    }
    outs
}

/// Stamps a fatal failure and retires the lane (the golden `fail` +
/// `break 'sessions`). Overwrites any earlier degradation stamp, exactly
/// like the scalar path.
fn fail_lane(out: &mut LifetimeOutcome, t: f64, cause: FailureCause) {
    out.failure_time_hours = Some(t);
    out.failure_cause = Some(cause);
}

/// Enters detect-only degraded operation for one lane; the first
/// degradation stamps the failure time, later ones only extend the
/// unrepairable map.
#[allow(clippy::too_many_arguments)]
fn degrade_lane(
    out: &mut LifetimeOutcome,
    detect_only: &mut u64,
    unrep: &mut [u64],
    lane_bit: u64,
    t: f64,
    cause: FailureCause,
    rows: &[usize],
) {
    if out.state == DegradationState::Healthy {
        out.state = DegradationState::DetectOnly;
        out.failure_time_hours = Some(t);
        out.failure_cause = Some(cause);
    }
    *detect_only |= lane_bit;
    for &r in rows {
        unrep[r] |= lane_bit;
    }
}

/// Builds the per-lane row map of the selected lanes from their TLBs.
fn build_lane_map(tlbs: &[Tlb], active: u64) -> LaneRowMap {
    let mut map = LaneRowMap::identity();
    for l in lanes(active) {
        let tlb = &tlbs[l];
        let mut rows: Vec<usize> = tlb.entries().map(|(row, _)| row).collect();
        rows.sort_unstable();
        rows.dedup();
        for row in rows {
            map.map_lane(row, tlb.map_row(row), 1u64 << l);
        }
    }
    map
}
