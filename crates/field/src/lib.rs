//! In-field operational-lifetime simulation for BISR'ed SRAMs.
//!
//! The analytic survivability model of paper §VIII ([`bisram_yield`]'s
//! `ReliabilityModel`) predicts `R(t)` from a constant per-bit failure
//! rate and the row-repair granularity. This crate *simulates* the same
//! scenario event by event against the live behavioural machinery:
//!
//! * latent defects arrive on physical rows at exponentially distributed
//!   times ([`bisram_mem::SramModel::stage_fault`]),
//! * a maintenance controller wakes up every `session_period_hours` and
//!   runs a *transparent* BIST session (Kebichi–Nicolaidis signature
//!   screen, [`bisram_bist::transparent`]) that preserves user data,
//! * signature alarms are retried a bounded number of times to separate
//!   soft upsets from hard faults, then diagnosed word-exactly and
//!   repaired incrementally through the TLB
//!   ([`bisram_repair::flow::incremental_repair`]),
//! * when the spares run out the device degrades gracefully into a
//!   detect-only mode with an unrepairable-region map — it never panics.
//!
//! [`simulate_fleet`] runs `N` seeded lifetimes and aggregates them into
//! an empirical survival curve `R̂(t)` plus a (grid-censored) MTTF, the
//! shape [`bisram_yield::reliability`] compares against its closed form.
//! Under the [`SparePolicy::Pessimistic`] accounting the two agree at
//! every session instant up to Monte-Carlo noise, reproducing Fig. 5's
//! early-life spare-count crossover from the simulator side.

// The whole point of this crate is running unattended for a simulated
// device lifetime: fallible paths return data, they do not unwrap.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod chip;
mod fleet;
mod lane;
mod sim;

pub use chip::{
    heterogeneous_chip, ChipConfig, ChipModel, ChipRepairReport, MacroReport, MacroSpec,
};
pub use fleet::{
    censored_mttf, simulate_fleet, simulate_fleet_golden, simulate_fleet_golden_jobs,
    simulate_fleet_jobs, FleetResult,
};
pub use lane::simulate_lifetimes_lane;
pub use sim::{
    simulate_lifetime, DegradationState, FailureCause, FieldConfig, FieldEvent, LifetimeOutcome,
    SparePolicy,
};
