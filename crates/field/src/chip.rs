//! Chip-level diagnosis and repair: many heterogeneous bisram macros
//! behind one shared BIST transport, one redundancy area budget.
//!
//! A chip instantiates macros of different organizations; a chip-level
//! BIST controller serializes each macro's march signature over a
//! shared scan link ([`bisram_diag::transport`]), diagnoses it
//! ([`bisram_diag::diagnose_signature`]), pools all macros' repair
//! demands and allocates spare rows globally under the chip's area
//! budget ([`bisram_repair::budget`]). Degradation is graceful and
//! *explicit*: every macro ends the run in a
//! [`DegradationState`] — repaired, detect-only (under-budget or
//! swamped), quarantined (transport never delivered a valid session)
//! or failed (repair applied, verification still dirty) — and a
//! defective link or macro never aborts the chip run.
//!
//! The run is deterministic bit-for-bit: per-macro RNG streams are
//! derived from the chip seed and macro index, phases execute through
//! [`bisram_exec::run_tasks`] (results in task order regardless of
//! worker count), and the [`ChipRepairReport`] renders identically
//! across 1, 2 or 8 workers.

use crate::DegradationState;
use bisram_bist::engine::{run_march, run_march_diagnose, MarchConfig};
use bisram_bist::march::{self, MarchTest};
use bisram_diag::{
    decode_signature, diagnose_signature, encode_signature, frames_valid, DiagnosisConfig,
    MacroDiagnosis, Transport, TransportError,
};
use bisram_exec::{resolve_jobs, run_tasks};
use bisram_mem::{random_faults, ArrayOrg, FaultMix, SramModel};
use bisram_repair::budget::{allocate_greedy, AllocationPlan, MacroDemand};
use bisram_repair::Tlb;
use bisram_rng::rngs::StdRng;
use bisram_rng::SeedableRng;

/// One macro instance on the chip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacroSpec {
    /// Instance name (unique per chip by construction).
    pub name: String,
    /// Array organization.
    pub org: ArrayOrg,
    /// Manufacturing defects injected at birth (random over the default
    /// fault mix, spare rows included).
    pub fault_count: usize,
    /// Area cost of one spare row in this macro, in chip budget units.
    pub row_cost: u64,
}

impl MacroSpec {
    /// A macro with the row cost derived from its physical row width
    /// (cells per row — the natural area proxy).
    pub fn new(name: impl Into<String>, org: ArrayOrg, fault_count: usize) -> Self {
        MacroSpec {
            name: name.into(),
            org,
            fault_count,
            row_cost: org.columns() as u64,
        }
    }
}

/// A deterministic heterogeneous chip: `n` macros cycling through a
/// palette of organizations, with seed-derived fault counts. The same
/// `(n, seed)` always produces the same chip.
pub fn heterogeneous_chip(n: usize, seed: u64) -> Vec<MacroSpec> {
    // Valid organizations (derived row count a power of two), small
    // enough that dictionary diagnosis stays fast chip-wide.
    let palette: Vec<ArrayOrg> = [
        ArrayOrg::new(256, 8, 4, 4),
        ArrayOrg::new(128, 8, 4, 2),
        ArrayOrg::new(256, 4, 8, 4),
        ArrayOrg::new(128, 16, 2, 2),
        ArrayOrg::new(64, 8, 2, 2),
    ]
    .into_iter()
    .flatten()
    .collect();
    (0..n)
        .map(|i| {
            let org = palette[i % palette.len()];
            // Cheap deterministic spread of 0..=3 faults per macro.
            let mixed = seed
                .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_mul(0xD1B5_4A32_D192_ED03);
            MacroSpec::new(format!("macro{i:03}"), org, (mixed >> 33) as usize % 4)
        })
        .collect()
}

/// Chip-run configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipConfig {
    /// The macros on the chip.
    pub macros: Vec<MacroSpec>,
    /// The shared BIST transport (fault injection + retry policy).
    pub transport: Transport,
    /// Chip-wide spare-row area budget, in the same units as
    /// [`MacroSpec::row_cost`].
    pub budget: u64,
    /// Chip seed: derives every macro's fault and transport RNG streams.
    pub seed: u64,
    /// Diagnostic march (IFA-13 by default — the only library march
    /// that uniquely separates stuck-open faults).
    pub test: MarchTest,
    /// Worker threads (`None` = `BISRAM_JOBS` or available parallelism).
    pub jobs: Option<usize>,
}

impl ChipConfig {
    /// A chip with a clean transport and the IFA-13 diagnostic march.
    pub fn new(macros: Vec<MacroSpec>, budget: u64, seed: u64) -> Self {
        ChipConfig {
            macros,
            transport: Transport::default(),
            budget,
            seed,
            test: march::ifa13(),
            jobs: None,
        }
    }
}

/// Per-macro outcome in the chip report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacroReport {
    /// Index of the macro on the chip.
    pub macro_index: usize,
    /// Instance name.
    pub name: String,
    /// Organization summary `words x bpw (bpc, spares)`.
    pub org: ArrayOrg,
    /// Final explicit state.
    pub state: DegradationState,
    /// Suspect cells the signature named.
    pub suspects: usize,
    /// Suspects with a non-empty candidate set.
    pub classified: usize,
    /// Suspects classified to a single exact kind.
    pub exact: usize,
    /// Faulty rows diagnosis demanded repairs for.
    pub rows_needed: usize,
    /// Rows granted by the global allocator.
    pub rows_granted: usize,
    /// Granted rows verified repaired through the TLB.
    pub rows_repaired: usize,
    /// Transport session attempts spent (1 = clean first try).
    pub transport_attempts: u32,
    /// Backoff cycles spent between transport retries.
    pub transport_backoff_cycles: u64,
    /// Last transport error seen (recorded even when a retry recovered).
    pub transport_error: Option<TransportError>,
}

/// The deterministic chip-level repair report.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipRepairReport {
    /// Per-macro outcomes, ascending by macro index.
    pub macros: Vec<MacroReport>,
    /// The global allocation plan.
    pub plan: AllocationPlan,
    /// Chip seed the run used.
    pub seed: u64,
    /// Name of the diagnostic march.
    pub test: String,
}

impl ChipRepairReport {
    /// Macros currently in `state`.
    pub fn count(&self, state: DegradationState) -> usize {
        self.macros.iter().filter(|m| m.state == state).count()
    }

    /// True when every macro ended in `Healthy`.
    pub fn fully_repaired(&self) -> bool {
        self.count(DegradationState::Healthy) == self.macros.len()
    }
}

impl std::fmt::Display for ChipRepairReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "chip repair report: {} macros, march {}, seed {:#x}",
            self.macros.len(),
            self.test,
            self.seed
        )?;
        writeln!(
            f,
            "budget {} units: spent {}, rows {}/{} granted",
            self.plan.budget, self.plan.spent, self.plan.rows_granted, self.plan.rows_requested
        )?;
        for s in [
            DegradationState::Healthy,
            DegradationState::DetectOnly,
            DegradationState::Quarantined,
            DegradationState::Failed,
        ] {
            writeln!(f, "  {:<12} {}", format!("{s}:"), self.count(s))?;
        }
        for m in &self.macros {
            writeln!(
                f,
                "{:<10} {:>5}x{:<3} {:<12} suspects {:>3} (classified {:>3}, exact {:>3}) rows {}/{}/{} xport {}t+{}c{}",
                m.name,
                m.org.words(),
                m.org.bpw(),
                m.state.to_string(),
                m.suspects,
                m.classified,
                m.exact,
                m.rows_repaired,
                m.rows_granted,
                m.rows_needed,
                m.transport_attempts,
                m.transport_backoff_cycles,
                match m.transport_error {
                    None => String::new(),
                    Some(e) => format!(" [{e}]"),
                },
            )?;
        }
        Ok(())
    }
}

/// What phase 1 (per-macro diagnosis over the transport) produces.
struct MacroRun {
    ram: SramModel,
    report: MacroReport,
    faulty_rows: Vec<usize>,
}

/// The chip under test-and-repair.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipModel {
    /// Run configuration.
    pub config: ChipConfig,
}

impl ChipModel {
    /// Builds the chip.
    pub fn new(config: ChipConfig) -> Self {
        ChipModel { config }
    }

    /// Runs the full chip flow: per-macro march + transport + diagnosis
    /// (parallel), global spare allocation (serial), repair application
    /// and verification (parallel). Never panics on injected transport
    /// or memory faults; every macro ends in an explicit state.
    pub fn diagnose_and_repair(&self) -> ChipRepairReport {
        let jobs = resolve_jobs(self.config.jobs);
        let cfg = &self.config;

        // Phase 1: diagnose every macro across the shared transport.
        let tasks: Vec<_> = cfg
            .macros
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let spec = spec.clone();
                move || diagnose_macro(&spec, i, cfg)
            })
            .collect();
        let mut runs = run_tasks(jobs, tasks);

        // Phase 2 (barrier): pool demands, allocate globally.
        let demands: Vec<MacroDemand> = runs
            .iter()
            .map(|r| MacroDemand {
                macro_index: r.report.macro_index,
                rows_needed: if r.report.state == DegradationState::Quarantined {
                    0 // no diagnosis: nothing to grant
                } else {
                    r.faulty_rows.len()
                },
                row_cost: cfg.macros[r.report.macro_index].row_cost,
                max_rows: r.ram.org().spare_rows(),
            })
            .collect();
        let plan = allocate_greedy(&demands, cfg.budget);

        // Phase 3: apply grants and verify, in parallel again.
        let repair_tasks: Vec<_> = runs
            .drain(..)
            .map(|run| {
                let grant = plan.rows_for(run.report.macro_index);
                move || repair_macro(run, grant, cfg)
            })
            .collect();
        let macros = run_tasks(jobs, repair_tasks);

        ChipRepairReport {
            macros,
            plan,
            seed: cfg.seed,
            test: cfg.test.name().to_owned(),
        }
    }
}

/// Derives the per-macro, per-purpose RNG seed. Depends only on the
/// chip seed, the macro index and the stream tag — never on scheduling.
fn derive_seed(chip_seed: u64, macro_index: usize, stream: u64) -> u64 {
    chip_seed
        ^ (macro_index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ stream.wrapping_mul(0xD1B5_4A32_D192_ED03)
}

fn diagnose_macro(spec: &MacroSpec, index: usize, cfg: &ChipConfig) -> MacroRun {
    let mut fault_rng = StdRng::seed_from_u64(derive_seed(cfg.seed, index, 1));
    let mut ram = SramModel::new(spec.org);
    ram.inject_all(random_faults(
        &mut fault_rng,
        &spec.org,
        spec.fault_count.min(spec.org.total_cells()),
        &FaultMix::default(),
    ));

    let mut report = MacroReport {
        macro_index: index,
        name: spec.name.clone(),
        org: spec.org,
        state: DegradationState::Healthy,
        suspects: 0,
        classified: 0,
        exact: 0,
        rows_needed: 0,
        rows_granted: 0,
        rows_repaired: 0,
        transport_attempts: 0,
        transport_backoff_cycles: 0,
        transport_error: None,
    };

    // Macro-side march, full failure log.
    let march_cfg = MarchConfig::default();
    let sig = run_march_diagnose(&cfg.test, &mut ram, &march_cfg, None);

    // Ship the signature across the shared link.
    let frames = encode_signature(&sig);
    let mut transport_rng = StdRng::seed_from_u64(derive_seed(cfg.seed, index, 2));
    let delivery = cfg
        .transport
        .deliver(&frames, &mut transport_rng, |f| frames_valid(f, &spec.org));
    report.transport_attempts = delivery.attempts;
    report.transport_backoff_cycles = delivery.backoff_cycles;
    report.transport_error = delivery.last_error;

    let decoded = delivery
        .payload
        .and_then(|words| decode_signature(&words, &spec.org, cfg.test.name()).ok());
    let Some(decoded) = decoded else {
        // Bounded retries exhausted (or frames undecodable): fence the
        // macro off and let the rest of the chip proceed.
        report.state = DegradationState::Quarantined;
        return MacroRun {
            ram,
            report,
            faulty_rows: Vec::new(),
        };
    };

    // Chip-side diagnosis (probes reach the macro in diagnostic mode).
    let dcfg = DiagnosisConfig::new(cfg.test.clone());
    let diagnosis: MacroDiagnosis = diagnose_signature(decoded, &mut ram, &dcfg);
    report.suspects = diagnosis.faults.len();
    report.classified = diagnosis.faults.iter().filter(|d| d.is_classified()).count();
    report.exact = diagnosis.faults.iter().filter(|d| d.is_exact()).count();
    let faulty_rows = diagnosis.faulty_rows();
    report.rows_needed = faulty_rows.len();
    MacroRun {
        ram,
        report,
        faulty_rows,
    }
}

fn repair_macro(mut run: MacroRun, grant: usize, cfg: &ChipConfig) -> MacroReport {
    let mut report = run.report;
    if report.state == DegradationState::Quarantined {
        return report;
    }
    report.rows_granted = grant.min(run.faulty_rows.len());
    if run.faulty_rows.is_empty() {
        // Signature clean: nothing to repair, nothing to verify.
        report.state = DegradationState::Healthy;
        return report;
    }

    let org = *run.ram.org();
    let target: Vec<usize> = run.faulty_rows.iter().copied().take(grant).collect();
    let mut tlb = Tlb::new(org.rows(), org.spare_rows());
    for &row in &target {
        if tlb.capture(row).is_err() {
            break;
        }
    }

    // Verify through the TLB; recapture granted rows that still fail
    // (their replacement spare was itself faulty). Bounded by the spare
    // count, so a hopeless macro converges to Failed instead of looping.
    let march_cfg = MarchConfig::default();
    let mut still: Vec<usize> = Vec::new();
    for _pass in 0..=org.spare_rows() {
        let out = run_march(&cfg.test, &mut run.ram, &march_cfg, Some(&tlb));
        still = out
            .faulty_rows()
            .into_iter()
            .filter(|r| target.contains(r))
            .collect();
        if still.is_empty() {
            break;
        }
        let mut progressed = false;
        for &row in &still {
            if tlb.capture(row).is_ok() {
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    report.rows_repaired = target.len() - still.len();
    report.state = if !still.is_empty() {
        DegradationState::Failed
    } else if report.rows_granted < run.faulty_rows.len() {
        DegradationState::DetectOnly
    } else {
        DegradationState::Healthy
    };
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisram_diag::TransportFaults;
    use bisram_mem::{column_failure, Fault, FaultKind};

    fn small_chip(n: usize, seed: u64, budget: u64) -> ChipConfig {
        ChipConfig::new(heterogeneous_chip(n, seed), budget, seed)
    }

    #[test]
    fn heterogeneous_chip_is_deterministic_and_varied() {
        let a = heterogeneous_chip(16, 7);
        let b = heterogeneous_chip(16, 7);
        assert_eq!(a, b);
        let orgs: std::collections::HashSet<_> =
            a.iter().map(|s| (s.org.words(), s.org.bpw())).collect();
        assert!(orgs.len() >= 3, "palette variety expected");
        assert!(a.iter().any(|s| s.fault_count > 0));
        // Names are unique.
        let names: std::collections::HashSet<_> = a.iter().map(|s| &s.name).collect();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn clean_transport_ample_budget_repairs_everything() {
        let cfg = small_chip(6, 11, u64::MAX);
        let report = ChipModel::new(cfg).diagnose_and_repair();
        assert_eq!(report.macros.len(), 6);
        for m in &report.macros {
            assert!(
                matches!(m.state, DegradationState::Healthy | DegradationState::DetectOnly),
                "{}: {:?}",
                m.name,
                m.state
            );
            assert_eq!(m.transport_attempts, 1);
            // Budget is unlimited, so rows_needed were all granted.
            assert_eq!(m.rows_granted, m.rows_needed.min(m.org.spare_rows()));
        }
        // Plan bookkeeping is self-consistent.
        let granted: usize = report.macros.iter().map(|m| m.rows_granted).sum();
        assert_eq!(granted, report.plan.rows_granted);
    }

    #[test]
    fn zero_budget_leaves_faulty_macros_detect_only() {
        let cfg = small_chip(6, 11, 0);
        let report = ChipModel::new(cfg).diagnose_and_repair();
        assert_eq!(report.plan.rows_granted, 0);
        for m in &report.macros {
            if m.rows_needed > 0 {
                assert_eq!(m.state, DegradationState::DetectOnly, "{}", m.name);
                assert_eq!(m.rows_repaired, 0);
            } else {
                assert_eq!(m.state, DegradationState::Healthy, "{}", m.name);
            }
        }
    }

    #[test]
    fn stuck_link_quarantines_without_chip_abort() {
        let mut cfg = small_chip(5, 3, u64::MAX);
        cfg.transport = Transport::with_faults(TransportFaults {
            stuck_bit: Some((7, true)),
            ..TransportFaults::none()
        });
        let report = ChipModel::new(cfg).diagnose_and_repair();
        // Every macro whose frames carry a 0 in bit 7 somewhere (i.e.
        // all of them — the magic header guarantees mixed bits) ends
        // quarantined, with retries exhausted; none panicked.
        for m in &report.macros {
            assert_eq!(m.state, DegradationState::Quarantined, "{}", m.name);
            assert_eq!(m.transport_attempts, 4);
            assert!(m.transport_backoff_cycles > 0);
        }
        assert_eq!(report.plan.rows_granted, 0, "no grants without diagnosis");
    }

    #[test]
    fn flaky_link_recovers_or_degrades_explicitly() {
        let mut cfg = small_chip(12, 23, u64::MAX);
        cfg.transport = Transport::with_faults(TransportFaults {
            drop_probability: 0.01,
            duplicate_probability: 0.01,
            timeout_probability: 0.2,
            ..TransportFaults::none()
        });
        let report = ChipModel::new(cfg).diagnose_and_repair();
        // Some macros needed retries; every macro has an explicit state.
        assert!(report.macros.iter().any(|m| m.transport_attempts > 1));
        for m in &report.macros {
            assert!(
                matches!(
                    m.state,
                    DegradationState::Healthy
                        | DegradationState::DetectOnly
                        | DegradationState::Quarantined
                        | DegradationState::Failed
                ),
                "{}",
                m.name
            );
        }
    }

    #[test]
    fn column_failure_ends_failed_because_spares_share_the_column() {
        // A column failure swamps the redundancy: every physical row —
        // spares included — has a faulty cell in that column, so row
        // repair can never verify clean. The macro must converge to an
        // explicit Failed, not loop (the paper's swamping scenario).
        let org = ArrayOrg::new(256, 8, 4, 4).unwrap();
        let cfg = ChipConfig::new(vec![MacroSpec::new("swamped", org, 0)], u64::MAX, 1);
        let model = ChipModel::new(cfg);
        // Drive the phase functions directly so the column failure can
        // be injected between diagnosis and repair.
        let spec = &model.config.macros[0];
        let mut run = diagnose_macro(spec, 0, &model.config);
        run.ram.inject_all(column_failure(&org, 3, 1, true));
        // Re-run the march with the column fault present.
        let sig = run_march_diagnose(
            &model.config.test,
            &mut run.ram,
            &MarchConfig::default(),
            None,
        );
        run.faulty_rows = sig.faulty_rows();
        run.report.rows_needed = run.faulty_rows.len();
        assert!(run.faulty_rows.len() > org.spare_rows());
        let report = repair_macro(run, org.spare_rows(), &model.config);
        assert_eq!(report.state, DegradationState::Failed);
    }

    #[test]
    fn more_faulty_rows_than_spares_degrades_detect_only() {
        // Six independent faulty rows, four spares: the grant is capped
        // at the physical spares, the granted rows verify clean, and the
        // macro ends detect-only with the shortfall explicit.
        let org = ArrayOrg::new(256, 8, 4, 4).unwrap();
        let cfg = ChipConfig::new(vec![MacroSpec::new("short", org, 0)], u64::MAX, 1);
        let spec = &cfg.macros[0];
        let mut run = diagnose_macro(spec, 0, &cfg);
        for row in [1, 5, 9, 13, 17, 21] {
            run.ram
                .inject(Fault::new(org.cell_at(row, 0, 0), FaultKind::StuckAt(true)));
        }
        let sig = run_march_diagnose(&cfg.test, &mut run.ram, &MarchConfig::default(), None);
        run.faulty_rows = sig.faulty_rows();
        run.report.rows_needed = run.faulty_rows.len();
        assert_eq!(run.faulty_rows.len(), 6);
        let grant = org.spare_rows();
        let report = repair_macro(run, grant, &cfg);
        assert_eq!(report.state, DegradationState::DetectOnly);
        assert_eq!(report.rows_repaired, grant);
        assert_eq!(report.rows_granted, grant);
    }

    #[test]
    fn faulty_spares_end_in_failed_not_a_loop() {
        // Every spare row is stuck: repair is granted in full, applied,
        // and verification can never pass — the macro must converge to
        // Failed in bounded passes.
        let org = ArrayOrg::new(64, 8, 2, 2).unwrap();
        let cfg = ChipConfig::new(vec![MacroSpec::new("badspares", org, 0)], u64::MAX, 5);
        let spec = &cfg.macros[0];
        let mut run = diagnose_macro(spec, 0, &cfg);
        // One regular-array faulty row + both spares faulty.
        run.ram
            .inject(Fault::new(org.cell_at(3, 0, 0), FaultKind::StuckAt(true)));
        for spare in org.rows()..org.total_rows() {
            run.ram
                .inject(Fault::new(org.cell_at(spare, 0, 0), FaultKind::StuckAt(true)));
        }
        let sig = run_march_diagnose(&cfg.test, &mut run.ram, &MarchConfig::default(), None);
        run.faulty_rows = sig.faulty_rows();
        run.report.rows_needed = run.faulty_rows.len();
        assert_eq!(run.faulty_rows, vec![3]);
        let report = repair_macro(run, 1, &cfg);
        assert_eq!(report.state, DegradationState::Failed);
        assert_eq!(report.rows_repaired, 0);
    }

    #[test]
    fn report_is_worker_count_invariant() {
        let mut cfg = small_chip(8, 99, 64);
        cfg.transport = Transport::with_faults(TransportFaults {
            drop_probability: 0.005,
            timeout_probability: 0.1,
            ..TransportFaults::none()
        });
        let run = |jobs: usize| {
            let mut c = cfg.clone();
            c.jobs = Some(jobs);
            ChipModel::new(c).diagnose_and_repair()
        };
        let serial = run(1);
        for jobs in [2, 8] {
            let parallel = run(jobs);
            assert_eq!(parallel, serial, "jobs={jobs}");
            assert_eq!(format!("{parallel}"), format!("{serial}"), "jobs={jobs}");
        }
    }
}
