//! Circuit-level models for the BISRAMGEN reproduction.
//!
//! The paper's tool has "built-in access to SPICE utilities": it sizes the
//! N and P transistors of critical gates to balance rise and fall times,
//! extracts and simulates leaf cells ahead of time, and extrapolates
//! timing, area and power guarantees for the overall RAM. This crate is
//! the stand-in for those utilities, built from scratch:
//!
//! * [`netlist`] — a transistor-level netlist database with subcircuit
//!   support and SPICE-deck export,
//! * [`le`] — a logical-effort delay model for the decoder and driver
//!   chains (used by the datasheet generator and the TLB delay study),
//! * [`elmore`] — Elmore delay over RC trees for bitlines and word lines,
//! * [`tran`] — a small modified-nodal-analysis transient simulator with
//!   level-1 MOS models, backward-Euler integration and Newton iteration;
//!   this is what "simulates" the current-mode sense amplifier of Fig. 3,
//! * [`sizing`] — the automatic P/N width balancing of paper §II.
//!
//! # Examples
//!
//! Balancing an inverter's pull-up against its pull-down:
//!
//! ```
//! use bisram_circuit::sizing;
//! use bisram_tech::Process;
//!
//! let p = Process::cda07();
//! let wn = 1.4e-6;
//! let wp = sizing::balanced_pmos_width(p.devices(), wn);
//! // The PMOS ends up wider by roughly the mobility ratio.
//! assert!(wp > 2.0 * wn && wp < 4.0 * wn);
//! ```

pub mod campath;
pub mod device;
pub mod elmore;
pub mod le;
pub mod netlist;
pub mod sizing;
pub mod snm;
pub mod tran;
pub mod variation;

pub use netlist::{DeviceKind, MosType, Netlist, NodeId};
pub use tran::{AdaptiveOptions, SimError, SolverStats, TranResult, TransientSim};
pub use variation::{OpCorner, VariationModel, VariedCell, VAR_DIM};
