//! Delay of the TLB's parallel CAM compare path.
//!
//! Paper §VI: "The TLB produces a modest delay penalty (of about 1.2 ns
//! with four spare rows and a 0.7-µm technology) for matching and
//! mapping the incoming addresses during normal operation. This small
//! delay, which is at least an order of magnitude smaller than the RAM
//! access time, will not result in stretching of the RAM access time."
//!
//! The modelled path: address buffer → per-bit XOR comparators (in
//! parallel across all TLB entries) → dynamic match-line discharge
//! (wired-NOR of `row_bits` pulldowns along the CAM row) → spare-select
//! priority tree → spare word-line driver. Buffers and gates use logical
//! effort; the match line uses Elmore delay with layout-derived wire
//! parasitics (the CAM bit cell is 34λ wide).

use crate::elmore;
use crate::le::{self, GateType, Path};
use bisram_tech::Process;

/// Breakdown of the TLB compare-and-map delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TlbTiming {
    /// Address buffering + XOR comparison (logical effort), seconds.
    pub compare_s: f64,
    /// Match-line discharge (Elmore), seconds.
    pub match_line_s: f64,
    /// Spare-select priority tree + word-line redrive, seconds.
    pub select_s: f64,
}

impl TlbTiming {
    /// Total path delay.
    pub fn total_s(&self) -> f64 {
        self.compare_s + self.match_line_s + self.select_s
    }
}

/// Evaluates the TLB compare path for an array with `row_bits` row
/// address bits and `spares` TLB entries.
///
/// # Panics
///
/// Panics for zero `row_bits` or `spares`.
pub fn tlb_delay(process: &Process, row_bits: u32, spares: usize) -> TlbTiming {
    assert!(row_bits >= 1, "need at least one address bit");
    assert!(spares >= 1, "need at least one TLB entry");
    let dev = process.devices();
    let lgate = process.gate_length_m();
    let tau = le::tau(dev, lgate);
    let lambda_m = process.rules().lambda() as f64 * 1e-9;

    // 1. Address buffer drives one XOR input per entry; buffer it in
    //    effort-4 stages.
    let branch = (2 * spares) as f64; // true + complement comparators
    let stages = Path::optimum_stage_count(branch);
    let per_stage_fanout = branch.powf(1.0 / stages as f64);
    let mut compare = Path::new(tau);
    for _ in 0..stages {
        compare = compare.stage(GateType::Inverter, per_stage_fanout);
    }
    // XOR comparator driving its match-line pulldown.
    compare = compare.stage(GateType::Xor2, 2.0);
    let compare_s = compare.delay_s();

    // 2. Match line: a metal1 line across `row_bits` CAM bits (34λ
    //    pitch), discharged through one pulldown, loaded by every bit's
    //    junction capacitance.
    let pulldown_w = 4.0 * lambda_m;
    let r_pd = dev.r_eff_n(pulldown_w, lgate);
    let bit_pitch = 34.0 * lambda_m;
    let line_len = row_bits as f64 * bit_pitch;
    let wire_w = 3.0 * lambda_m;
    let r_wire = dev.rsh_metal * line_len / wire_w;
    let c_wire = dev.cw_metal * line_len;
    let c_junctions = row_bits as f64 * dev.c_drain(pulldown_w, 3.0 * lambda_m);
    // Sense inverter at the end of the line.
    let c_sense = dev.c_gate(6.0 * lambda_m, lgate);
    let match_line_s =
        r_pd * (c_wire + c_junctions + c_sense) + elmore::wire_delay(r_wire, c_wire, c_sense);

    // 3. Priority select among the entries (latest-match-wins) and the
    //    spare word-line redrive.
    let depth = (spares as f64).log2().ceil().max(1.0) as usize;
    let mut select = Path::new(tau);
    for _ in 0..depth {
        select = select.stage(GateType::Nor(2), 2.0);
    }
    select = select.stage(GateType::Inverter, 4.0);
    let select_s = select.delay_s();

    TlbTiming {
        compare_s,
        match_line_s,
        select_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_lands_near_1_2_ns() {
        // 0.7 µm process, 1024 regular rows (10 row-address bits), 4
        // spares — the paper quotes "about 1.2 ns".
        let p = Process::cda07();
        let t = tlb_delay(&p, 10, 4).total_s();
        assert!(
            (0.4e-9..2.5e-9).contains(&t),
            "TLB delay {t:.3e} s is far from the paper's ~1.2 ns"
        );
    }

    #[test]
    fn delay_grows_with_entries() {
        let p = Process::cda07();
        let t4 = tlb_delay(&p, 10, 4).total_s();
        let t16 = tlb_delay(&p, 10, 16).total_s();
        assert!(t16 > t4, "more entries load the compare path");
    }

    #[test]
    fn delay_grows_with_address_width() {
        let p = Process::cda07();
        let narrow = tlb_delay(&p, 6, 4).match_line_s;
        let wide = tlb_delay(&p, 12, 4).match_line_s;
        assert!(wide > narrow);
    }

    #[test]
    fn finer_process_is_faster() {
        let t07 = tlb_delay(&Process::cda07(), 10, 4).total_s();
        let t05 = tlb_delay(&Process::cda05(), 10, 4).total_s();
        assert!(t05 < t07);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let t = tlb_delay(&Process::mosis06(), 9, 8);
        assert!((t.total_s() - (t.compare_s + t.match_line_s + t.select_s)).abs() < 1e-18);
        assert!(t.compare_s > 0.0 && t.match_line_s > 0.0 && t.select_s > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one TLB entry")]
    fn zero_spares_rejected() {
        tlb_delay(&Process::cda07(), 10, 0);
    }
}
