//! Static noise margin analysis of the 6T SRAM cell.
//!
//! A memory compiler must guarantee that the cell it tiles by the
//! million actually holds data: the hold and read static noise margins
//! (SNM) of the cross-coupled inverter pair, extracted from the
//! butterfly curves. Read SNM additionally loads the "low" storage node
//! through the access transistor from the precharged bitline — the
//! classic read-disturb mechanism that fixes the cell ratio (pulldown
//! strength over access strength).
//!
//! The voltage transfer curves come from the same level-1 device
//! equations as the transient simulator; the SNM is the side of the
//! largest square that fits inside a butterfly lobe, computed with the
//! standard 45°-rotation method.

use crate::device::level1_nmos_id_dc;
use bisram_tech::DeviceParams;

/// Geometry of the 6T cell's transistors (widths in metres; all devices
/// share the process gate length).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellGeometry {
    /// Pull-down NMOS width.
    pub w_pulldown: f64,
    /// Pull-up PMOS width.
    pub w_pullup: f64,
    /// Access NMOS width.
    pub w_access: f64,
    /// Gate length.
    pub l: f64,
}

impl CellGeometry {
    /// A standard cell for a process of gate length `l`: cell ratio 2
    /// (pulldown twice the access strength), minimum-strength pull-up.
    pub fn standard(l: f64) -> Self {
        CellGeometry {
            w_pulldown: 3.0 * l,
            w_pullup: 1.5 * l,
            w_access: 1.5 * l,
            l,
        }
    }

    /// The cell ratio (beta ratio): pulldown strength over access
    /// strength. Read stability demands a ratio comfortably above 1.
    pub fn cell_ratio(&self) -> f64 {
        self.w_pulldown / self.w_access
    }
}

/// Level-1 NMOS drain current in the DC (vgs, vds) convention — the
/// shared device model of [`crate::device`], with channel-length
/// modulation off for the butterfly curves.
fn nmos_id(vgs: f64, vds: f64, beta: f64, vt: f64) -> f64 {
    level1_nmos_id_dc(vgs, vds, beta, vt)
}

/// One transistor as the DC butterfly analyses see it: its conductance
/// factor `beta = kp·W/L` and its effective threshold magnitude (process
/// threshold plus any local-mismatch offset). The variation engine
/// builds these per device; the nominal path derives them from
/// [`CellGeometry`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosVar {
    /// `kp·W/L` (A/V²).
    pub beta: f64,
    /// Effective threshold magnitude (V).
    pub vt: f64,
}

/// One half-cell (inverter plus its access transistor) with per-device
/// parameters — the unit of asymmetry a mismatched 6T cell is built
/// from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InverterVar {
    /// Pull-down NMOS.
    pub pd: MosVar,
    /// Pull-up PMOS.
    pub pu: MosVar,
    /// Access NMOS (loads the output during a read).
    pub ax: MosVar,
}

impl InverterVar {
    /// The nominal half-cell of a symmetric geometry — exactly the
    /// betas/thresholds the golden [`analyze`] path computes.
    pub fn nominal(dev: &DeviceParams, geom: &CellGeometry) -> Self {
        InverterVar {
            pd: MosVar {
                beta: dev.kp_n * geom.w_pulldown / geom.l,
                vt: dev.vtn,
            },
            pu: MosVar {
                beta: dev.kp_p * geom.w_pullup / geom.l,
                vt: dev.vtp,
            },
            ax: MosVar {
                beta: dev.kp_n * geom.w_access / geom.l,
                vt: dev.vtn,
            },
        }
    }
}

/// DC transfer curve of one cell inverter: storage node voltage as a
/// function of the opposite node's voltage. With `read_access` the
/// output node is also pulled toward `vdd` through the access device
/// (bitline precharged high), which degrades the low level.
fn inverter_vtc(dev: &DeviceParams, geom: &CellGeometry, vin: f64, read_access: bool) -> f64 {
    inverter_vtc_var(dev.vdd, &InverterVar::nominal(dev, geom), vin, read_access)
}

/// [`inverter_vtc`] generalized to per-device parameters — the shared
/// implementation both the nominal and the variation-aware analyses
/// funnel through, so the zero-variation case is bit-identical to the
/// golden path by construction.
fn inverter_vtc_var(vdd: f64, inv: &InverterVar, vin: f64, read_access: bool) -> f64 {
    // Solve i_pullup(vout) + i_access(vout) - i_pulldown(vout) = 0 by
    // bisection; the net current is monotone in vout.
    let net = |vout: f64| {
        let i_dn = nmos_id(vin, vout, inv.pd.beta, inv.pd.vt);
        // PMOS pull-up: source at vdd, gate at vin.
        let i_up = nmos_id(vdd - vin, vdd - vout, inv.pu.beta, inv.pu.vt);
        // Access device from the precharged bitline (gate at vdd).
        let i_acc = if read_access {
            nmos_id(vdd - vout, vdd - vout, inv.ax.beta, inv.ax.vt)
        } else {
            0.0
        };
        i_up + i_acc - i_dn
    };
    let (mut lo, mut hi) = (0.0, vdd);
    // net(0) >= 0 (nothing pulls below ground), net(vdd) <= 0 when the
    // pulldown is on; handle the cutoff case where the output rails.
    if net(vdd) > 0.0 {
        return vdd;
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if net(mid) >= 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Test/debug access to the raw VTC (hidden from docs).
#[doc(hidden)]
pub fn debug_vtc(dev: &DeviceParams, geom: &CellGeometry, vin: f64, read_access: bool) -> f64 {
    inverter_vtc(dev, geom, vin, read_access)
}

/// A butterfly analysis result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseMargins {
    /// Hold (standby) static noise margin, volts.
    pub hold_snm: f64,
    /// Read static noise margin, volts.
    pub read_snm: f64,
}

/// Extracts hold and read SNM for a cell geometry.
pub fn analyze(dev: &DeviceParams, geom: &CellGeometry) -> NoiseMargins {
    NoiseMargins {
        hold_snm: lobe_snm(dev, geom, false),
        read_snm: lobe_snm(dev, geom, true),
    }
}

/// SNM of the butterfly formed by the VTC and its mirror: the largest
/// square inscribed in the upper-left lobe.
///
/// In the `(V1, V2)` plane the lobe's interior satisfies `V2 < f(V1)`
/// (below curve A) and `V1 > f(V2)` (right of curve B). With `f`
/// non-increasing, a square `[x0, x0+s] × [y0, y0+s]` fits exactly when
/// its lower-left corner touches curve B (`x0 = f(y0)`) and its
/// upper-right corner touches curve A (`y0 + s = f(x0 + s)`). The
/// residual `h(s) = f(x0 + s) − (y0 + s)` is positive at `s = 0` inside
/// the lobe (`f(f(y0)) > y0`) and strictly decreasing, so the
/// per-anchor side comes from a bisection; the SNM maximizes over the
/// `y0` anchors.
fn lobe_snm(dev: &DeviceParams, geom: &CellGeometry, read_access: bool) -> f64 {
    let vdd = dev.vdd;
    let f = |v: f64| inverter_vtc(dev, geom, v, read_access);
    lobe_var(vdd, &f, &f)
}

/// The inscribed-square search over one butterfly lobe, generalized to a
/// mismatched cell: curve A is `V2 = fa(V1)`, curve B is `V1 = fb(V2)`.
/// The square's lower-left corner rides curve B, its upper-right corner
/// curve A. The symmetric case passes the same curve twice and recovers
/// [`lobe_snm`] exactly.
fn lobe_var(vdd: f64, fa: &dyn Fn(f64) -> f64, fb: &dyn Fn(f64) -> f64) -> f64 {
    let n = 160;
    let mut snm: f64 = 0.0;
    for i in 0..=n {
        let y0 = vdd * i as f64 / n as f64;
        let x0 = fb(y0);
        let h = |s: f64| {
            if x0 + s > vdd || y0 + s > vdd {
                // The square would leave the supply window.
                return -1.0;
            }
            fa(x0 + s) - (y0 + s)
        };
        if h(0.0) <= 0.0 {
            continue; // outside the bistable lobe
        }
        let (mut lo, mut hi) = (0.0, vdd);
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if h(mid) >= 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        snm = snm.max(lo);
    }
    snm
}

/// Hold and read SNM of a mismatched cell given its two half-cells:
/// `inv[0]` drives node `q` from `qb`, `inv[1]` drives `qb` from `q`.
/// An asymmetric butterfly has two unequal lobes; the cell's margin is
/// the smaller one (the first noise polarity to flip the cell wins).
pub fn analyze_pair(vdd: f64, inv: &[InverterVar; 2]) -> NoiseMargins {
    let lobe_min = |read_access: bool| {
        let f0 = |v: f64| inverter_vtc_var(vdd, &inv[0], v, read_access);
        let f1 = |v: f64| inverter_vtc_var(vdd, &inv[1], v, read_access);
        lobe_var(vdd, &f0, &f1).min(lobe_var(vdd, &f1, &f0))
    };
    NoiseMargins {
        hold_snm: lobe_min(false),
        read_snm: lobe_min(true),
    }
}

/// Static write margin of a mismatched cell, volts: the smaller of the
/// two write directions. Positive means the write succeeds with room to
/// spare; at or below zero the access device cannot drag the '1' node
/// past the opposite inverter's trip point.
///
/// Per direction: the driven node stores '1' (so its pull-up fights with
/// the gate of the opposite node at 0) while the bitline is driven to
/// ground through the access device; `v_div` is the resulting divider
/// level, `v_trip` the opposite inverter's switching threshold
/// (`f(v) = v` crossing of its hold VTC), and the margin is
/// `v_trip − v_div`.
pub fn write_margin_pair(vdd: f64, inv: &[InverterVar; 2]) -> f64 {
    let side = |driven: &InverterVar, opposite: &InverterVar| {
        // Divider level of the driven '1' node: pull-up (gate at 0,
        // fully on) against the access device to the grounded bitline.
        let net_div = |v: f64| {
            let i_up = nmos_id(vdd, vdd - v, driven.pu.beta, driven.pu.vt);
            let i_ax = nmos_id(vdd, v, driven.ax.beta, driven.ax.vt);
            i_up - i_ax
        };
        let (mut lo, mut hi) = (0.0, vdd);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if net_div(mid) >= 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let v_div = 0.5 * (lo + hi);
        // Trip point of the opposite inverter's hold VTC: the VTC is
        // non-increasing, so g(v) = f(v) − v is strictly decreasing.
        let g = |v: f64| inverter_vtc_var(vdd, opposite, v, false) - v;
        let (mut lo, mut hi) = (0.0, vdd);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if g(mid) >= 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let v_trip = 0.5 * (lo + hi);
        v_trip - v_div
    };
    side(&inv[0], &inv[1]).min(side(&inv[1], &inv[0]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisram_tech::Process;

    fn dev() -> DeviceParams {
        Process::cda07().devices().clone()
    }

    #[test]
    fn vtc_is_a_proper_inverter() {
        let d = dev();
        let g = CellGeometry::standard(0.7e-6);
        let low_in = inverter_vtc(&d, &g, 0.0, false);
        let high_in = inverter_vtc(&d, &g, d.vdd, false);
        assert!(low_in > 0.95 * d.vdd, "output high: {low_in}");
        assert!(high_in < 0.05 * d.vdd, "output low: {high_in}");
        // Monotone non-increasing.
        let mut prev = f64::MAX;
        for i in 0..=20 {
            let v = inverter_vtc(&d, &g, d.vdd * i as f64 / 20.0, false);
            assert!(v <= prev + 1e-9);
            prev = v;
        }
    }

    #[test]
    fn read_degrades_the_low_level() {
        let d = dev();
        let g = CellGeometry::standard(0.7e-6);
        let hold_low = inverter_vtc(&d, &g, d.vdd, false);
        let read_low = inverter_vtc(&d, &g, d.vdd, true);
        assert!(
            read_low > hold_low + 0.05,
            "the access device must lift the low node: {read_low} vs {hold_low}"
        );
    }

    #[test]
    fn margins_are_plausible_for_a_5v_process() {
        let d = dev();
        let g = CellGeometry::standard(0.7e-6);
        let m = analyze(&d, &g);
        assert!(
            (0.3..2.5).contains(&m.hold_snm),
            "hold SNM {:.3} V implausible",
            m.hold_snm
        );
        assert!(m.read_snm > 0.1, "cell must be read-stable: {:.3}", m.read_snm);
        assert!(
            m.read_snm < m.hold_snm,
            "read SNM must be the smaller margin"
        );
    }

    #[test]
    fn stronger_pulldown_improves_read_stability() {
        let d = dev();
        let weak = CellGeometry {
            w_pulldown: 1.6e-6,
            ..CellGeometry::standard(0.7e-6)
        };
        let strong = CellGeometry {
            w_pulldown: 4.2e-6,
            ..CellGeometry::standard(0.7e-6)
        };
        let m_weak = analyze(&d, &weak);
        let m_strong = analyze(&d, &strong);
        assert!(
            m_strong.read_snm > m_weak.read_snm,
            "cell ratio must buy read margin: {:.3} vs {:.3}",
            m_strong.read_snm,
            m_weak.read_snm
        );
        assert!(strong.cell_ratio() > weak.cell_ratio());
    }

    /// The variation-aware pair analysis with two nominal half-cells
    /// must be bit-identical to the golden symmetric path — the pin the
    /// rare-event engine's zero-variation contract rests on.
    #[test]
    fn symmetric_pair_matches_golden_analyze_bitwise() {
        for p in Process::builtin() {
            let d = p.devices();
            let g = CellGeometry::standard(p.gate_length_m());
            let golden = analyze(d, &g);
            let inv = [InverterVar::nominal(d, &g); 2];
            let paired = analyze_pair(d.vdd, &inv);
            assert_eq!(golden.hold_snm.to_bits(), paired.hold_snm.to_bits(), "{}", p.name());
            assert_eq!(golden.read_snm.to_bits(), paired.read_snm.to_bits(), "{}", p.name());
        }
    }

    #[test]
    fn standard_cell_is_writable_on_every_builtin_process() {
        for p in Process::builtin() {
            let d = p.devices();
            let g = CellGeometry::standard(p.gate_length_m());
            let inv = [InverterVar::nominal(d, &g); 2];
            let wm = write_margin_pair(d.vdd, &inv);
            assert!(
                wm > 0.1 * d.vdd,
                "{}: write margin {wm:.3} V too small for a standard cell",
                p.name()
            );
        }
    }

    #[test]
    fn weaker_access_device_costs_write_margin() {
        let d = dev();
        let g = CellGeometry::standard(0.7e-6);
        let nominal = InverterVar::nominal(&d, &g);
        let mut weak_ax = nominal;
        weak_ax.ax.beta *= 0.5;
        weak_ax.ax.vt += 0.2;
        let wm_nom = write_margin_pair(d.vdd, &[nominal; 2]);
        let wm_weak = write_margin_pair(d.vdd, &[weak_ax; 2]);
        assert!(
            wm_weak < wm_nom,
            "a weak access transistor must hurt writability: {wm_weak:.3} vs {wm_nom:.3}"
        );
    }

    /// A one-sided threshold shift breaks the butterfly's symmetry: the
    /// two lobes differ and the reported margin is the smaller one, so
    /// it can only degrade relative to nominal.
    #[test]
    fn asymmetry_shrinks_the_reported_margin() {
        let d = dev();
        let g = CellGeometry::standard(0.7e-6);
        let nominal = InverterVar::nominal(&d, &g);
        let mut skewed = nominal;
        skewed.pd.vt += 0.25;
        let m_nom = analyze_pair(d.vdd, &[nominal; 2]);
        let m_skew = analyze_pair(d.vdd, &[skewed, nominal]);
        assert!(
            m_skew.read_snm < m_nom.read_snm,
            "mismatch must shrink read SNM: {:.3} vs {:.3}",
            m_skew.read_snm,
            m_nom.read_snm
        );
    }

    #[test]
    fn every_builtin_process_yields_a_stable_standard_cell() {
        for p in Process::builtin() {
            let g = CellGeometry::standard(p.gate_length_m());
            let m = analyze(p.devices(), &g);
            assert!(
                m.read_snm > 0.05,
                "{}: read SNM {:.3} V — cell not usable",
                p.name(),
                m.read_snm
            );
        }
    }
}
