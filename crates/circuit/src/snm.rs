//! Static noise margin analysis of the 6T SRAM cell.
//!
//! A memory compiler must guarantee that the cell it tiles by the
//! million actually holds data: the hold and read static noise margins
//! (SNM) of the cross-coupled inverter pair, extracted from the
//! butterfly curves. Read SNM additionally loads the "low" storage node
//! through the access transistor from the precharged bitline — the
//! classic read-disturb mechanism that fixes the cell ratio (pulldown
//! strength over access strength).
//!
//! The voltage transfer curves come from the same level-1 device
//! equations as the transient simulator; the SNM is the side of the
//! largest square that fits inside a butterfly lobe, computed with the
//! standard 45°-rotation method.

use crate::device::level1_nmos_id_dc;
use bisram_tech::DeviceParams;

/// Geometry of the 6T cell's transistors (widths in metres; all devices
/// share the process gate length).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellGeometry {
    /// Pull-down NMOS width.
    pub w_pulldown: f64,
    /// Pull-up PMOS width.
    pub w_pullup: f64,
    /// Access NMOS width.
    pub w_access: f64,
    /// Gate length.
    pub l: f64,
}

impl CellGeometry {
    /// A standard cell for a process of gate length `l`: cell ratio 2
    /// (pulldown twice the access strength), minimum-strength pull-up.
    pub fn standard(l: f64) -> Self {
        CellGeometry {
            w_pulldown: 3.0 * l,
            w_pullup: 1.5 * l,
            w_access: 1.5 * l,
            l,
        }
    }

    /// The cell ratio (beta ratio): pulldown strength over access
    /// strength. Read stability demands a ratio comfortably above 1.
    pub fn cell_ratio(&self) -> f64 {
        self.w_pulldown / self.w_access
    }
}

/// Level-1 NMOS drain current in the DC (vgs, vds) convention — the
/// shared device model of [`crate::device`], with channel-length
/// modulation off for the butterfly curves.
fn nmos_id(vgs: f64, vds: f64, beta: f64, vt: f64) -> f64 {
    level1_nmos_id_dc(vgs, vds, beta, vt)
}

/// DC transfer curve of one cell inverter: storage node voltage as a
/// function of the opposite node's voltage. With `read_access` the
/// output node is also pulled toward `vdd` through the access device
/// (bitline precharged high), which degrades the low level.
fn inverter_vtc(dev: &DeviceParams, geom: &CellGeometry, vin: f64, read_access: bool) -> f64 {
    let beta_n = dev.kp_n * geom.w_pulldown / geom.l;
    let beta_p = dev.kp_p * geom.w_pullup / geom.l;
    let beta_a = dev.kp_n * geom.w_access / geom.l;
    let vdd = dev.vdd;
    // Solve i_pullup(vout) + i_access(vout) - i_pulldown(vout) = 0 by
    // bisection; the net current is monotone in vout.
    let net = |vout: f64| {
        let i_dn = nmos_id(vin, vout, beta_n, dev.vtn);
        // PMOS pull-up: source at vdd, gate at vin.
        let i_up = nmos_id(vdd - vin, vdd - vout, beta_p, dev.vtp);
        // Access device from the precharged bitline (gate at vdd).
        let i_acc = if read_access {
            nmos_id(vdd - vout, vdd - vout, beta_a, dev.vtn)
        } else {
            0.0
        };
        i_up + i_acc - i_dn
    };
    let (mut lo, mut hi) = (0.0, vdd);
    // net(0) >= 0 (nothing pulls below ground), net(vdd) <= 0 when the
    // pulldown is on; handle the cutoff case where the output rails.
    if net(vdd) > 0.0 {
        return vdd;
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if net(mid) >= 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Test/debug access to the raw VTC (hidden from docs).
#[doc(hidden)]
pub fn debug_vtc(dev: &DeviceParams, geom: &CellGeometry, vin: f64, read_access: bool) -> f64 {
    inverter_vtc(dev, geom, vin, read_access)
}

/// A butterfly analysis result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseMargins {
    /// Hold (standby) static noise margin, volts.
    pub hold_snm: f64,
    /// Read static noise margin, volts.
    pub read_snm: f64,
}

/// Extracts hold and read SNM for a cell geometry.
pub fn analyze(dev: &DeviceParams, geom: &CellGeometry) -> NoiseMargins {
    NoiseMargins {
        hold_snm: lobe_snm(dev, geom, false),
        read_snm: lobe_snm(dev, geom, true),
    }
}

/// SNM of the butterfly formed by the VTC and its mirror: the largest
/// square inscribed in the upper-left lobe.
///
/// In the `(V1, V2)` plane the lobe's interior satisfies `V2 < f(V1)`
/// (below curve A) and `V1 > f(V2)` (right of curve B). With `f`
/// non-increasing, a square `[x0, x0+s] × [y0, y0+s]` fits exactly when
/// its lower-left corner touches curve B (`x0 = f(y0)`) and its
/// upper-right corner touches curve A (`y0 + s = f(x0 + s)`). The
/// residual `h(s) = f(x0 + s) − (y0 + s)` is positive at `s = 0` inside
/// the lobe (`f(f(y0)) > y0`) and strictly decreasing, so the
/// per-anchor side comes from a bisection; the SNM maximizes over the
/// `y0` anchors.
fn lobe_snm(dev: &DeviceParams, geom: &CellGeometry, read_access: bool) -> f64 {
    let vdd = dev.vdd;
    let f = |v: f64| inverter_vtc(dev, geom, v, read_access);
    let n = 160;
    let mut snm: f64 = 0.0;
    for i in 0..=n {
        let y0 = vdd * i as f64 / n as f64;
        let x0 = f(y0);
        let h = |s: f64| {
            if x0 + s > vdd || y0 + s > vdd {
                // The square would leave the supply window.
                return -1.0;
            }
            f(x0 + s) - (y0 + s)
        };
        if h(0.0) <= 0.0 {
            continue; // outside the bistable lobe
        }
        let (mut lo, mut hi) = (0.0, vdd);
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if h(mid) >= 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        snm = snm.max(lo);
    }
    snm
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisram_tech::Process;

    fn dev() -> DeviceParams {
        Process::cda07().devices().clone()
    }

    #[test]
    fn vtc_is_a_proper_inverter() {
        let d = dev();
        let g = CellGeometry::standard(0.7e-6);
        let low_in = inverter_vtc(&d, &g, 0.0, false);
        let high_in = inverter_vtc(&d, &g, d.vdd, false);
        assert!(low_in > 0.95 * d.vdd, "output high: {low_in}");
        assert!(high_in < 0.05 * d.vdd, "output low: {high_in}");
        // Monotone non-increasing.
        let mut prev = f64::MAX;
        for i in 0..=20 {
            let v = inverter_vtc(&d, &g, d.vdd * i as f64 / 20.0, false);
            assert!(v <= prev + 1e-9);
            prev = v;
        }
    }

    #[test]
    fn read_degrades_the_low_level() {
        let d = dev();
        let g = CellGeometry::standard(0.7e-6);
        let hold_low = inverter_vtc(&d, &g, d.vdd, false);
        let read_low = inverter_vtc(&d, &g, d.vdd, true);
        assert!(
            read_low > hold_low + 0.05,
            "the access device must lift the low node: {read_low} vs {hold_low}"
        );
    }

    #[test]
    fn margins_are_plausible_for_a_5v_process() {
        let d = dev();
        let g = CellGeometry::standard(0.7e-6);
        let m = analyze(&d, &g);
        assert!(
            (0.3..2.5).contains(&m.hold_snm),
            "hold SNM {:.3} V implausible",
            m.hold_snm
        );
        assert!(m.read_snm > 0.1, "cell must be read-stable: {:.3}", m.read_snm);
        assert!(
            m.read_snm < m.hold_snm,
            "read SNM must be the smaller margin"
        );
    }

    #[test]
    fn stronger_pulldown_improves_read_stability() {
        let d = dev();
        let weak = CellGeometry {
            w_pulldown: 1.6e-6,
            ..CellGeometry::standard(0.7e-6)
        };
        let strong = CellGeometry {
            w_pulldown: 4.2e-6,
            ..CellGeometry::standard(0.7e-6)
        };
        let m_weak = analyze(&d, &weak);
        let m_strong = analyze(&d, &strong);
        assert!(
            m_strong.read_snm > m_weak.read_snm,
            "cell ratio must buy read margin: {:.3} vs {:.3}",
            m_strong.read_snm,
            m_weak.read_snm
        );
        assert!(strong.cell_ratio() > weak.cell_ratio());
    }

    #[test]
    fn every_builtin_process_yields_a_stable_standard_cell() {
        for p in Process::builtin() {
            let g = CellGeometry::standard(p.gate_length_m());
            let m = analyze(p.devices(), &g);
            assert!(
                m.read_snm > 0.05,
                "{}: read SNM {:.3} V — cell not usable",
                p.name(),
                m.read_snm
            );
        }
    }
}
