//! Parametric variation of the 6T SRAM cell.
//!
//! The rare-event yield engine (`bisram-yieldsim`'s `rare` module) needs
//! a physical model of *why* a cell fails: local mismatch spreads the
//! thresholds and dimensions of the six transistors, and the operating
//! corner moves the supply and temperature. This module owns that
//! mapping:
//!
//! * [`OpCorner`] — a deterministic Vdd/temperature corner applied to
//!   the process [`DeviceParams`] (first-order `kp ∝ T^−1.5` mobility
//!   and `dVth/dT ≈ −1.2 mV/K` threshold drift),
//! * [`VariationModel`] — per-transistor Vth/W plus shared-L Gaussian
//!   sigmas; [`VariationModel::realize`] maps a standard-normal vector
//!   `z ∈ R^13` to a [`VariedCell`],
//! * [`VariedCell`] — the realized cell, with DC margin analyses
//!   (delegating to [`crate::snm`]) and a transient read-delay
//!   testbench on the adaptive solver.
//!
//! The zero-variation contract: `realize` with `z = 0` at the nominal
//! corner produces analyses bit-identical to the golden nominal paths
//! (`×1.0` and `+0.0` are exact in IEEE-754), which is what lets the
//! importance-sampling engine's zero-shift mode reproduce plain Monte
//! Carlo byte-for-byte.

use crate::netlist::{MosType, Netlist};
use crate::snm::{self, CellGeometry, InverterVar, MosVar, NoiseMargins};
use crate::tran::{AdaptiveOptions, TransientSim};
use bisram_tech::DeviceParams;

/// Dimension of the standard-normal variation vector: six per-transistor
/// threshold shifts, six per-transistor width variations, one shared
/// gate-length variation (lithography acts on the cell, not per device).
pub const VAR_DIM: usize = 13;

/// Transistor order inside the 13-dim variation vector and the
/// [`VariedCell`] arrays: left pull-down, left pull-up, left access,
/// then the right-side mirror.
pub const DEVICE_NAMES: [&str; 6] = ["pd_l", "pu_l", "ax_l", "pd_r", "pu_r", "ax_r"];

/// Threshold temperature drift (V/K), a textbook first-order value.
const DVT_DT: f64 = -1.2e-3;

/// The cell's left/right mirror symmetry in variation space: swaps the
/// two half-cells' threshold and width components (the shared length is
/// its own mirror image). For any symmetric metric (`min` over the two
/// sides — SNM, write margin), `metric(mirror_z(z)) == metric(z)`, so a
/// failure mode found on one side always has a mirrored twin; the
/// importance sampler covers both with a two-component mixture.
pub fn mirror_z(z: &[f64; VAR_DIM]) -> [f64; VAR_DIM] {
    let mut m = *z;
    for base in [0, 6] {
        for d in 0..3 {
            m.swap(base + d, base + 3 + d);
        }
    }
    m
}

/// An operating corner: supply scale and junction temperature, applied
/// deterministically on top of the statistical variation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCorner {
    /// Multiplier on the process nominal Vdd (0.9 = 10% droop).
    pub vdd_scale: f64,
    /// Junction temperature in °C.
    pub temp_c: f64,
}

impl OpCorner {
    /// Reference temperature the process parameters are extracted at.
    pub const NOMINAL_TEMP_C: f64 = 27.0;

    /// The nominal corner: full supply, 27 °C. Applying it is
    /// bit-identical to not applying a corner at all.
    pub fn nominal() -> Self {
        OpCorner {
            vdd_scale: 1.0,
            temp_c: Self::NOMINAL_TEMP_C,
        }
    }

    /// Derives corner-adjusted device parameters: Vdd scaled, mobility
    /// degraded as `(T/T₀)^−1.5`, thresholds drifted at −1.2 mV/K.
    pub fn apply(&self, dev: &DeviceParams) -> DeviceParams {
        assert!(
            self.vdd_scale > 0.0 && self.vdd_scale.is_finite(),
            "vdd_scale must be positive"
        );
        let t_k = self.temp_c + 273.15;
        let t0_k = Self::NOMINAL_TEMP_C + 273.15;
        assert!(t_k > 0.0, "temperature below absolute zero");
        let mut d = dev.clone();
        d.vdd *= self.vdd_scale;
        let kp_scale = (t_k / t0_k).powf(-1.5);
        d.kp_n *= kp_scale;
        d.kp_p *= kp_scale;
        let dvt = DVT_DT * (self.temp_c - Self::NOMINAL_TEMP_C);
        d.vtn += dvt;
        d.vtp += dvt;
        d
    }
}

/// Gaussian process-variation sigmas plus the operating corner — the
/// distribution the yield engine samples (and shifts) in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    /// Per-transistor threshold sigma (V). 35 mV is a plausible local
    /// mismatch figure for the paper-era half-micron processes.
    pub sigma_vth: f64,
    /// Per-transistor fractional width sigma.
    pub sigma_w_frac: f64,
    /// Shared fractional gate-length sigma.
    pub sigma_l_frac: f64,
    /// Deterministic operating corner.
    pub corner: OpCorner,
}

impl Default for VariationModel {
    fn default() -> Self {
        VariationModel {
            sigma_vth: 0.035,
            sigma_w_frac: 0.05,
            sigma_l_frac: 0.03,
            corner: OpCorner::nominal(),
        }
    }
}

impl VariationModel {
    /// Maps a standard-normal vector to a concrete cell instance.
    ///
    /// Layout of `z`: `z[0..6]` per-transistor threshold shifts (in
    /// sigmas, device order [`DEVICE_NAMES`]), `z[6..12]` per-transistor
    /// fractional width variations, `z[12]` the shared gate-length
    /// variation. Widths and length are floored at 10% of nominal so a
    /// pathological shifted sample cannot produce a nonphysical device.
    pub fn realize(&self, dev: &DeviceParams, geom: &CellGeometry, z: &[f64; VAR_DIM]) -> VariedCell {
        let d = self.corner.apply(dev);
        let nominal_w = [
            geom.w_pulldown,
            geom.w_pullup,
            geom.w_access,
            geom.w_pulldown,
            geom.w_pullup,
            geom.w_access,
        ];
        let mut w = [0.0; 6];
        let mut dvt = [0.0; 6];
        for i in 0..6 {
            dvt[i] = self.sigma_vth * z[i];
            w[i] = (nominal_w[i] * (1.0 + self.sigma_w_frac * z[6 + i])).max(0.1 * nominal_w[i]);
        }
        let l = (geom.l * (1.0 + self.sigma_l_frac * z[12])).max(0.1 * geom.l);
        let half = |pd: usize, pu: usize, ax: usize| InverterVar {
            pd: MosVar {
                beta: d.kp_n * w[pd] / l,
                vt: d.vtn + dvt[pd],
            },
            pu: MosVar {
                beta: d.kp_p * w[pu] / l,
                vt: d.vtp + dvt[pu],
            },
            ax: MosVar {
                beta: d.kp_n * w[ax] / l,
                vt: d.vtn + dvt[ax],
            },
        };
        let inv = [half(0, 1, 2), half(3, 4, 5)];
        VariedCell {
            dev: d,
            geom: *geom,
            inv,
            w,
            dvt,
            l,
        }
    }
}

/// One realized cell instance: corner-adjusted process parameters plus
/// the six perturbed transistors, ready for DC margin extraction or a
/// transient read-delay run.
#[derive(Debug, Clone, PartialEq)]
pub struct VariedCell {
    /// Corner-adjusted device parameters.
    pub dev: DeviceParams,
    /// Nominal geometry the cell was realized from.
    pub geom: CellGeometry,
    /// The two half-cells in [`crate::snm`]'s DC form
    /// (`inv[0]` drives `q` from `qb`, `inv[1]` the mirror).
    pub inv: [InverterVar; 2],
    /// Realized widths (m), device order [`DEVICE_NAMES`].
    pub w: [f64; 6],
    /// Realized threshold offsets (V), device order [`DEVICE_NAMES`].
    pub dvt: [f64; 6],
    /// Realized shared gate length (m).
    pub l: f64,
}

/// Bitline capacitance of the read testbench (a short column).
const C_BITLINE: f64 = 120e-15;
/// Storage-node capacitance.
const C_NODE: f64 = 5e-15;
/// Initialization pulse end: the init transistor holds `q` low until
/// here so the latched state is deterministic even for a symmetric cell.
const T_INIT_OFF: f64 = 0.3e-9;
/// Precharge turn-off time (gate driven high).
const T_PCHG_OFF: f64 = 0.5e-9;
/// Wordline rise start.
const T_WL_RISE: f64 = 0.6e-9;
/// Source edge time.
const T_EDGE: f64 = 0.05e-9;
/// Simulated span.
const T_STOP: f64 = 3.0e-9;
/// Bitline swing fraction a sense amplifier needs: the read delay is
/// measured to `vdd·(1 − SENSE_FRACTION)` on the falling bitline.
const SENSE_FRACTION: f64 = 0.1;

impl VariedCell {
    /// Corner-adjusted supply.
    pub fn vdd(&self) -> f64 {
        self.dev.vdd
    }

    /// Hold/read static noise margins of this instance.
    pub fn margins(&self) -> NoiseMargins {
        snm::analyze_pair(self.dev.vdd, &self.inv)
    }

    /// Static write margin of this instance (see
    /// [`snm::write_margin_pair`]).
    pub fn write_margin(&self) -> f64 {
        snm::write_margin_pair(self.dev.vdd, &self.inv)
    }

    /// Transient read delay (s): wordline 50% rise to the bitline
    /// falling through `vdd·(1 − 10%)`, simulated with the adaptive
    /// solver on a netlist carrying this instance's per-device
    /// threshold offsets (`mos_dvt`) and widths.
    ///
    /// The testbench stores '0' at `q` (forced by an init transistor so
    /// the latched state never depends on solver luck), precharges both
    /// bitlines, releases the precharge, then raises the wordline; the
    /// `bl` column discharges through the access/pull-down stack.
    /// Returns `f64::INFINITY` when the bitline never develops the
    /// swing inside the simulated span (a functional read failure) or
    /// the solver fails to converge on a pathological instance.
    pub fn read_delay(&self) -> f64 {
        let vdd = self.dev.vdd;
        let mut n = Netlist::new("read_delay_cell");
        let gnd = Netlist::ground();
        let vddn = n.node("vdd");
        let q = n.node("q");
        let qb = n.node("qb");
        let bl = n.node("bl");
        let blb = n.node("blb");
        let wl = n.node("wl");
        let pg = n.node("pchg_gate");
        let ig = n.node("init_gate");
        n.vdc(vddn, gnd, vdd);
        // The 6T cell with realized widths and per-device offsets.
        n.mos_dvt(MosType::Nmos, q, qb, gnd, self.w[0], self.l, self.dvt[0]);
        n.mos_dvt(MosType::Pmos, q, qb, vddn, self.w[1], self.l, self.dvt[1]);
        n.mos_dvt(MosType::Nmos, bl, wl, q, self.w[2], self.l, self.dvt[2]);
        n.mos_dvt(MosType::Nmos, qb, q, gnd, self.w[3], self.l, self.dvt[3]);
        n.mos_dvt(MosType::Pmos, qb, q, vddn, self.w[4], self.l, self.dvt[4]);
        n.mos_dvt(MosType::Nmos, blb, wl, qb, self.w[5], self.l, self.dvt[5]);
        n.capacitor(q, gnd, C_NODE);
        n.capacitor(qb, gnd, C_NODE);
        n.capacitor(bl, gnd, C_BITLINE);
        n.capacitor(blb, gnd, C_BITLINE);
        // Wide precharge PMOS pair, gates low (on) until T_PCHG_OFF.
        let w_pchg = 20.0 * self.geom.l;
        n.mos(MosType::Pmos, bl, pg, vddn, w_pchg, self.geom.l);
        n.mos(MosType::Pmos, blb, pg, vddn, w_pchg, self.geom.l);
        n.vpwl(
            pg,
            gnd,
            vec![
                (0.0, 0.0),
                (T_PCHG_OFF, 0.0),
                (T_PCHG_OFF + T_EDGE, vdd),
                (T_STOP, vdd),
            ],
        );
        // Init NMOS forces q low while its gate pulse is high, latching
        // '0' at q deterministically.
        n.mos(MosType::Nmos, q, ig, gnd, 4.0 * self.geom.l, self.geom.l);
        n.vpwl(
            ig,
            gnd,
            vec![
                (0.0, vdd),
                (T_INIT_OFF, vdd),
                (T_INIT_OFF + T_EDGE, 0.0),
                (T_STOP, 0.0),
            ],
        );
        n.vpwl(
            wl,
            gnd,
            vec![
                (0.0, 0.0),
                (T_WL_RISE, 0.0),
                (T_WL_RISE + T_EDGE, vdd),
                (T_STOP, vdd),
            ],
        );
        let sim = match TransientSim::new(&n, &self.dev) {
            Ok(s) => s,
            Err(_) => return f64::INFINITY,
        };
        let opts = AdaptiveOptions::for_span(T_STOP);
        let result = match sim.run_adaptive(T_STOP, &opts) {
            Ok(r) => r,
            Err(_) => return f64::INFINITY,
        };
        let t_ref = T_WL_RISE + 0.5 * T_EDGE;
        let level = vdd * (1.0 - SENSE_FRACTION);
        match result.crossing_time(bl, level, false, t_ref) {
            Some(t) => t - t_ref,
            None => f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snm;
    use bisram_tech::Process;

    fn setup() -> (DeviceParams, CellGeometry) {
        let p = Process::cda07();
        let g = CellGeometry::standard(p.gate_length_m());
        (p.devices().clone(), g)
    }

    /// The zero-variation contract: `z = 0` at the nominal corner must
    /// reproduce the golden nominal analyses bit-for-bit.
    #[test]
    fn zero_variation_is_bit_identical_to_nominal() {
        for p in Process::builtin() {
            let d = p.devices();
            let g = CellGeometry::standard(p.gate_length_m());
            let cell = VariationModel::default().realize(d, &g, &[0.0; VAR_DIM]);
            assert_eq!(cell.dev.vdd.to_bits(), d.vdd.to_bits());
            assert_eq!(cell.dev.vtn.to_bits(), d.vtn.to_bits());
            assert_eq!(cell.dev.kp_n.to_bits(), d.kp_n.to_bits());
            let golden = snm::analyze(d, &g);
            let varied = cell.margins();
            assert_eq!(golden.hold_snm.to_bits(), varied.hold_snm.to_bits(), "{}", p.name());
            assert_eq!(golden.read_snm.to_bits(), varied.read_snm.to_bits(), "{}", p.name());
        }
    }

    #[test]
    fn threshold_spread_degrades_margins() {
        let (d, g) = setup();
        let m = VariationModel::default();
        let nominal = m.realize(&d, &g, &[0.0; VAR_DIM]).margins();
        // +3σ on the left pull-down threshold: a weak pull-down is the
        // classic read-stability killer.
        let mut z = [0.0; VAR_DIM];
        z[0] = 3.0;
        let skewed = m.realize(&d, &g, &z).margins();
        assert!(
            skewed.read_snm < nominal.read_snm,
            "weak pull-down must cost read SNM: {:.3} vs {:.3}",
            skewed.read_snm,
            nominal.read_snm
        );
    }

    #[test]
    fn access_threshold_up_costs_write_margin_and_read_speed() {
        let (d, g) = setup();
        let m = VariationModel::default();
        let nominal = m.realize(&d, &g, &[0.0; VAR_DIM]);
        let mut z = [0.0; VAR_DIM];
        z[2] = 4.0; // left access Vth up: weaker access device
        z[5] = 4.0; // right access too (write margin takes the min side)
        let weak = m.realize(&d, &g, &z);
        assert!(weak.write_margin() < nominal.write_margin());
        let t_nom = nominal.read_delay();
        let t_weak = weak.read_delay();
        assert!(t_nom.is_finite(), "nominal cell must read: {t_nom:e}");
        assert!(
            t_weak > t_nom,
            "weaker access must slow the read: {t_weak:e} vs {t_nom:e}"
        );
    }

    #[test]
    fn nominal_read_delay_is_sub_nanosecond_scale() {
        let (d, g) = setup();
        let cell = VariationModel::default().realize(&d, &g, &[0.0; VAR_DIM]);
        let t = cell.read_delay();
        assert!(
            t > 1e-12 && t < 2e-9,
            "read delay {t:e} s outside the plausible window"
        );
    }

    #[test]
    fn low_supply_corner_shrinks_margins() {
        let (d, g) = setup();
        let mut m = VariationModel::default();
        let nominal = m.realize(&d, &g, &[0.0; VAR_DIM]).margins();
        m.corner = OpCorner {
            vdd_scale: 0.8,
            temp_c: 85.0,
        };
        let cornered = m.realize(&d, &g, &[0.0; VAR_DIM]).margins();
        assert!(
            cornered.hold_snm < nominal.hold_snm,
            "low-Vdd hot corner must shrink hold SNM: {:.3} vs {:.3}",
            cornered.hold_snm,
            nominal.hold_snm
        );
    }

    /// The DC margins are symmetric under the left/right half-cell
    /// swap, bit for bit — the property the importance sampler's
    /// two-mode mixture relies on.
    #[test]
    fn dc_margins_are_mirror_symmetric() {
        let (d, g) = setup();
        let m = VariationModel::default();
        let z = {
            let mut z = [0.0; VAR_DIM];
            for (i, zi) in z.iter_mut().enumerate() {
                *zi = (i as f64 - 6.0) * 0.31;
            }
            z
        };
        let a = m.realize(&d, &g, &z);
        let b = m.realize(&d, &g, &mirror_z(&z));
        assert_eq!(
            a.write_margin().to_bits(),
            b.write_margin().to_bits(),
            "write margin must be mirror-symmetric"
        );
        let (ma, mb) = (a.margins(), b.margins());
        assert_eq!(ma.hold_snm.to_bits(), mb.hold_snm.to_bits());
        assert_eq!(ma.read_snm.to_bits(), mb.read_snm.to_bits());
        // Mirroring twice is the identity.
        assert_eq!(mirror_z(&mirror_z(&z)), z);
    }

    /// The per-device `dvt` path through the transient solver must agree
    /// with baking the same shift into `DeviceParams` when every device
    /// shares the shift.
    #[test]
    fn uniform_dvt_matches_shifted_process_params() {
        let (d, g) = setup();
        let m = VariationModel {
            sigma_w_frac: 0.0,
            sigma_l_frac: 0.0,
            ..VariationModel::default()
        };
        let shift = 2.0; // sigmas
        let z = {
            let mut z = [0.0; VAR_DIM];
            for zi in z.iter_mut().take(6) {
                *zi = shift;
            }
            z
        };
        let via_dvt = m.realize(&d, &g, &z);
        let mut shifted = d.clone();
        shifted.vtn += m.sigma_vth * shift;
        shifted.vtp += m.sigma_vth * shift;
        let via_params = m.realize(&shifted, &g, &[0.0; VAR_DIM]);
        let a = via_dvt.margins();
        let b = via_params.margins();
        assert_eq!(a.hold_snm.to_bits(), b.hold_snm.to_bits());
        assert_eq!(a.read_snm.to_bits(), b.read_snm.to_bits());
    }
}
