//! Logical-effort delay estimation.
//!
//! The datasheet generator and the TLB delay study estimate critical-path
//! delays with the method of logical effort: each stage contributes
//! `g·h + p` units of delay, where `g` is the gate's logical effort, `h`
//! its electrical fanout, and `p` its parasitic delay, all normalized to
//! the process time constant `τ` (the delay unit of a parasitic-free
//! inverter driving one identical inverter).

use bisram_tech::DeviceParams;

/// Gate types the RAM periphery uses, with their logical effort and
/// parasitic delay (in units of the inverter's).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateType {
    /// Static inverter.
    Inverter,
    /// n-input NAND.
    Nand(u8),
    /// n-input NOR.
    Nor(u8),
    /// Pass-transistor mux branch with n options (series switch + shared
    /// output, modelled with effort ~ n for the select network).
    Mux(u8),
    /// XOR / XNOR two-input stage (used in the comparator trees).
    Xor2,
}

impl GateType {
    /// Logical effort `g` per input, using the standard γ = 2 (PMOS/NMOS
    /// strength ratio) values.
    pub fn logical_effort(self) -> f64 {
        match self {
            GateType::Inverter => 1.0,
            GateType::Nand(n) => (n as f64 + 2.0) / 3.0,
            GateType::Nor(n) => (2.0 * n as f64 + 1.0) / 3.0,
            GateType::Mux(_) => 2.0,
            GateType::Xor2 => 4.0,
        }
    }

    /// Parasitic delay `p` in units of the inverter parasitic.
    pub fn parasitic(self) -> f64 {
        match self {
            GateType::Inverter => 1.0,
            GateType::Nand(n) => n as f64,
            GateType::Nor(n) => n as f64,
            GateType::Mux(n) => 2.0 * n as f64,
            GateType::Xor2 => 4.0,
        }
    }
}

/// One stage of a logical-effort path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stage {
    /// Gate type.
    pub gate: GateType,
    /// Electrical effort h = C_out / C_in of the stage.
    pub fanout: f64,
}

impl Stage {
    /// Creates a stage.
    pub fn new(gate: GateType, fanout: f64) -> Self {
        Stage { gate, fanout }
    }

    /// Stage delay in τ units: `g·h + p`.
    pub fn delay_tau(self) -> f64 {
        self.gate.logical_effort() * self.fanout + self.gate.parasitic()
    }
}

/// A logical-effort path: an ordered list of stages plus the process τ.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    stages: Vec<Stage>,
    tau_s: f64,
}

impl Path {
    /// Creates a path with the process time constant τ (seconds).
    pub fn new(tau_s: f64) -> Self {
        Path {
            stages: Vec::new(),
            tau_s,
        }
    }

    /// Appends a stage (builder style).
    pub fn stage(mut self, gate: GateType, fanout: f64) -> Self {
        self.stages.push(Stage::new(gate, fanout));
        self
    }

    /// The stages.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Total path delay in seconds.
    pub fn delay_s(&self) -> f64 {
        self.tau_s * self.stages.iter().map(|s| s.delay_tau()).sum::<f64>()
    }

    /// Total path delay in τ units.
    pub fn delay_tau(&self) -> f64 {
        self.stages.iter().map(|s| s.delay_tau()).sum()
    }

    /// The optimum number of stages to drive a path with total effort `f`
    /// (branching × logical × electrical effort), assuming effort-4
    /// stages — the classic result used when sizing the word-line driver
    /// chain.
    pub fn optimum_stage_count(path_effort: f64) -> usize {
        if path_effort <= 1.0 {
            return 1;
        }
        (path_effort.ln() / 4.0f64.ln()).round().max(1.0) as usize
    }
}

/// The process time constant τ: delay of an ideal fanout-1 inverter,
/// `τ = R_inv · C_inv`. Computed from the device parameters for a
/// minimum-size inverter (NMOS of width = 2·L, balanced PMOS).
pub fn tau(dev: &DeviceParams, gate_length_m: f64) -> f64 {
    let wn = 2.0 * gate_length_m;
    let beta = dev.mobility_ratio();
    let wp = wn * beta;
    let r = dev.r_eff_n(wn, gate_length_m);
    let c_in = dev.c_gate(wn + wp, gate_length_m);
    r * c_in
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisram_tech::Process;

    #[test]
    fn inverter_fo4_is_five_tau() {
        // FO4 inverter delay = g*h + p = 1*4 + 1 = 5 tau.
        let s = Stage::new(GateType::Inverter, 4.0);
        assert!((s.delay_tau() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn nand_and_nor_efforts_match_textbook() {
        assert!((GateType::Nand(2).logical_effort() - 4.0 / 3.0).abs() < 1e-12);
        assert!((GateType::Nor(2).logical_effort() - 5.0 / 3.0).abs() < 1e-12);
        assert!((GateType::Nand(3).logical_effort() - 5.0 / 3.0).abs() < 1e-12);
        // NOR is always worse than NAND of the same fan-in.
        for n in 2..6 {
            assert!(GateType::Nor(n).logical_effort() > GateType::Nand(n).logical_effort());
        }
    }

    #[test]
    fn path_delay_sums_stages() {
        let p = Path::new(1e-11)
            .stage(GateType::Nand(2), 3.0)
            .stage(GateType::Inverter, 4.0);
        let expect_tau = (4.0 / 3.0 * 3.0 + 2.0) + (4.0 + 1.0);
        assert!((p.delay_tau() - expect_tau).abs() < 1e-12);
        assert!((p.delay_s() - expect_tau * 1e-11).abs() < 1e-22);
    }

    #[test]
    fn optimum_stage_count_is_log4() {
        assert_eq!(Path::optimum_stage_count(1.0), 1);
        assert_eq!(Path::optimum_stage_count(4.0), 1);
        assert_eq!(Path::optimum_stage_count(16.0), 2);
        assert_eq!(Path::optimum_stage_count(256.0), 4);
        assert_eq!(Path::optimum_stage_count(0.5), 1);
    }

    #[test]
    fn tau_is_tens_of_picoseconds_for_builtin_processes() {
        for p in Process::builtin() {
            let t = tau(p.devices(), p.gate_length_m());
            assert!(
                (1e-12..200e-12).contains(&t),
                "{}: tau = {t:e}",
                p.name()
            );
        }
        // Finer process has smaller tau.
        let t05 = tau(Process::cda05().devices(), Process::cda05().gate_length_m());
        let t07 = tau(Process::cda07().devices(), Process::cda07().gate_length_m());
        assert!(t05 < t07);
    }
}
