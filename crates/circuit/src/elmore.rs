//! Elmore delay over RC trees.
//!
//! Bitlines and word lines are long distributed RC wires; the compiler
//! estimates their delay with the Elmore metric over an RC tree rooted at
//! the driver.

/// A node in an RC tree. Node 0 is the root (driver output).
#[derive(Debug, Clone, Copy, PartialEq)]
struct RcNode {
    /// Parent node index (root's parent is itself).
    parent: usize,
    /// Resistance of the branch from the parent to this node (Ω).
    r_to_parent: f64,
    /// Capacitance to ground at this node (F).
    cap: f64,
}

/// An RC tree for Elmore delay evaluation.
///
/// ```
/// use bisram_circuit::elmore::RcTree;
///
/// // Driver -- 100Ω -- node1 (1pF) -- 100Ω -- node2 (1pF)
/// let mut tree = RcTree::new(0.0);
/// let n1 = tree.add_node(RcTree::ROOT, 100.0, 1e-12);
/// let n2 = tree.add_node(n1, 100.0, 1e-12);
/// // Elmore to n2: 100*(1p+1p) + 100*1p = 300 ps
/// let d = tree.elmore_delay(n2);
/// assert!((d - 300e-12).abs() < 1e-18);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RcTree {
    nodes: Vec<RcNode>,
}

impl RcTree {
    /// Index of the root node.
    pub const ROOT: usize = 0;

    /// Creates a tree whose root has capacitance `root_cap` (the driver's
    /// own output capacitance).
    pub fn new(root_cap: f64) -> Self {
        RcTree {
            nodes: vec![RcNode {
                parent: 0,
                r_to_parent: 0.0,
                cap: root_cap,
            }],
        }
    }

    /// Adds a node connected to `parent` through resistance `r` with
    /// grounded capacitance `cap`. Returns the new node's index.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is out of range or `r`/`cap` are negative.
    pub fn add_node(&mut self, parent: usize, r: f64, cap: f64) -> usize {
        assert!(parent < self.nodes.len(), "parent out of range");
        assert!(r >= 0.0 && cap >= 0.0, "negative RC element");
        self.nodes.push(RcNode {
            parent,
            r_to_parent: r,
            cap,
        });
        self.nodes.len() - 1
    }

    /// Number of nodes including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Total capacitance of the tree.
    pub fn total_cap(&self) -> f64 {
        self.nodes.iter().map(|n| n.cap).sum()
    }

    /// Downstream capacitance seen from each node (the node's own cap plus
    /// all descendants').
    fn downstream_caps(&self) -> Vec<f64> {
        let mut down: Vec<f64> = self.nodes.iter().map(|n| n.cap).collect();
        // Children always have larger indices than their parents.
        for i in (1..self.nodes.len()).rev() {
            let p = self.nodes[i].parent;
            down[p] += down[i];
        }
        down
    }

    /// Elmore delay from the root to `sink`:
    /// `Σ_{k on path} R_k · C_downstream(k)`.
    ///
    /// # Panics
    ///
    /// Panics if `sink` is out of range.
    pub fn elmore_delay(&self, sink: usize) -> f64 {
        assert!(sink < self.nodes.len(), "sink out of range");
        let down = self.downstream_caps();
        let mut delay = 0.0;
        let mut k = sink;
        while k != RcTree::ROOT {
            delay += self.nodes[k].r_to_parent * down[k];
            k = self.nodes[k].parent;
        }
        delay
    }

    /// Builds a uniform distributed wire of `segments` Π-segments with
    /// total resistance `r_total` and capacitance `c_total`, returning
    /// `(tree, far_end_index)`. `load_cap` is lumped at the far end.
    pub fn uniform_wire(segments: usize, r_total: f64, c_total: f64, load_cap: f64) -> (RcTree, usize) {
        assert!(segments > 0, "need at least one segment");
        let mut tree = RcTree::new(0.0);
        let rs = r_total / segments as f64;
        let cs = c_total / segments as f64;
        let mut last = RcTree::ROOT;
        for i in 0..segments {
            let cap = if i == segments - 1 { cs + load_cap } else { cs };
            last = tree.add_node(last, rs, cap);
        }
        (tree, last)
    }
}

/// Elmore delay of a uniform wire with a lumped load, in seconds: the
/// classic `R·C/2 + R·C_load` limit (for many segments).
///
/// ```
/// use bisram_circuit::elmore::wire_delay;
/// let d = wire_delay(1000.0, 1e-12, 0.0);
/// assert!((d - 0.5e-9).abs() < 0.01e-9);
/// ```
pub fn wire_delay(r_total: f64, c_total: f64, load_cap: f64) -> f64 {
    let (tree, sink) = RcTree::uniform_wire(64, r_total, c_total, load_cap);
    tree.elmore_delay(sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisram_rng::rngs::StdRng;
    use bisram_rng::{Rng, SeedableRng};

    #[test]
    fn single_rc_is_rc() {
        let mut t = RcTree::new(0.0);
        let n = t.add_node(RcTree::ROOT, 1000.0, 1e-12);
        assert!((t.elmore_delay(n) - 1e-9).abs() < 1e-18);
    }

    #[test]
    fn root_delay_is_zero() {
        let t = RcTree::new(5e-12);
        assert_eq!(t.elmore_delay(RcTree::ROOT), 0.0);
    }

    #[test]
    fn branches_contribute_to_shared_path() {
        // Root -- R1 -- a, a -- R2 -- b, a -- R3 -- c.
        // Delay to b includes R1*(Ca+Cb+Cc) + R2*Cb.
        let mut t = RcTree::new(0.0);
        let a = t.add_node(RcTree::ROOT, 100.0, 1e-12);
        let b = t.add_node(a, 200.0, 2e-12);
        let c = t.add_node(a, 300.0, 3e-12);
        let expect_b = 100.0 * (1e-12 + 2e-12 + 3e-12) + 200.0 * 2e-12;
        assert!((t.elmore_delay(b) - expect_b).abs() < 1e-20);
        let expect_c = 100.0 * 6e-12 + 300.0 * 3e-12;
        assert!((t.elmore_delay(c) - expect_c).abs() < 1e-20);
    }

    #[test]
    fn uniform_wire_converges_to_half_rc() {
        // With many segments the distributed wire Elmore delay tends to
        // R*C/2 (+ R*C_load).
        let d = wire_delay(2000.0, 4e-12, 1e-12);
        let ideal = 2000.0 * 4e-12 / 2.0 + 2000.0 * 1e-12;
        assert!((d - ideal).abs() / ideal < 0.02, "d={d:e} ideal={ideal:e}");
    }

    #[test]
    fn total_cap_accumulates() {
        let (tree, _) = RcTree::uniform_wire(10, 100.0, 5e-12, 2e-12);
        assert!((tree.total_cap() - 7e-12).abs() < 1e-20);
    }

    #[test]
    #[should_panic(expected = "parent out of range")]
    fn bad_parent_panics() {
        let mut t = RcTree::new(0.0);
        t.add_node(7, 1.0, 1.0);
    }

    // Deterministic seeded sweeps over the same parameter boxes the
    // proptest strategies drew from.

    #[test]
    fn delay_monotone_in_load() {
        let mut rng = StdRng::seed_from_u64(0xE7_0001);
        for case in 0..256 {
            let r = rng.gen_range(1.0f64..1e4);
            let c = rng.gen_range(1e-15f64..1e-11);
            let load = rng.gen_range(0.0f64..1e-11);
            let d0 = wire_delay(r, c, load);
            let d1 = wire_delay(r, c, load + 1e-12);
            assert!(d1 > d0, "case {case}: r={r:e} c={c:e} load={load:e}: {d1:e} !> {d0:e}");
        }
    }

    #[test]
    fn delay_scales_linearly_with_r() {
        let mut rng = StdRng::seed_from_u64(0xE7_0002);
        for case in 0..256 {
            let r = rng.gen_range(1.0f64..1e4);
            let c = rng.gen_range(1e-15f64..1e-11);
            let d1 = wire_delay(r, c, 0.0);
            let d2 = wire_delay(2.0 * r, c, 0.0);
            assert!(
                (d2 / d1 - 2.0).abs() < 1e-9,
                "case {case}: r={r:e} c={c:e}: ratio {}",
                d2 / d1
            );
        }
    }
}
