//! Automatic transistor sizing.
//!
//! Paper §II: "for a given gate size, the n and p transistors are
//! automatically sized to balance the rise and fall times. This is made
//! possible by built-in access to SPICE utilities." We reproduce both the
//! analytic balancing (from the level-1 model) and a simulation-based
//! refinement loop that measures the actual rise/fall delays with the
//! transient simulator and drives the mismatch to zero with a
//! secant/bisection hybrid on the PMOS width.

use crate::netlist::{MosType, Netlist, NodeId};
use crate::tran::{AdaptiveOptions, SimError, TransientSim};
use bisram_tech::DeviceParams;

/// Simulated time span of one edge measurement (covers both edges).
const T_STOP: f64 = 12.0e-9;
/// Fixed step of the golden-reference measurement.
const DT_REF: f64 = 5.0e-12;
/// Relative rise/fall mismatch below which the sizing loop stops.
const MISMATCH_TOL: f64 = 0.02;
/// Sizing-loop iteration cap.
const MAX_SIZING_ITERS: usize = 24;

/// Errors from the simulation-based sizing loop.
#[derive(Debug, Clone, PartialEq)]
pub enum SizingError {
    /// The underlying transient simulation failed.
    Sim(SimError),
    /// A measurement waveform never produced the expected crossing.
    MissingEdge {
        /// Which edge was missing (e.g. `"output rise"`).
        edge: &'static str,
    },
    /// The width iteration hit its cap before balancing the edges.
    MaxIterations {
        /// Iterations performed.
        iterations: usize,
        /// Relative mismatch at the final iterate.
        mismatch: f64,
    },
}

impl std::fmt::Display for SizingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SizingError::Sim(e) => write!(f, "sizing simulation failed: {e}"),
            SizingError::MissingEdge { edge } => {
                write!(f, "sizing measurement saw no {edge} edge")
            }
            SizingError::MaxIterations { iterations, mismatch } => write!(
                f,
                "sizing did not balance after {iterations} iterations \
                 (mismatch {:.1}%)",
                mismatch * 100.0
            ),
        }
    }
}

impl std::error::Error for SizingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SizingError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for SizingError {
    fn from(e: SimError) -> Self {
        SizingError::Sim(e)
    }
}

/// PMOS width that balances an inverter's rise time against the fall time
/// of an NMOS of width `wn`, from the level-1 saturation currents:
/// `wp = wn · (kp_n/kp_p) · (Vdd−Vtn)²/(Vdd−Vtp)²`.
pub fn balanced_pmos_width(dev: &DeviceParams, wn: f64) -> f64 {
    wn * dev.mobility_ratio() * (dev.vdd - dev.vtn).powi(2) / (dev.vdd - dev.vtp).powi(2)
}

/// Scales a gate's nominal transistor width by the user-requested
/// critical-gate size factor (the paper's "size of critical gates in the
/// RAM circuitry" parameter). Factor 1 is minimum size; precharge
/// transistors and word-line drivers typically use 2–4.
pub fn critical_gate_width(min_width: f64, size_factor: f64) -> f64 {
    assert!(size_factor >= 1.0, "critical gates are never sub-minimum");
    min_width * size_factor
}

/// Result of the simulation-based balancing loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalanceResult {
    /// NMOS width (m), as given.
    pub wn: f64,
    /// PMOS width (m) found by the loop.
    pub wp: f64,
    /// Measured output fall delay (s) at the final sizing.
    pub t_fall: f64,
    /// Measured output rise delay (s) at the final sizing.
    pub t_rise: f64,
    /// Iterations used.
    pub iterations: usize,
}

impl BalanceResult {
    /// Rise/fall mismatch as a fraction of the slower edge.
    pub fn mismatch(&self) -> f64 {
        (self.t_rise - self.t_fall).abs() / self.t_rise.max(self.t_fall)
    }
}

/// Balances an inverter by *simulation*: builds an inverter driving a
/// load, applies a step to the input, measures the 50% crossings of the
/// rising and falling output edges, and solves the signed mismatch
/// `g(wp) = t_rise − t_fall` for its root.
///
/// The iteration is a secant/bisection hybrid: each measurement updates
/// the bracket `[lo, hi]` from the sign of `g`, the next width comes
/// from the secant through the last two measurements, and whenever that
/// estimate leaves the bracket (or the secant is degenerate) the step
/// falls back to bisecting. Superlinear near the root, bisection-robust
/// far from it.
///
/// This is the reproduction of the tool's SPICE-in-the-loop sizing.
///
/// # Errors
///
/// * [`SizingError::Sim`] / [`SizingError::MissingEdge`] when a
///   measurement fails (does not happen for physical parameter ranges).
/// * [`SizingError::MaxIterations`] if the loop cap is hit before the
///   mismatch drops under 2%.
pub fn balance_inverter_by_simulation(
    dev: &DeviceParams,
    gate_length: f64,
    wn: f64,
    load_cap: f64,
) -> Result<BalanceResult, SizingError> {
    let measure = |wp: f64| measure_inverter_edges(dev, gate_length, wn, wp, load_cap);

    // Wider PMOS → faster rise, so g(wp) = t_rise − t_fall decreases in
    // wp; the root is bracketed by wn/2 (far too weak) and 8·wn.
    let mut lo = 0.5 * wn;
    let mut hi = 8.0 * wn;
    let mut wp = balanced_pmos_width(dev, wn).clamp(lo, hi);
    let (mut t_fall, mut t_rise) = measure(wp)?;
    let mut prev: Option<(f64, f64)> = None;
    let mut iterations = 0;
    loop {
        let g = t_rise - t_fall;
        let mismatch = g.abs() / t_rise.max(t_fall);
        if mismatch < MISMATCH_TOL {
            return Ok(BalanceResult {
                wn,
                wp,
                t_fall,
                t_rise,
                iterations,
            });
        }
        if iterations >= MAX_SIZING_ITERS {
            return Err(SizingError::MaxIterations { iterations, mismatch });
        }
        iterations += 1;
        if g > 0.0 {
            lo = wp; // rise too slow: widen the PMOS
        } else {
            hi = wp;
        }
        let next = match prev {
            Some((wp_prev, g_prev)) if (g - g_prev).abs() > 1e-30 => {
                let secant = wp - g * (wp - wp_prev) / (g - g_prev);
                if secant.is_finite() && secant > lo && secant < hi {
                    secant
                } else {
                    0.5 * (lo + hi)
                }
            }
            _ => 0.5 * (lo + hi),
        };
        prev = Some((wp, g));
        wp = next;
        let m = measure(wp)?;
        t_fall = m.0;
        t_rise = m.1;
    }
}

/// Builds and simulates one inverter driving `load_cap` with the
/// adaptive solver, returning the 50%-to-50% `(fall, rise)` propagation
/// delays. This is the production measurement the sizing loop calls.
///
/// # Errors
///
/// [`SizingError::Sim`] on solver failure, [`SizingError::MissingEdge`]
/// when a crossing is absent.
pub fn measure_inverter_edges(
    dev: &DeviceParams,
    gate_length: f64,
    wn: f64,
    wp: f64,
    load_cap: f64,
) -> Result<(f64, f64), SizingError> {
    let (nl, a, y) = inverter_testbench(dev, gate_length, wn, wp, load_cap);
    let sim = TransientSim::new(&nl, dev)?;
    let result = sim.run_adaptive(T_STOP, &AdaptiveOptions::for_span(T_STOP))?;
    extract_edges(dev, &result, a, y)
}

/// [`measure_inverter_edges`] on the fixed-step golden reference path
/// (5 ps steps) — kept for equivalence testing and benchmarking.
///
/// # Errors
///
/// As for [`measure_inverter_edges`].
pub fn measure_inverter_edges_fixed(
    dev: &DeviceParams,
    gate_length: f64,
    wn: f64,
    wp: f64,
    load_cap: f64,
) -> Result<(f64, f64), SizingError> {
    let (nl, a, y) = inverter_testbench(dev, gate_length, wn, wp, load_cap);
    let sim = TransientSim::new(&nl, dev)?;
    let result = sim.run(T_STOP, DT_REF)?;
    extract_edges(dev, &result, a, y)
}

/// The shared measurement fixture: an inverter driving `load_cap`, input
/// rising at 1 ns and falling at 6 ns with 50 ps edges.
fn inverter_testbench(
    dev: &DeviceParams,
    gate_length: f64,
    wn: f64,
    wp: f64,
    load_cap: f64,
) -> (Netlist, NodeId, NodeId) {
    let mut nl = Netlist::new("inv_meas");
    let vdd = nl.node("vdd");
    let a = nl.node("a");
    let y = nl.node("y");
    let gnd = Netlist::ground();
    nl.vdc(vdd, gnd, dev.vdd);
    nl.vpwl(
        a,
        gnd,
        vec![
            (0.0, 0.0),
            (1.0e-9, 0.0),
            (1.05e-9, dev.vdd),
            (6.0e-9, dev.vdd),
            (6.05e-9, 0.0),
        ],
    );
    nl.mos(MosType::Pmos, y, a, vdd, wp, gate_length);
    nl.mos(MosType::Nmos, y, a, gnd, wn, gate_length);
    nl.capacitor(y, gnd, load_cap);
    (nl, a, y)
}

/// Extracts the `(fall, rise)` 50%-to-50% delays from a testbench run.
fn extract_edges(
    dev: &DeviceParams,
    result: &crate::tran::TranResult,
    a: NodeId,
    y: NodeId,
) -> Result<(f64, f64), SizingError> {
    let half = dev.vdd / 2.0;
    let in_rise = result
        .crossing_time(a, half, true, 0.0)
        .ok_or(SizingError::MissingEdge { edge: "input rise" })?;
    let out_fall = result
        .crossing_time(y, half, false, in_rise)
        .ok_or(SizingError::MissingEdge { edge: "output fall" })?;
    let in_fall = result
        .crossing_time(a, half, false, 5.0e-9)
        .ok_or(SizingError::MissingEdge { edge: "input fall" })?;
    let out_rise = result
        .crossing_time(y, half, true, in_fall)
        .ok_or(SizingError::MissingEdge { edge: "output rise" })?;
    Ok((out_fall - in_rise, out_rise - in_fall))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisram_tech::Process;

    #[test]
    fn analytic_balance_scales_with_mobility() {
        let p = Process::cda07();
        let d = p.devices();
        let wp = balanced_pmos_width(d, 1e-6);
        // kp_n/kp_p ~ 2.86 for cda07, threshold correction pushes higher.
        assert!(wp > 2.5e-6 && wp < 4.5e-6, "wp = {wp:e}");
    }

    #[test]
    fn critical_gate_width_scales() {
        assert_eq!(critical_gate_width(1e-6, 2.0), 2e-6);
    }

    #[test]
    #[should_panic(expected = "never sub-minimum")]
    fn sub_minimum_factor_rejected() {
        critical_gate_width(1e-6, 0.5);
    }

    #[test]
    fn simulation_balancing_converges_near_analytic() {
        let p = Process::cda07();
        let d = p.devices();
        let wn = 1.4e-6;
        let r = balance_inverter_by_simulation(d, p.gate_length_m(), wn, 50e-15)
            .expect("balancing converges");
        assert!(r.mismatch() < 0.05, "mismatch {}", r.mismatch());
        let analytic = balanced_pmos_width(d, wn);
        // Simulation agrees with the analytic estimate within 40% (the
        // triode region and input slope shift the optimum slightly).
        assert!(
            (r.wp / analytic - 1.0).abs() < 0.4,
            "sim wp={:.3e} analytic={:.3e}",
            r.wp,
            analytic
        );
        // The secant steps buy superlinear convergence: the old pure
        // bisection needed up to 24 halvings, the hybrid stays well
        // under ten measurements.
        assert!(r.iterations <= 10, "took {} iterations", r.iterations);
    }

    #[test]
    fn unbalanced_inverter_has_larger_mismatch_than_balanced() {
        let p = Process::cda05();
        let d = p.devices();
        let wn = 1e-6;
        let balanced = balance_inverter_by_simulation(d, p.gate_length_m(), wn, 30e-15).unwrap();
        let (tf, tr) = measure_inverter_edges(d, p.gate_length_m(), wn, wn, 30e-15).unwrap();
        let equal_width_mismatch = (tr - tf).abs() / tr.max(tf);
        assert!(balanced.mismatch() < equal_width_mismatch);
        // Equal widths make the rise edge visibly slower.
        assert!(tr > tf);
    }

    #[test]
    fn adaptive_and_fixed_measurements_agree() {
        let p = Process::mosis06();
        let d = p.devices();
        let (wn, wp) = (1e-6, 2.8e-6);
        let (tf_a, tr_a) = measure_inverter_edges(d, p.gate_length_m(), wn, wp, 40e-15).unwrap();
        let (tf_f, tr_f) =
            measure_inverter_edges_fixed(d, p.gate_length_m(), wn, wp, 40e-15).unwrap();
        // The 5 ps backward-Euler reference carries a couple of percent
        // of its own discretization error on these ~100 ps delays, so
        // the drivers agree to 3% on deltas (absolute crossing times
        // agree far tighter — see tests/adaptive_equivalence.rs).
        assert!((tf_a - tf_f).abs() / tf_f < 0.03, "fall {tf_a:e} vs {tf_f:e}");
        assert!((tr_a - tr_f).abs() / tr_f < 0.03, "rise {tr_a:e} vs {tr_f:e}");
    }

    #[test]
    fn sizing_errors_display_and_convert() {
        let e: SizingError = SimError::NoConvergence { time: 1e-9 }.into();
        assert!(e.to_string().contains("sizing simulation failed"));
        assert!(std::error::Error::source(&e).is_some());
        let e = SizingError::MissingEdge { edge: "output rise" };
        assert!(e.to_string().contains("output rise"));
        let e = SizingError::MaxIterations {
            iterations: 24,
            mismatch: 0.1,
        };
        assert!(e.to_string().contains("24 iterations"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
