//! Automatic transistor sizing.
//!
//! Paper §II: "for a given gate size, the n and p transistors are
//! automatically sized to balance the rise and fall times. This is made
//! possible by built-in access to SPICE utilities." We reproduce both the
//! analytic balancing (from the level-1 model) and a simulation-based
//! refinement loop that measures the actual rise/fall delays with the
//! transient simulator and adjusts the PMOS width until they match.

use crate::netlist::{MosType, Netlist};
use crate::tran::TransientSim;
use bisram_tech::DeviceParams;

/// PMOS width that balances an inverter's rise time against the fall time
/// of an NMOS of width `wn`, from the level-1 saturation currents:
/// `wp = wn · (kp_n/kp_p) · (Vdd−Vtn)²/(Vdd−Vtp)²`.
pub fn balanced_pmos_width(dev: &DeviceParams, wn: f64) -> f64 {
    wn * dev.mobility_ratio() * (dev.vdd - dev.vtn).powi(2) / (dev.vdd - dev.vtp).powi(2)
}

/// Scales a gate's nominal transistor width by the user-requested
/// critical-gate size factor (the paper's "size of critical gates in the
/// RAM circuitry" parameter). Factor 1 is minimum size; precharge
/// transistors and word-line drivers typically use 2–4.
pub fn critical_gate_width(min_width: f64, size_factor: f64) -> f64 {
    assert!(size_factor >= 1.0, "critical gates are never sub-minimum");
    min_width * size_factor
}

/// Result of the simulation-based balancing loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalanceResult {
    /// NMOS width (m), as given.
    pub wn: f64,
    /// PMOS width (m) found by the loop.
    pub wp: f64,
    /// Measured output fall delay (s) at the final sizing.
    pub t_fall: f64,
    /// Measured output rise delay (s) at the final sizing.
    pub t_rise: f64,
    /// Iterations used.
    pub iterations: usize,
}

impl BalanceResult {
    /// Rise/fall mismatch as a fraction of the slower edge.
    pub fn mismatch(&self) -> f64 {
        (self.t_rise - self.t_fall).abs() / self.t_rise.max(self.t_fall)
    }
}

/// Balances an inverter by *simulation*: builds an inverter driving a
/// load, applies a step to the input, measures the 50% crossings of the
/// rising and falling output edges, and bisects on the PMOS width.
///
/// This is the reproduction of the tool's SPICE-in-the-loop sizing.
///
/// # Errors
///
/// Returns an error string when the simulator fails to converge (does not
/// happen for physical parameter ranges).
pub fn balance_inverter_by_simulation(
    dev: &DeviceParams,
    gate_length: f64,
    wn: f64,
    load_cap: f64,
) -> Result<BalanceResult, String> {
    let measure = |wp: f64| -> Result<(f64, f64), String> {
        let (t_fall, t_rise) = measure_inverter_edges(dev, gate_length, wn, wp, load_cap)?;
        Ok((t_fall, t_rise))
    };

    // Bisection on wp between wn/2 (far too weak) and 8*wn (far too
    // strong); the balanced point (rise == fall) is crossed monotonically.
    let mut lo = 0.5 * wn;
    let mut hi = 8.0 * wn;
    let mut iterations = 0;
    let mut wp = balanced_pmos_width(dev, wn).clamp(lo, hi);
    let (mut t_fall, mut t_rise) = measure(wp)?;
    while iterations < 24 {
        iterations += 1;
        let mismatch = (t_rise - t_fall).abs() / t_rise.max(t_fall);
        if mismatch < 0.02 {
            break;
        }
        if t_rise > t_fall {
            lo = wp; // rise too slow: widen PMOS
        } else {
            hi = wp;
        }
        wp = 0.5 * (lo + hi);
        let m = measure(wp)?;
        t_fall = m.0;
        t_rise = m.1;
    }
    Ok(BalanceResult {
        wn,
        wp,
        t_fall,
        t_rise,
        iterations,
    })
}

/// Builds and simulates one inverter driving `load_cap`, returning the
/// 50%-to-50% `(fall, rise)` propagation delays.
fn measure_inverter_edges(
    dev: &DeviceParams,
    gate_length: f64,
    wn: f64,
    wp: f64,
    load_cap: f64,
) -> Result<(f64, f64), String> {
    let mut nl = Netlist::new("inv_meas");
    let vdd = nl.node("vdd");
    let a = nl.node("a");
    let y = nl.node("y");
    let gnd = Netlist::ground();
    nl.vdc(vdd, gnd, dev.vdd);
    // Rising input at 1 ns, falling input at 6 ns, both with 50 ps edges.
    nl.vpwl(
        a,
        gnd,
        vec![
            (0.0, 0.0),
            (1.0e-9, 0.0),
            (1.05e-9, dev.vdd),
            (6.0e-9, dev.vdd),
            (6.05e-9, 0.0),
        ],
    );
    nl.mos(MosType::Pmos, y, a, vdd, wp, gate_length);
    nl.mos(MosType::Nmos, y, a, gnd, wn, gate_length);
    nl.capacitor(y, gnd, load_cap);

    let sim = TransientSim::new(&nl, dev).map_err(|e| e.to_string())?;
    let result = sim.run(12.0e-9, 5.0e-12).map_err(|e| e.to_string())?;

    let half = dev.vdd / 2.0;
    let in_rise = result
        .crossing_time(a, half, true, 0.0)
        .ok_or("input never rises")?;
    let out_fall = result
        .crossing_time(y, half, false, in_rise)
        .ok_or("output never falls")?;
    let in_fall = result
        .crossing_time(a, half, false, 5.0e-9)
        .ok_or("input never falls")?;
    let out_rise = result
        .crossing_time(y, half, true, in_fall)
        .ok_or("output never rises")?;
    Ok((out_fall - in_rise, out_rise - in_fall))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisram_tech::Process;

    #[test]
    fn analytic_balance_scales_with_mobility() {
        let p = Process::cda07();
        let d = p.devices();
        let wp = balanced_pmos_width(d, 1e-6);
        // kp_n/kp_p ~ 2.86 for cda07, threshold correction pushes higher.
        assert!(wp > 2.5e-6 && wp < 4.5e-6, "wp = {wp:e}");
    }

    #[test]
    fn critical_gate_width_scales() {
        assert_eq!(critical_gate_width(1e-6, 2.0), 2e-6);
    }

    #[test]
    #[should_panic(expected = "never sub-minimum")]
    fn sub_minimum_factor_rejected() {
        critical_gate_width(1e-6, 0.5);
    }

    #[test]
    fn simulation_balancing_converges_near_analytic() {
        let p = Process::cda07();
        let d = p.devices();
        let wn = 1.4e-6;
        let r = balance_inverter_by_simulation(d, p.gate_length_m(), wn, 50e-15)
            .expect("balancing converges");
        assert!(r.mismatch() < 0.05, "mismatch {}", r.mismatch());
        let analytic = balanced_pmos_width(d, wn);
        // Simulation agrees with the analytic estimate within 40% (the
        // triode region and input slope shift the optimum slightly).
        assert!(
            (r.wp / analytic - 1.0).abs() < 0.4,
            "sim wp={:.3e} analytic={:.3e}",
            r.wp,
            analytic
        );
    }

    #[test]
    fn unbalanced_inverter_has_larger_mismatch_than_balanced() {
        let p = Process::cda05();
        let d = p.devices();
        let wn = 1e-6;
        let balanced = balance_inverter_by_simulation(d, p.gate_length_m(), wn, 30e-15).unwrap();
        let (tf, tr) = measure_inverter_edges(d, p.gate_length_m(), wn, wn, 30e-15).unwrap();
        let equal_width_mismatch = (tr - tf).abs() / tr.max(tf);
        assert!(balanced.mismatch() < equal_width_mismatch);
        // Equal widths make the rise edge visibly slower.
        assert!(tr > tf);
    }
}
