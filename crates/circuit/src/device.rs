//! The level-1 MOS device model, shared by every analysis in the crate.
//!
//! The drain-current equation used to live twice — once inside the
//! transient simulator ([`crate::tran`]) and once, in a DC-only form,
//! inside the SNM butterfly extractor ([`crate::snm`]). Both call sites
//! now funnel through this module, so a model change (or a model bug
//! fix) can never drift the two analyses apart.

use crate::netlist::MosType;
use bisram_tech::DeviceParams;

/// Symmetric level-1 NMOS current (A) from drain to source, handling the
/// source/drain swap for `vds < 0`. `beta` is `kp·W/L`; `lambda` is the
/// channel-length-modulation parameter (pass 0 for the ideal DC model).
pub fn level1_nmos_id(vd: f64, vg: f64, vs: f64, beta: f64, vt: f64, lambda: f64) -> f64 {
    if vd < vs {
        return -level1_nmos_id(vs, vg, vd, beta, vt, lambda);
    }
    let vgs = vg - vs;
    let vds = vd - vs;
    let vov = vgs - vt;
    if vov <= 0.0 {
        return 0.0;
    }
    let clm = 1.0 + lambda * vds;
    if vds >= vov {
        0.5 * beta * vov * vov * clm
    } else {
        beta * (vov * vds - 0.5 * vds * vds) * clm
    }
}

/// The SNM extractor's calling convention: `vgs`/`vds` relative to the
/// source, no channel-length modulation. Exactly
/// `level1_nmos_id(vds, vgs, 0, beta, vt, 0)` — kept as a named entry
/// point so the DC call sites read in their natural variables.
pub fn level1_nmos_id_dc(vgs: f64, vds: f64, beta: f64, vt: f64) -> f64 {
    level1_nmos_id(vds, vgs, 0.0, beta, vt, 0.0)
}

/// Drain current (A) flowing from drain to source for either polarity,
/// at absolute terminal voltages. PMOS is evaluated as an NMOS with all
/// node voltages negated, using the process's `vtp` magnitude.
pub fn mos_id(
    dev: &DeviceParams,
    mos_type: MosType,
    vd: f64,
    vg: f64,
    vs: f64,
    w: f64,
    l: f64,
) -> f64 {
    mos_id_dvt(dev, mos_type, vd, vg, vs, w, l, 0.0)
}

/// [`mos_id`] with a per-device threshold offset `dvt` (V) added to the
/// process threshold magnitude — the SPICE-`DELVTO` handle the variation
/// engine uses to model local mismatch. `dvt = 0.0` is bit-identical to
/// the nominal path (`vt + 0.0` preserves every bit of `vt`).
#[allow(clippy::too_many_arguments)]
pub fn mos_id_dvt(
    dev: &DeviceParams,
    mos_type: MosType,
    vd: f64,
    vg: f64,
    vs: f64,
    w: f64,
    l: f64,
    dvt: f64,
) -> f64 {
    match mos_type {
        MosType::Nmos => level1_nmos_id(
            vd,
            vg,
            vs,
            dev.kp_n * w / l,
            dev.vtn + dvt,
            dev.channel_lambda,
        ),
        MosType::Pmos => -level1_nmos_id(
            -vd,
            -vg,
            -vs,
            dev.kp_p * w / l,
            dev.vtp + dvt,
            dev.channel_lambda,
        ),
    }
}

/// Drain current plus the partial derivatives w.r.t. `(vd, vg, vs)`,
/// computed by central differences around the analytic level-1 current —
/// the linearization the transient simulator stamps into its Jacobian.
pub fn mos_linearized(
    dev: &DeviceParams,
    mos_type: MosType,
    vd: f64,
    vg: f64,
    vs: f64,
    w: f64,
    l: f64,
) -> (f64, f64, f64, f64) {
    mos_linearized_dvt(dev, mos_type, vd, vg, vs, w, l, 0.0)
}

/// [`mos_linearized`] with the per-device threshold offset threaded
/// through to the current evaluation.
#[allow(clippy::too_many_arguments)]
pub fn mos_linearized_dvt(
    dev: &DeviceParams,
    mos_type: MosType,
    vd: f64,
    vg: f64,
    vs: f64,
    w: f64,
    l: f64,
    dvt: f64,
) -> (f64, f64, f64, f64) {
    let f = |vd: f64, vg: f64, vs: f64| mos_id_dvt(dev, mos_type, vd, vg, vs, w, l, dvt);
    let h = 1e-5;
    let i0 = f(vd, vg, vs);
    let gd = (f(vd + h, vg, vs) - f(vd - h, vg, vs)) / (2.0 * h);
    let gg = (f(vd, vg + h, vs) - f(vd, vg - h, vs)) / (2.0 * h);
    let gs = (f(vd, vg, vs + h) - f(vd, vg, vs - h)) / (2.0 * h);
    (i0, gd, gg, gs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisram_tech::Process;

    #[test]
    fn nmos_current_regions() {
        let beta = 1e-3;
        // Cutoff.
        assert_eq!(level1_nmos_id(1.0, 0.3, 0.0, beta, 0.7, 0.0), 0.0);
        // Saturation: vgs=2, vt=0.7, vds=3 > vov → 0.5·β·vov².
        let sat = level1_nmos_id(3.0, 2.0, 0.0, beta, 0.7, 0.0);
        assert!((sat - 0.5 * beta * 1.3f64.powi(2)).abs() < 1e-12);
        // Triode below saturation current.
        let tri = level1_nmos_id(0.2, 2.0, 0.0, beta, 0.7, 0.0);
        assert!(tri > 0.0 && tri < sat);
        // Symmetry on swap.
        let fwd = level1_nmos_id(1.0, 2.0, 0.0, beta, 0.7, 0.0);
        let rev = level1_nmos_id(0.0, 2.0, 1.0, beta, 0.7, 0.0);
        assert!((fwd + rev).abs() < 1e-15);
    }

    /// The dedupe pin: the transient simulator's terminal-voltage
    /// convention and the SNM extractor's vgs/vds convention must agree
    /// to the last bit over a dense sweep of both operating quadrants.
    #[test]
    fn transient_and_dc_call_conventions_agree_bit_for_bit() {
        let beta = 7.3e-4;
        let vt = 0.75;
        for i in -20..=20 {
            for j in -20..=20 {
                let vgs = i as f64 * 0.25;
                let vds = j as f64 * 0.25;
                let dc = level1_nmos_id_dc(vgs, vds, beta, vt);
                // Source at ground: the two conventions are literally
                // the same computation, so bits must match.
                let tran = level1_nmos_id(vds, vgs, 0.0, beta, vt, 0.0);
                assert!(
                    dc.to_bits() == tran.to_bits(),
                    "vgs={vgs} vds={vds}: dc={dc:e} tran={tran:e}"
                );
                // Shift both terminals by an arbitrary source voltage:
                // the transient convention is translation-invariant up
                // to terminal-subtraction rounding.
                let vs = 1.35;
                let shifted = level1_nmos_id(vds + vs, vgs + vs, vs, beta, vt, 0.0);
                assert!(
                    (dc - shifted).abs() <= 1e-12 * dc.abs().max(1e-12),
                    "vgs={vgs} vds={vds}: dc={dc:e} shifted={shifted:e}"
                );
            }
        }
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let d = Process::cda07().devices().clone();
        let (w, l) = (2e-6, 0.7e-6);
        // PMOS source at vdd, gate low, drain low: strong conduction,
        // current flows source→drain, i.e. negative drain→source.
        let i = mos_id(&d, MosType::Pmos, 0.0, 0.0, d.vdd, w, l);
        assert!(i < 0.0, "conducting PMOS pulls the drain up: {i:e}");
        // Cutoff when the gate sits at the source.
        let off = mos_id(&d, MosType::Pmos, 0.0, d.vdd, d.vdd, w, l);
        assert_eq!(off, 0.0);
    }

    /// A per-device threshold offset must be bit-identical to baking the
    /// same offset into the process `DeviceParams` — the contract the
    /// variation engine's zero-variation pin rests on.
    #[test]
    fn dvt_offset_matches_modified_process_params() {
        let d = Process::cda05().devices().clone();
        let (w, l) = (1.5e-6, 0.5e-6);
        let dvt = 0.042;
        let mut shifted = d.clone();
        shifted.vtn += dvt;
        shifted.vtp += dvt;
        for i in 0..=8 {
            let v = i as f64 * d.vdd / 8.0;
            for ty in [MosType::Nmos, MosType::Pmos] {
                let a = mos_id_dvt(&d, ty, v, d.vdd - v, 0.3, w, l, dvt);
                let b = mos_id(&shifted, ty, v, d.vdd - v, 0.3, w, l);
                assert_eq!(a.to_bits(), b.to_bits(), "ty={ty:?} v={v}");
                // And dvt = 0 is exactly the nominal path.
                let n0 = mos_id_dvt(&d, ty, v, d.vdd - v, 0.3, w, l, 0.0);
                let n = mos_id(&d, ty, v, d.vdd - v, 0.3, w, l);
                assert_eq!(n0.to_bits(), n.to_bits());
            }
        }
    }

    #[test]
    fn linearization_matches_finite_difference_of_mos_id() {
        let d = Process::cda05().devices().clone();
        let (w, l) = (1.5e-6, 0.5e-6);
        let (vd, vg, vs) = (1.7, 2.4, 0.3);
        let (i0, gd, gg, gs) = mos_linearized(&d, MosType::Nmos, vd, vg, vs, w, l);
        assert_eq!(i0, mos_id(&d, MosType::Nmos, vd, vg, vs, w, l));
        let h = 1e-5;
        let fd = (mos_id(&d, MosType::Nmos, vd + h, vg, vs, w, l)
            - mos_id(&d, MosType::Nmos, vd - h, vg, vs, w, l))
            / (2.0 * h);
        assert!((gd - fd).abs() < 1e-9 * fd.abs().max(1.0));
        // In saturation-ish bias the gate transconductance dominates the
        // source conductance magnitude-wise with opposite sign.
        assert!(gg > 0.0 && gs < 0.0);
    }
}
