//! Transistor-level netlist database and SPICE export.

use std::collections::HashMap;
use std::fmt::Write as _;

/// Identifier of a circuit node (net).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground node, always present.
    pub const GROUND: NodeId = NodeId(0);

    /// Raw index (0 is ground).
    pub fn index(self) -> usize {
        self.0
    }
}

/// MOS transistor polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosType {
    /// N-channel.
    Nmos,
    /// P-channel.
    Pmos,
}

/// One circuit element.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceKind {
    /// Linear resistor (Ω) between two nodes.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms.
        ohms: f64,
    },
    /// Linear capacitor (F) between two nodes.
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads.
        farads: f64,
    },
    /// Ideal voltage source `a` − `b` = volts(t), with a piecewise-linear
    /// waveform (time, volts) pairs; constant before the first and after
    /// the last point.
    Vsource {
        /// Positive terminal.
        a: NodeId,
        /// Negative terminal.
        b: NodeId,
        /// Piecewise-linear waveform.
        waveform: Vec<(f64, f64)>,
    },
    /// Ideal current source pushing amps(t) from `a` into `b`.
    Isource {
        /// Source terminal (current leaves).
        a: NodeId,
        /// Sink terminal (current enters).
        b: NodeId,
        /// Piecewise-linear waveform.
        waveform: Vec<(f64, f64)>,
    },
    /// Level-1 MOS transistor.
    Mos {
        /// Polarity.
        mos_type: MosType,
        /// Drain.
        d: NodeId,
        /// Gate.
        g: NodeId,
        /// Source.
        s: NodeId,
        /// Channel width (m).
        w: f64,
        /// Channel length (m).
        l: f64,
        /// Per-device threshold-voltage offset (V) added to the process
        /// `vtn`/`vtp` magnitude — the local-mismatch handle of the
        /// variation engine (SPICE `DELVTO`). Zero for nominal devices.
        dvt: f64,
    },
}

/// A flat netlist: named nodes plus a device list.
///
/// ```
/// use bisram_circuit::{Netlist, MosType};
///
/// let mut nl = Netlist::new("inv");
/// let vdd = nl.node("vdd");
/// let a = nl.node("a");
/// let y = nl.node("y");
/// let gnd = Netlist::ground();
/// nl.mos(MosType::Pmos, y, a, vdd, 2e-6, 0.7e-6);
/// nl.mos(MosType::Nmos, y, a, gnd, 1e-6, 0.7e-6);
/// assert_eq!(nl.device_count(), 2);
/// assert!(nl.to_spice().contains("M1"));
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    node_names: Vec<String>,
    by_name: HashMap<String, NodeId>,
    devices: Vec<DeviceKind>,
}

impl Netlist {
    /// Creates an empty netlist containing only the ground node (`0`).
    pub fn new(name: impl Into<String>) -> Self {
        let mut by_name = HashMap::new();
        by_name.insert("0".to_owned(), NodeId(0));
        Netlist {
            name: name.into(),
            node_names: vec!["0".to_owned()],
            by_name,
            devices: Vec::new(),
        }
    }

    /// The ground node.
    pub fn ground() -> NodeId {
        NodeId::GROUND
    }

    /// Netlist name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the node with this name, creating it if needed.
    pub fn node(&mut self, name: impl Into<String>) -> NodeId {
        let name = name.into();
        if let Some(&id) = self.by_name.get(&name) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.clone());
        self.by_name.insert(name, id);
        id
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Name of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// The device list.
    pub fn devices(&self) -> &[DeviceKind] {
        &self.devices
    }

    /// Adds a resistor. Returns the device index.
    pub fn resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) -> usize {
        self.push(DeviceKind::Resistor { a, b, ohms })
    }

    /// Adds a capacitor.
    pub fn capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) -> usize {
        self.push(DeviceKind::Capacitor { a, b, farads })
    }

    /// Adds a DC voltage source.
    pub fn vdc(&mut self, a: NodeId, b: NodeId, volts: f64) -> usize {
        self.push(DeviceKind::Vsource {
            a,
            b,
            waveform: vec![(0.0, volts)],
        })
    }

    /// Adds a piecewise-linear voltage source.
    pub fn vpwl(&mut self, a: NodeId, b: NodeId, waveform: Vec<(f64, f64)>) -> usize {
        assert!(!waveform.is_empty(), "waveform must have at least one point");
        self.push(DeviceKind::Vsource { a, b, waveform })
    }

    /// Adds a piecewise-linear current source from `a` to `b`.
    pub fn ipwl(&mut self, a: NodeId, b: NodeId, waveform: Vec<(f64, f64)>) -> usize {
        assert!(!waveform.is_empty(), "waveform must have at least one point");
        self.push(DeviceKind::Isource { a, b, waveform })
    }

    /// Adds a MOS transistor (bulk is implied: ground for NMOS, the most
    /// positive supply for PMOS; body effect is not modelled).
    pub fn mos(
        &mut self,
        mos_type: MosType,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        w: f64,
        l: f64,
    ) -> usize {
        self.mos_dvt(mos_type, d, g, s, w, l, 0.0)
    }

    /// Adds a MOS transistor with a per-device threshold offset `dvt`
    /// (V, added to the process threshold magnitude) — the entry point
    /// the variation-aware trial kernels use to model local mismatch.
    #[allow(clippy::too_many_arguments)]
    pub fn mos_dvt(
        &mut self,
        mos_type: MosType,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        w: f64,
        l: f64,
        dvt: f64,
    ) -> usize {
        assert!(w > 0.0 && l > 0.0, "device dimensions must be positive");
        assert!(dvt.is_finite(), "threshold offset must be finite");
        self.push(DeviceKind::Mos {
            mos_type,
            d,
            g,
            s,
            w,
            l,
            dvt,
        })
    }

    fn push(&mut self, d: DeviceKind) -> usize {
        self.devices.push(d);
        self.devices.len() - 1
    }

    /// Renders the netlist as a SPICE deck — the "simulation model" output
    /// of the original tool.
    pub fn to_spice(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "* {} (generated by bisram-circuit)", self.name);
        let mut r = 0;
        let mut c = 0;
        let mut v = 0;
        let mut i = 0;
        let mut m = 0;
        for dev in &self.devices {
            match dev {
                DeviceKind::Resistor { a, b, ohms } => {
                    r += 1;
                    let _ = writeln!(
                        out,
                        "R{r} {} {} {ohms:.6e}",
                        self.node_name(*a),
                        self.node_name(*b)
                    );
                }
                DeviceKind::Capacitor { a, b, farads } => {
                    c += 1;
                    let _ = writeln!(
                        out,
                        "C{c} {} {} {farads:.6e}",
                        self.node_name(*a),
                        self.node_name(*b)
                    );
                }
                DeviceKind::Vsource { a, b, waveform } => {
                    v += 1;
                    if waveform.len() == 1 {
                        let _ = writeln!(
                            out,
                            "V{v} {} {} DC {:.6e}",
                            self.node_name(*a),
                            self.node_name(*b),
                            waveform[0].1
                        );
                    } else {
                        let pts: Vec<String> = waveform
                            .iter()
                            .map(|(t, x)| format!("{t:.6e} {x:.6e}"))
                            .collect();
                        let _ = writeln!(
                            out,
                            "V{v} {} {} PWL({})",
                            self.node_name(*a),
                            self.node_name(*b),
                            pts.join(" ")
                        );
                    }
                }
                DeviceKind::Isource { a, b, waveform } => {
                    i += 1;
                    let pts: Vec<String> = waveform
                        .iter()
                        .map(|(t, x)| format!("{t:.6e} {x:.6e}"))
                        .collect();
                    let _ = writeln!(
                        out,
                        "I{i} {} {} PWL({})",
                        self.node_name(*a),
                        self.node_name(*b),
                        pts.join(" ")
                    );
                }
                DeviceKind::Mos {
                    mos_type,
                    d,
                    g,
                    s,
                    w,
                    l,
                    dvt,
                } => {
                    m += 1;
                    let (model, bulk) = match mos_type {
                        MosType::Nmos => ("NMOS", "0"),
                        MosType::Pmos => ("PMOS", "vdd!"),
                    };
                    let delvto = if *dvt != 0.0 {
                        format!(" DELVTO={dvt:.6e}")
                    } else {
                        String::new()
                    };
                    let _ = writeln!(
                        out,
                        "M{m} {} {} {} {bulk} {model} W={w:.6e} L={l:.6e}{delvto}",
                        self.node_name(*d),
                        self.node_name(*g),
                        self.node_name(*s)
                    );
                }
            }
        }
        let _ = writeln!(out, ".END");
        out
    }

    /// Evaluates a piecewise-linear waveform at time `t`.
    pub(crate) fn pwl_at(waveform: &[(f64, f64)], t: f64) -> f64 {
        if waveform.is_empty() {
            return 0.0;
        }
        if t <= waveform[0].0 {
            return waveform[0].1;
        }
        for w in waveform.windows(2) {
            let (t0, v0) = w[0];
            let (t1, v1) = w[1];
            if t <= t1 {
                if t1 == t0 {
                    return v1;
                }
                return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
            }
        }
        waveform.last().expect("nonempty").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_are_interned_by_name() {
        let mut nl = Netlist::new("t");
        let a1 = nl.node("a");
        let a2 = nl.node("a");
        let b = nl.node("b");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(nl.node_count(), 3); // ground + a + b
        assert_eq!(nl.find_node("a"), Some(a1));
        assert_eq!(nl.find_node("zz"), None);
        assert_eq!(nl.node_name(NodeId::GROUND), "0");
    }

    #[test]
    fn spice_export_contains_all_devices() {
        let mut nl = Netlist::new("mix");
        let a = nl.node("a");
        let b = nl.node("b");
        nl.resistor(a, b, 1000.0);
        nl.capacitor(b, Netlist::ground(), 1e-12);
        nl.vdc(a, Netlist::ground(), 3.3);
        nl.ipwl(a, b, vec![(0.0, 0.0), (1e-9, 1e-3)]);
        nl.mos(MosType::Nmos, b, a, Netlist::ground(), 1e-6, 0.5e-6);
        let deck = nl.to_spice();
        for tag in ["R1", "C1", "V1", "I1", "M1", ".END", "PWL"] {
            assert!(deck.contains(tag), "missing {tag} in deck:\n{deck}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn mos_rejects_nonpositive_size() {
        let mut nl = Netlist::new("bad");
        let a = nl.node("a");
        nl.mos(MosType::Nmos, a, a, a, 0.0, 1e-6);
    }

    #[test]
    fn pwl_interpolation() {
        let wf = vec![(0.0, 0.0), (1.0, 10.0), (2.0, 10.0)];
        assert_eq!(Netlist::pwl_at(&wf, -1.0), 0.0);
        assert_eq!(Netlist::pwl_at(&wf, 0.5), 5.0);
        assert_eq!(Netlist::pwl_at(&wf, 1.5), 10.0);
        assert_eq!(Netlist::pwl_at(&wf, 5.0), 10.0);
        // Single-point waveform behaves as DC.
        assert_eq!(Netlist::pwl_at(&[(0.0, 2.5)], 9.0), 2.5);
    }
}
