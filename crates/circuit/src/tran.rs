//! A small modified-nodal-analysis transient simulator.
//!
//! Backward-Euler integration with Newton–Raphson iteration and level-1
//! MOS models — enough to reproduce the paper's circuit experiments: the
//! current-mode sense amplifier of Fig. 3 and the simulation-in-the-loop
//! transistor sizing of §II. Circuits are small (tens of nodes), so a
//! dense LU solve per Newton step is more robust than anything sparse.

use crate::netlist::{DeviceKind, MosType, Netlist, NodeId};
use bisram_tech::DeviceParams;

/// Minimum conductance from every node to ground, for convergence.
const GMIN: f64 = 1e-12;
/// Newton convergence tolerance on node voltages (V).
const VNTOL: f64 = 1e-6;
/// Maximum Newton iterations per timepoint.
const MAX_NEWTON: usize = 200;
/// Per-iteration voltage step limit (V), a simple damping scheme.
const VSTEP_LIMIT: f64 = 0.6;

/// Errors from the transient simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The MNA matrix became singular (typically a floating node).
    SingularMatrix {
        /// Simulation time at which the solve failed.
        time: f64,
    },
    /// Newton iteration failed to converge at a timepoint.
    NoConvergence {
        /// Simulation time of the failed timepoint.
        time: f64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::SingularMatrix { time } => {
                write!(f, "singular MNA matrix at t = {time:.3e} s (floating node?)")
            }
            SimError::NoConvergence { time } => {
                write!(f, "newton iteration did not converge at t = {time:.3e} s")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A prepared transient simulation of one netlist.
#[derive(Debug, Clone)]
pub struct TransientSim<'a> {
    netlist: &'a Netlist,
    dev: &'a DeviceParams,
    /// Number of node-voltage unknowns (nodes minus ground).
    n_nodes: usize,
    /// Number of voltage-source current unknowns.
    n_vsrc: usize,
}

/// The waveforms produced by a transient run.
#[derive(Debug, Clone, PartialEq)]
pub struct TranResult {
    times: Vec<f64>,
    /// `volts[sample][node_index]`, ground included at index 0.
    volts: Vec<Vec<f64>>,
}

impl TranResult {
    /// The sampled timepoints.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Voltage of `node` at sample `i`.
    pub fn voltage(&self, node: NodeId, i: usize) -> f64 {
        self.volts[i][node.index()]
    }

    /// Voltage of `node` at the final timepoint.
    pub fn final_voltage(&self, node: NodeId) -> f64 {
        self.volts
            .last()
            .map(|v| v[node.index()])
            .unwrap_or(0.0)
    }

    /// Linearly interpolated voltage of `node` at time `t`.
    pub fn voltage_at(&self, node: NodeId, t: f64) -> f64 {
        if self.times.is_empty() {
            return 0.0;
        }
        if t <= self.times[0] {
            return self.voltage(node, 0);
        }
        for i in 1..self.times.len() {
            if t <= self.times[i] {
                let (t0, t1) = (self.times[i - 1], self.times[i]);
                let (v0, v1) = (self.voltage(node, i - 1), self.voltage(node, i));
                if t1 == t0 {
                    return v1;
                }
                return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
            }
        }
        self.final_voltage(node)
    }

    /// First time after `after` at which `node` crosses `level` in the
    /// given direction (`rising = true` for an upward crossing), found by
    /// linear interpolation between samples. `None` when no crossing
    /// occurs.
    pub fn crossing_time(&self, node: NodeId, level: f64, rising: bool, after: f64) -> Option<f64> {
        for i in 1..self.times.len() {
            if self.times[i] <= after {
                continue;
            }
            let v0 = self.voltage(node, i - 1);
            let v1 = self.voltage(node, i);
            let crossed = if rising {
                v0 < level && v1 >= level
            } else {
                v0 > level && v1 <= level
            };
            if crossed {
                let (t0, t1) = (self.times[i - 1], self.times[i]);
                let frac = if (v1 - v0).abs() < 1e-30 {
                    1.0
                } else {
                    (level - v0) / (v1 - v0)
                };
                let t = t0 + frac * (t1 - t0);
                if t > after {
                    return Some(t);
                }
            }
        }
        None
    }
}

impl<'a> TransientSim<'a> {
    /// Prepares a simulation.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; the `Result` reserves room for
    /// topology validation errors.
    pub fn new(netlist: &'a Netlist, dev: &'a DeviceParams) -> Result<Self, SimError> {
        let n_vsrc = netlist
            .devices()
            .iter()
            .filter(|d| matches!(d, DeviceKind::Vsource { .. }))
            .count();
        Ok(TransientSim {
            netlist,
            dev,
            n_nodes: netlist.node_count() - 1,
            n_vsrc,
        })
    }

    /// Runs the transient analysis from 0 to `t_stop` with fixed step
    /// `dt`, starting from all node voltages at zero.
    ///
    /// # Errors
    ///
    /// * [`SimError::SingularMatrix`] on floating-node topologies.
    /// * [`SimError::NoConvergence`] if Newton fails.
    ///
    /// # Panics
    ///
    /// Panics if `t_stop` or `dt` is not positive.
    pub fn run(&self, t_stop: f64, dt: f64) -> Result<TranResult, SimError> {
        assert!(t_stop > 0.0 && dt > 0.0, "time parameters must be positive");
        let n = self.n_nodes + self.n_vsrc;
        // Node voltages from the previous accepted timepoint (index 0 is
        // ground and stays 0).
        let mut v_prev = vec![0.0; self.n_nodes + 1];
        let mut times = Vec::new();
        let mut volts = Vec::new();

        // Solve the t = 0 point first (caps behave as open history from
        // zero), then march.
        let steps = (t_stop / dt).ceil() as usize;
        for step in 0..=steps {
            let t = (step as f64 * dt).min(t_stop);
            let mut x: Vec<f64> = v_prev.clone();
            let mut iv = vec![0.0; self.n_vsrc];
            let mut converged = false;
            for _ in 0..MAX_NEWTON {
                let (a, mut rhs) = self.assemble(t, dt, &x, &v_prev);
                let sol = solve_dense(a, &mut rhs).ok_or(SimError::SingularMatrix { time: t })?;
                let mut max_dv: f64 = 0.0;
                for k in 0..self.n_nodes {
                    let newv = sol[k];
                    let dv = (newv - x[k + 1]).clamp(-VSTEP_LIMIT, VSTEP_LIMIT);
                    max_dv = max_dv.max((newv - x[k + 1]).abs());
                    x[k + 1] += dv;
                }
                iv.copy_from_slice(&sol[self.n_nodes..n]);
                if max_dv < VNTOL {
                    converged = true;
                    break;
                }
            }
            if !converged {
                return Err(SimError::NoConvergence { time: t });
            }
            times.push(t);
            volts.push(x.clone());
            v_prev = x;
        }
        Ok(TranResult { times, volts })
    }

    /// Assembles the linearized MNA system `A·x = rhs` around the current
    /// Newton iterate `x` (node voltages, ground included at index 0)
    /// with backward-Euler companions from `v_prev`.
    fn assemble(
        &self,
        t: f64,
        dt: f64,
        x: &[f64],
        v_prev: &[f64],
    ) -> (Vec<Vec<f64>>, Vec<f64>) {
        let n = self.n_nodes + self.n_vsrc;
        let mut a = vec![vec![0.0; n]; n];
        let mut rhs = vec![0.0; n];
        // Row/col index of a node in the reduced system (ground → None).
        let idx = |node: NodeId| -> Option<usize> {
            if node == NodeId::GROUND {
                None
            } else {
                Some(node.index() - 1)
            }
        };
        let stamp_g = |a: &mut Vec<Vec<f64>>, p: Option<usize>, q: Option<usize>, g: f64| {
            if let Some(i) = p {
                a[i][i] += g;
                if let Some(j) = q {
                    a[i][j] -= g;
                }
            }
            if let Some(j) = q {
                a[j][j] += g;
                if let Some(i) = p {
                    a[j][i] -= g;
                }
            }
        };

        // GMIN from every node to ground.
        for (k, row) in a.iter_mut().enumerate().take(self.n_nodes) {
            row[k] += GMIN;
        }

        let mut vsrc_row = self.n_nodes;
        for dev in self.netlist.devices() {
            match dev {
                DeviceKind::Resistor { a: p, b: q, ohms } => {
                    stamp_g(&mut a, idx(*p), idx(*q), 1.0 / ohms);
                }
                DeviceKind::Capacitor { a: p, b: q, farads } => {
                    // Backward Euler companion: g = C/dt, I_eq = g·v_prev.
                    let g = farads / dt;
                    stamp_g(&mut a, idx(*p), idx(*q), g);
                    let vprev = v_prev[p.index()] - v_prev[q.index()];
                    if let Some(i) = idx(*p) {
                        rhs[i] += g * vprev;
                    }
                    if let Some(j) = idx(*q) {
                        rhs[j] -= g * vprev;
                    }
                }
                DeviceKind::Isource { a: p, b: q, waveform } => {
                    let i = Netlist::pwl_at(waveform, t);
                    if let Some(ip) = idx(*p) {
                        rhs[ip] -= i;
                    }
                    if let Some(iq) = idx(*q) {
                        rhs[iq] += i;
                    }
                }
                DeviceKind::Vsource { a: p, b: q, waveform } => {
                    let v = Netlist::pwl_at(waveform, t);
                    let row = vsrc_row;
                    vsrc_row += 1;
                    if let Some(i) = idx(*p) {
                        a[i][row] += 1.0;
                        a[row][i] += 1.0;
                    }
                    if let Some(j) = idx(*q) {
                        a[j][row] -= 1.0;
                        a[row][j] -= 1.0;
                    }
                    rhs[row] = v;
                }
                DeviceKind::Mos {
                    mos_type,
                    d,
                    g,
                    s,
                    w,
                    l,
                } => {
                    let vd = x[d.index()];
                    let vg = x[g.index()];
                    let vs = x[s.index()];
                    let (i0, gd, gg, gs) = self.mos_linearized(*mos_type, vd, vg, vs, *w, *l);
                    // i flows from drain node into source node:
                    // i ≈ i0 + gd·Δvd + gg·Δvg + gs·Δvs, already expanded
                    // around the iterate, so the rhs carries the residue.
                    let res = i0 - gd * vd - gg * vg - gs * vs;
                    if let Some(di) = idx(*d) {
                        a[di][di] += gd;
                        if let Some(gi) = idx(*g) {
                            a[di][gi] += gg;
                        }
                        if let Some(si) = idx(*s) {
                            a[di][si] += gs;
                        }
                        rhs[di] -= res;
                    }
                    if let Some(si) = idx(*s) {
                        a[si][si] -= gs;
                        if let Some(di) = idx(*d) {
                            a[si][di] -= gd;
                        }
                        if let Some(gi) = idx(*g) {
                            a[si][gi] -= gg;
                        }
                        rhs[si] += res;
                    }
                }
            }
        }
        (a, rhs)
    }

    /// Drain current of a MOS at the given terminal voltages, plus the
    /// partial derivatives w.r.t. (vd, vg, vs), computed by central
    /// differences around the analytic level-1 current.
    fn mos_linearized(
        &self,
        mos_type: MosType,
        vd: f64,
        vg: f64,
        vs: f64,
        w: f64,
        l: f64,
    ) -> (f64, f64, f64, f64) {
        let f = |vd: f64, vg: f64, vs: f64| self.mos_id(mos_type, vd, vg, vs, w, l);
        let h = 1e-5;
        let i0 = f(vd, vg, vs);
        let gd = (f(vd + h, vg, vs) - f(vd - h, vg, vs)) / (2.0 * h);
        let gg = (f(vd, vg + h, vs) - f(vd, vg - h, vs)) / (2.0 * h);
        let gs = (f(vd, vg, vs + h) - f(vd, vg, vs - h)) / (2.0 * h);
        (i0, gd, gg, gs)
    }

    /// Level-1 drain current (A) flowing from drain to source.
    fn mos_id(&self, mos_type: MosType, vd: f64, vg: f64, vs: f64, w: f64, l: f64) -> f64 {
        let d = self.dev;
        match mos_type {
            MosType::Nmos => nmos_id(vd, vg, vs, d.kp_n * w / l, d.vtn, d.channel_lambda),
            // PMOS is an NMOS with all node voltages negated.
            MosType::Pmos => -nmos_id(-vd, -vg, -vs, d.kp_p * w / l, d.vtp, d.channel_lambda),
        }
    }
}

/// Symmetric level-1 NMOS current from drain to source, handling the
/// source/drain swap for vds < 0.
fn nmos_id(vd: f64, vg: f64, vs: f64, beta: f64, vt: f64, lambda: f64) -> f64 {
    if vd < vs {
        return -nmos_id(vs, vg, vd, beta, vt, lambda);
    }
    let vgs = vg - vs;
    let vds = vd - vs;
    let vov = vgs - vt;
    if vov <= 0.0 {
        return 0.0;
    }
    let clm = 1.0 + lambda * vds;
    if vds >= vov {
        0.5 * beta * vov * vov * clm
    } else {
        beta * (vov * vds - 0.5 * vds * vds) * clm
    }
}

/// Dense Gaussian elimination with partial pivoting. Returns `None` on a
/// (numerically) singular matrix.
fn solve_dense(mut a: Vec<Vec<f64>>, rhs: &mut [f64]) -> Option<Vec<f64>> {
    let n = rhs.len();
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        for row in (col + 1)..n {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-20 {
            return None;
        }
        if pivot != col {
            a.swap(pivot, col);
            rhs.swap(pivot, col);
        }
        let (head, tail) = a.split_at_mut(col + 1);
        let pivot_row = &head[col];
        let diag = pivot_row[col];
        let rhs_col = rhs[col];
        for (off, row_vec) in tail.iter_mut().enumerate() {
            let factor = row_vec[col] / diag;
            if factor == 0.0 {
                continue;
            }
            for (rv, pv) in row_vec[col..n].iter_mut().zip(&pivot_row[col..n]) {
                *rv -= factor * *pv;
            }
            rhs[col + 1 + off] -= factor * rhs_col;
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisram_tech::Process;

    fn dev() -> DeviceParams {
        Process::cda07().devices().clone()
    }

    #[test]
    fn rc_charging_matches_analytic() {
        // 1kΩ from a 1V source into 1nF: v(t) = 1 - e^{-t/RC}, RC = 1 µs.
        let mut nl = Netlist::new("rc");
        let src = nl.node("src");
        let out = nl.node("out");
        nl.vdc(src, Netlist::ground(), 1.0);
        nl.resistor(src, out, 1000.0);
        nl.capacitor(out, Netlist::ground(), 1e-9);
        let d = dev();
        let sim = TransientSim::new(&nl, &d).unwrap();
        let r = sim.run(10e-6, 1e-8).unwrap();
        let v_tau = r.voltage_at(out, 1e-6);
        let expect = 1.0 - (-1.0f64).exp();
        assert!((v_tau - expect).abs() < 0.02, "v(tau) = {v_tau}, expect {expect}");
        // After 10 time constants the capacitor is within 1e-4 of the rail.
        assert!((r.final_voltage(out) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn divider_settles_to_half() {
        let mut nl = Netlist::new("div");
        let a = nl.node("a");
        let m = nl.node("m");
        nl.vdc(a, Netlist::ground(), 2.0);
        nl.resistor(a, m, 1000.0);
        nl.resistor(m, Netlist::ground(), 1000.0);
        let d = dev();
        let r = TransientSim::new(&nl, &d).unwrap().run(1e-9, 1e-10).unwrap();
        assert!((r.final_voltage(m) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn inverter_switches_rail_to_rail() {
        let d = dev();
        let mut nl = Netlist::new("inv");
        let vdd = nl.node("vdd");
        let a = nl.node("a");
        let y = nl.node("y");
        nl.vdc(vdd, Netlist::ground(), d.vdd);
        nl.vpwl(
            a,
            Netlist::ground(),
            vec![(0.0, 0.0), (2e-9, 0.0), (2.1e-9, d.vdd)],
        );
        nl.mos(MosType::Pmos, y, a, vdd, 3e-6, 0.7e-6);
        nl.mos(MosType::Nmos, y, a, Netlist::ground(), 1e-6, 0.7e-6);
        nl.capacitor(y, Netlist::ground(), 20e-15);
        let r = TransientSim::new(&nl, &d).unwrap().run(5e-9, 5e-12).unwrap();
        // Before the edge the output is high; after, low.
        assert!(r.voltage_at(y, 1.9e-9) > 0.95 * d.vdd);
        assert!(r.final_voltage(y) < 0.05 * d.vdd);
        // There is a falling crossing after the input edge.
        let t = r.crossing_time(y, d.vdd / 2.0, false, 2e-9);
        assert!(t.is_some());
    }

    #[test]
    fn current_source_integrates_on_capacitor() {
        // 1 mA into 1 pF for 1 ns → 1 V ramp.
        let mut nl = Netlist::new("ramp");
        let out = nl.node("out");
        nl.ipwl(Netlist::ground(), out, vec![(0.0, 1e-3)]);
        nl.capacitor(out, Netlist::ground(), 1e-12);
        let d = dev();
        let r = TransientSim::new(&nl, &d).unwrap().run(1e-9, 1e-12).unwrap();
        assert!((r.final_voltage(out) - 1.0).abs() < 0.01);
    }

    #[test]
    fn crossing_detection_and_interpolation() {
        let res = TranResult {
            times: vec![0.0, 1.0, 2.0, 3.0],
            volts: vec![
                vec![0.0, 0.0],
                vec![0.0, 1.0],
                vec![0.0, 2.0],
                vec![0.0, 0.0],
            ],
        };
        let n = NodeId(1);
        assert_eq!(res.crossing_time(n, 0.5, true, 0.0), Some(0.5));
        assert_eq!(res.crossing_time(n, 1.5, true, 0.0), Some(1.5));
        assert_eq!(res.crossing_time(n, 1.0, false, 2.0), Some(2.5));
        assert_eq!(res.crossing_time(n, 5.0, true, 0.0), None);
        assert_eq!(res.voltage_at(n, 0.25), 0.25);
        assert_eq!(res.voltage_at(n, 99.0), 0.0);
    }

    #[test]
    fn floating_node_reports_singular_or_settles_via_gmin() {
        // A node connected only through a capacitor is handled by GMIN —
        // must not error out.
        let mut nl = Netlist::new("float");
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vdc(a, Netlist::ground(), 1.0);
        nl.capacitor(a, b, 1e-12);
        let d = dev();
        let r = TransientSim::new(&nl, &d).unwrap().run(1e-9, 1e-11);
        assert!(r.is_ok());
    }

    #[test]
    fn nmos_current_regions() {
        let beta = 1e-3;
        // Cutoff.
        assert_eq!(nmos_id(1.0, 0.3, 0.0, beta, 0.7, 0.0), 0.0);
        // Saturation: vgs=2, vt=0.7, vds=3 > vov → 0.5·β·vov².
        let sat = nmos_id(3.0, 2.0, 0.0, beta, 0.7, 0.0);
        assert!((sat - 0.5 * beta * 1.3f64.powi(2)).abs() < 1e-12);
        // Triode below saturation current.
        let tri = nmos_id(0.2, 2.0, 0.0, beta, 0.7, 0.0);
        assert!(tri > 0.0 && tri < sat);
        // Symmetry on swap.
        let fwd = nmos_id(1.0, 2.0, 0.0, beta, 0.7, 0.0);
        let rev = nmos_id(0.0, 2.0, 1.0, beta, 0.7, 0.0);
        assert!((fwd + rev).abs() < 1e-15);
    }

    #[test]
    fn solver_handles_permuted_systems() {
        // x + 2y = 5; 3x + 4y = 11 → x = 1, y = 2 — but with a zero
        // leading pivot to force the row swap.
        let a = vec![vec![0.0, 2.0], vec![3.0, 4.0]];
        let mut rhs = vec![4.0, 11.0];
        let x = solve_dense(a, &mut rhs).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        // Singular matrix returns None.
        let a = vec![vec![1.0, 1.0], vec![2.0, 2.0]];
        let mut rhs = vec![1.0, 2.0];
        assert!(solve_dense(a, &mut rhs).is_none());
    }

    #[test]
    fn sim_error_display() {
        let e = SimError::NoConvergence { time: 1e-9 };
        assert!(e.to_string().contains("1.000e-9"));
        let e = SimError::SingularMatrix { time: 0.0 };
        assert!(e.to_string().contains("singular"));
    }
}
