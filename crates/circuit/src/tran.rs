//! A small modified-nodal-analysis transient simulator.
//!
//! Backward-Euler integration with Newton–Raphson iteration and level-1
//! MOS models — enough to reproduce the paper's circuit experiments: the
//! current-mode sense amplifier of Fig. 3 and the simulation-in-the-loop
//! transistor sizing of §II. Circuits are small (tens of nodes), so a
//! dense LU solve per Newton step is more robust than anything sparse.
//!
//! Two integration drivers share the same device models and the same
//! discrete (backward-Euler) circuit equations:
//!
//! * [`TransientSim::run`] — the original fixed-step driver, kept as the
//!   golden reference path: full Jacobian assembly and a fresh dense
//!   solve on every Newton iteration of every step.
//! * [`TransientSim::run_adaptive`] — the production driver: adaptive
//!   timestepping with local-truncation-error control (step halving and
//!   doubling between user-set `dt_min`/`dt_max`), pre-assembled static
//!   stamps so per-step assembly only re-stamps MOS devices and
//!   companion conductances, and modified-Newton iteration that reuses
//!   the LU factorization until convergence stalls. Source-waveform
//!   breakpoints are never stepped over, so sharp input edges stay
//!   resolved. Both drivers converge each accepted timepoint to the
//!   same `VNTOL`, which is why their waveforms agree to within the
//!   truncation tolerance (see `tests/adaptive_equivalence.rs`).

use crate::device;
use crate::netlist::{DeviceKind, MosType, Netlist, NodeId};
use bisram_tech::DeviceParams;

/// Minimum conductance from every node to ground, for convergence.
const GMIN: f64 = 1e-12;
/// Newton convergence tolerance on node voltages (V).
const VNTOL: f64 = 1e-6;
/// Maximum Newton iterations per timepoint.
const MAX_NEWTON: usize = 200;
/// Per-iteration voltage step limit (V), a simple damping scheme.
const VSTEP_LIMIT: f64 = 0.6;
/// Modified Newton: a step must shrink `max_dv` by at least this factor
/// over the previous iteration, or the stale Jacobian is declared
/// stalled and refactored.
const STALL_CONTRACTION: f64 = 0.5;

/// Errors from the transient simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The MNA matrix became singular (typically a floating node).
    SingularMatrix {
        /// Simulation time at which the solve failed.
        time: f64,
    },
    /// Newton iteration failed to converge at a timepoint.
    NoConvergence {
        /// Simulation time of the failed timepoint.
        time: f64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::SingularMatrix { time } => {
                write!(f, "singular MNA matrix at t = {time:.3e} s (floating node?)")
            }
            SimError::NoConvergence { time } => {
                write!(f, "newton iteration did not converge at t = {time:.3e} s")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Step-size policy of the adaptive driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveOptions {
    /// Smallest allowed timestep (s). Steps at the floor are accepted
    /// unconditionally, so the floor bounds total work.
    pub dt_min: f64,
    /// Largest allowed timestep (s).
    pub dt_max: f64,
    /// Local-truncation-error acceptance threshold (V): a step whose
    /// predictor mismatch on any node exceeds this is rejected and
    /// retried at half the step; a step under a quarter of it doubles
    /// the next step.
    pub lte_tol: f64,
}

impl AdaptiveOptions {
    /// Sensible defaults for a simulation of length `t_stop`: the floor
    /// resolves 1/50 000 of the span (fine enough for 50 ps input edges
    /// on nanosecond experiments), the ceiling crosses quiet stretches
    /// in 1/64-span strides, and the 1 mV tolerance keeps interpolated
    /// crossing times within 1% of the fixed-step reference.
    ///
    /// # Panics
    ///
    /// Panics if `t_stop` is not positive.
    pub fn for_span(t_stop: f64) -> Self {
        assert!(t_stop > 0.0, "time span must be positive");
        AdaptiveOptions {
            dt_min: t_stop / 50_000.0,
            dt_max: t_stop / 64.0,
            lte_tol: 1e-3,
        }
    }
}

/// Work counters of one adaptive run — the observability half of the
/// solver overhaul (asserted by the equivalence tests, printed by the
/// `tran_solver` bench).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Timepoints accepted into the result.
    pub steps_accepted: usize,
    /// Step attempts rejected by the LTE controller (or by a Newton
    /// failure that triggered a retry at a smaller step).
    pub steps_rejected: usize,
    /// Total Newton iterations across all attempts.
    pub newton_iterations: usize,
    /// Jacobian assemblies + LU factorizations performed.
    pub lu_factorizations: usize,
    /// Newton iterations served by a reused (stale) LU factorization.
    pub lu_reuses: usize,
}

/// A prepared transient simulation of one netlist.
#[derive(Debug, Clone)]
pub struct TransientSim<'a> {
    netlist: &'a Netlist,
    dev: &'a DeviceParams,
    /// Number of node-voltage unknowns (nodes minus ground).
    n_nodes: usize,
    /// Number of voltage-source current unknowns.
    n_vsrc: usize,
}

/// The waveforms produced by a transient run.
#[derive(Debug, Clone, PartialEq)]
pub struct TranResult {
    times: Vec<f64>,
    /// `volts[sample][node_index]`, ground included at index 0.
    volts: Vec<Vec<f64>>,
}

impl TranResult {
    /// The sampled timepoints.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Voltage of `node` at sample `i`.
    pub fn voltage(&self, node: NodeId, i: usize) -> f64 {
        self.volts[i][node.index()]
    }

    /// Voltage of `node` at the final timepoint.
    pub fn final_voltage(&self, node: NodeId) -> f64 {
        self.volts
            .last()
            .map(|v| v[node.index()])
            .unwrap_or(0.0)
    }

    /// Linearly interpolated voltage of `node` at time `t`.
    pub fn voltage_at(&self, node: NodeId, t: f64) -> f64 {
        if self.times.is_empty() {
            return 0.0;
        }
        if t <= self.times[0] {
            return self.voltage(node, 0);
        }
        for i in 1..self.times.len() {
            if t <= self.times[i] {
                let (t0, t1) = (self.times[i - 1], self.times[i]);
                let (v0, v1) = (self.voltage(node, i - 1), self.voltage(node, i));
                if t1 == t0 {
                    return v1;
                }
                return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
            }
        }
        self.final_voltage(node)
    }

    /// First time after `after` at which `node` crosses `level` in the
    /// given direction (`rising = true` for an upward crossing), found by
    /// linear interpolation between samples. `None` when no crossing
    /// occurs.
    pub fn crossing_time(&self, node: NodeId, level: f64, rising: bool, after: f64) -> Option<f64> {
        for i in 1..self.times.len() {
            if self.times[i] <= after {
                continue;
            }
            let v0 = self.voltage(node, i - 1);
            let v1 = self.voltage(node, i);
            let crossed = if rising {
                v0 < level && v1 >= level
            } else {
                v0 > level && v1 <= level
            };
            if crossed {
                let (t0, t1) = (self.times[i - 1], self.times[i]);
                let frac = if (v1 - v0).abs() < 1e-30 {
                    1.0
                } else {
                    (level - v0) / (v1 - v0)
                };
                let t = t0 + frac * (t1 - t0);
                if t > after {
                    return Some(t);
                }
            }
        }
        None
    }
}

/// Pre-resolved node indices of one capacitor (reduced-system column, or
/// `None` for ground) plus the raw node ids for history lookups.
#[derive(Debug, Clone, Copy)]
struct CapStamp {
    pi: Option<usize>,
    qi: Option<usize>,
    p: usize,
    q: usize,
    farads: f64,
}

/// Pre-resolved MOS device: raw terminal ids for voltage lookups plus
/// reduced-system rows for stamping.
#[derive(Debug, Clone, Copy)]
struct MosStamp {
    mos_type: MosType,
    d: usize,
    g: usize,
    s: usize,
    di: Option<usize>,
    si: Option<usize>,
    gi: Option<usize>,
    w: f64,
    l: f64,
    dvt: f64,
}

/// Pre-resolved independent source.
#[derive(Debug, Clone)]
struct SrcStamp<'a> {
    pi: Option<usize>,
    qi: Option<usize>,
    waveform: &'a [(f64, f64)],
}

/// Pre-resolved voltage source: its MNA branch row (the ±1 incidence
/// stamps already live in the static matrix).
#[derive(Debug, Clone)]
struct VsrcStamp<'a> {
    row: usize,
    waveform: &'a [(f64, f64)],
}

/// Everything the adaptive driver pre-assembles once per simulation: the
/// static linear stamps (resistors, GMIN, voltage-source incidence) as a
/// dense matrix, index-resolved device lists for the dynamic re-stamps,
/// and the sorted source-waveform breakpoints the step controller must
/// not step across.
#[derive(Debug, Clone)]
struct Stamps<'a> {
    /// Full system dimension (`n_nodes + n_vsrc`).
    n: usize,
    /// Static part of the MNA matrix, flat row-major `n × n`.
    base: Vec<f64>,
    caps: Vec<CapStamp>,
    mos: Vec<MosStamp>,
    isrcs: Vec<SrcStamp<'a>>,
    vsrcs: Vec<VsrcStamp<'a>>,
    /// Sorted, deduplicated waveform corner times inside `(0, ∞)`.
    breakpoints: Vec<f64>,
}

impl<'a> TransientSim<'a> {
    /// Prepares a simulation.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; the `Result` reserves room for
    /// topology validation errors.
    pub fn new(netlist: &'a Netlist, dev: &'a DeviceParams) -> Result<Self, SimError> {
        let n_vsrc = netlist
            .devices()
            .iter()
            .filter(|d| matches!(d, DeviceKind::Vsource { .. }))
            .count();
        Ok(TransientSim {
            netlist,
            dev,
            n_nodes: netlist.node_count() - 1,
            n_vsrc,
        })
    }

    /// Runs the transient analysis from 0 to `t_stop` with fixed step
    /// `dt`, starting from all node voltages at zero.
    ///
    /// This is the golden reference path: full Jacobian assembly and a
    /// fresh dense solve every Newton iteration. Use
    /// [`run_adaptive`](Self::run_adaptive) for production workloads.
    ///
    /// # Errors
    ///
    /// * [`SimError::SingularMatrix`] on floating-node topologies.
    /// * [`SimError::NoConvergence`] if Newton fails.
    ///
    /// # Panics
    ///
    /// Panics if `t_stop` or `dt` is not positive.
    pub fn run(&self, t_stop: f64, dt: f64) -> Result<TranResult, SimError> {
        assert!(t_stop > 0.0 && dt > 0.0, "time parameters must be positive");
        let n = self.n_nodes + self.n_vsrc;
        // Node voltages from the previous accepted timepoint (index 0 is
        // ground and stays 0).
        let mut v_prev = vec![0.0; self.n_nodes + 1];
        let mut times = Vec::new();
        let mut volts = Vec::new();

        // Solve the t = 0 point first (caps behave as open history from
        // zero), then march.
        let steps = (t_stop / dt).ceil() as usize;
        for step in 0..=steps {
            let t = (step as f64 * dt).min(t_stop);
            let mut x: Vec<f64> = v_prev.clone();
            let mut iv = vec![0.0; self.n_vsrc];
            let mut converged = false;
            for _ in 0..MAX_NEWTON {
                let (a, mut rhs) = self.assemble(t, dt, &x, &v_prev);
                let sol = solve_dense(a, &mut rhs).ok_or(SimError::SingularMatrix { time: t })?;
                let mut max_dv: f64 = 0.0;
                for k in 0..self.n_nodes {
                    let newv = sol[k];
                    let dv = (newv - x[k + 1]).clamp(-VSTEP_LIMIT, VSTEP_LIMIT);
                    max_dv = max_dv.max((newv - x[k + 1]).abs());
                    x[k + 1] += dv;
                }
                iv.copy_from_slice(&sol[self.n_nodes..n]);
                if max_dv < VNTOL {
                    converged = true;
                    break;
                }
            }
            if !converged {
                return Err(SimError::NoConvergence { time: t });
            }
            times.push(t);
            volts.push(x.clone());
            v_prev = x;
        }
        Ok(TranResult { times, volts })
    }

    /// Runs the transient analysis from 0 to `t_stop` with adaptive
    /// timestepping (see [`AdaptiveOptions`]), discarding the work
    /// counters.
    ///
    /// # Errors
    ///
    /// * [`SimError::SingularMatrix`] on floating-node topologies.
    /// * [`SimError::NoConvergence`] if Newton fails even at `dt_min`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < dt_min <= dt_max` and `lte_tol > 0`.
    pub fn run_adaptive(
        &self,
        t_stop: f64,
        opts: &AdaptiveOptions,
    ) -> Result<TranResult, SimError> {
        self.run_adaptive_with_stats(t_stop, opts).map(|(r, _)| r)
    }

    /// [`run_adaptive`](Self::run_adaptive), also returning the solver's
    /// work counters.
    ///
    /// # Errors
    ///
    /// As for [`run_adaptive`](Self::run_adaptive).
    ///
    /// # Panics
    ///
    /// As for [`run_adaptive`](Self::run_adaptive).
    pub fn run_adaptive_with_stats(
        &self,
        t_stop: f64,
        opts: &AdaptiveOptions,
    ) -> Result<(TranResult, SolverStats), SimError> {
        assert!(t_stop > 0.0, "time parameters must be positive");
        assert!(
            opts.dt_min > 0.0 && opts.dt_min <= opts.dt_max,
            "need 0 < dt_min <= dt_max"
        );
        assert!(opts.lte_tol > 0.0, "lte_tol must be positive");

        let st = self.stamps();
        let mut stats = SolverStats::default();
        let mut lu = LuState::new(st.n);
        let mut times: Vec<f64> = Vec::new();
        let mut volts: Vec<Vec<f64>> = Vec::new();

        // t = 0 operating point, with the same from-zero companion
        // history the fixed-step driver uses for its first point.
        let mut v_prev = vec![0.0; self.n_nodes + 1];
        let mut iv_prev = vec![0.0; self.n_vsrc];
        let (x0, iv0) =
            self.newton_solve(&st, &mut lu, 0.0, opts.dt_min, &v_prev, &iv_prev, &mut stats)?;
        times.push(0.0);
        volts.push(x0.clone());
        stats.steps_accepted += 1;
        v_prev = x0;
        iv_prev = iv0;

        // Previous *accepted* point behind `v_prev`, for the predictor.
        let mut back: Option<(f64, Vec<f64>)> = None;
        let mut t = 0.0;
        let mut dt = opts.dt_min;
        // Index of the first breakpoint not yet passed.
        let mut bp_idx = 0usize;

        while t < t_stop * (1.0 - 1e-12) {
            while bp_idx < st.breakpoints.len() && st.breakpoints[bp_idx] <= t + opts.dt_min * 1e-6
            {
                bp_idx += 1;
            }
            let mut dt_eff = dt.min(t_stop - t);
            let mut lands_on_bp = false;
            if let Some(&bp) = st.breakpoints.get(bp_idx) {
                if bp <= t_stop && t + dt_eff >= bp - opts.dt_min * 1e-6 {
                    dt_eff = bp - t;
                    lands_on_bp = true;
                }
            }
            let t_next = t + dt_eff;

            match self.newton_solve(&st, &mut lu, t_next, dt_eff, &v_prev, &iv_prev, &mut stats) {
                Ok((x_new, iv_new)) => {
                    // Local-truncation-error estimate: mismatch between
                    // the solution and a linear extrapolation of the two
                    // previous accepted points. O(dt²·v̈), the same order
                    // as the backward-Euler truncation error itself.
                    let err = match &back {
                        Some((t_back, v_back)) if t > *t_back => {
                            let scale = dt_eff / (t - t_back);
                            (1..=self.n_nodes)
                                .map(|k| {
                                    let pred = v_prev[k] + (v_prev[k] - v_back[k]) * scale;
                                    (x_new[k] - pred).abs()
                                })
                                .fold(0.0f64, f64::max)
                        }
                        _ => 0.0,
                    };
                    if err > opts.lte_tol && dt_eff > opts.dt_min * 1.000_001 {
                        stats.steps_rejected += 1;
                        dt = (dt_eff / 2.0).max(opts.dt_min);
                        continue;
                    }
                    back = Some((t, std::mem::replace(&mut v_prev, x_new)));
                    iv_prev = iv_new;
                    t = t_next;
                    times.push(t);
                    volts.push(v_prev.clone());
                    stats.steps_accepted += 1;
                    dt = if lands_on_bp {
                        // A waveform corner invalidates the predictor
                        // history; re-resolve from the floor.
                        back = None;
                        opts.dt_min
                    } else if err < opts.lte_tol / 4.0 {
                        (dt_eff * 2.0).min(opts.dt_max)
                    } else {
                        dt_eff
                    };
                }
                Err(SimError::NoConvergence { .. }) if dt_eff > opts.dt_min * 1.000_001 => {
                    // Newton divergence is handled like an LTE failure:
                    // halve and retry from the same accepted state.
                    stats.steps_rejected += 1;
                    dt = (dt_eff / 2.0).max(opts.dt_min);
                }
                Err(e) => return Err(e),
            }
        }
        Ok((TranResult { times, volts }, stats))
    }

    /// Pre-assembles the static stamps and index-resolved device lists.
    fn stamps(&self) -> Stamps<'a> {
        let n = self.n_nodes + self.n_vsrc;
        let idx = |node: NodeId| -> Option<usize> {
            if node == NodeId::GROUND {
                None
            } else {
                Some(node.index() - 1)
            }
        };
        let mut base = vec![0.0; n * n];
        for k in 0..self.n_nodes {
            base[k * n + k] += GMIN;
        }
        let mut caps = Vec::new();
        let mut mos = Vec::new();
        let mut isrcs = Vec::new();
        let mut vsrcs = Vec::new();
        let mut breakpoints: Vec<f64> = Vec::new();
        let mut vsrc_row = self.n_nodes;
        for devk in self.netlist.devices() {
            match devk {
                DeviceKind::Resistor { a: p, b: q, ohms } => {
                    let g = 1.0 / ohms;
                    stamp_flat(&mut base, n, idx(*p), idx(*q), g);
                }
                DeviceKind::Capacitor { a: p, b: q, farads } => {
                    caps.push(CapStamp {
                        pi: idx(*p),
                        qi: idx(*q),
                        p: p.index(),
                        q: q.index(),
                        farads: *farads,
                    });
                }
                DeviceKind::Isource { a: p, b: q, waveform } => {
                    breakpoints.extend(waveform.iter().map(|&(t, _)| t));
                    isrcs.push(SrcStamp {
                        pi: idx(*p),
                        qi: idx(*q),
                        waveform,
                    });
                }
                DeviceKind::Vsource { a: p, b: q, waveform } => {
                    breakpoints.extend(waveform.iter().map(|&(t, _)| t));
                    let row = vsrc_row;
                    vsrc_row += 1;
                    if let Some(i) = idx(*p) {
                        base[i * n + row] += 1.0;
                        base[row * n + i] += 1.0;
                    }
                    if let Some(j) = idx(*q) {
                        base[j * n + row] -= 1.0;
                        base[row * n + j] -= 1.0;
                    }
                    vsrcs.push(VsrcStamp { row, waveform });
                }
                DeviceKind::Mos {
                    mos_type,
                    d,
                    g,
                    s,
                    w,
                    l,
                    dvt,
                } => {
                    mos.push(MosStamp {
                        mos_type: *mos_type,
                        d: d.index(),
                        g: g.index(),
                        s: s.index(),
                        di: idx(*d),
                        gi: idx(*g),
                        si: idx(*s),
                        w: *w,
                        l: *l,
                        dvt: *dvt,
                    });
                }
            }
        }
        breakpoints.retain(|&t| t > 0.0);
        breakpoints.sort_by(|a, b| a.partial_cmp(b).expect("waveform times are finite"));
        breakpoints.dedup_by(|a, b| (*a - *b).abs() < f64::EPSILON * a.abs().max(1.0));
        Stamps {
            n,
            base,
            caps,
            mos,
            isrcs,
            vsrcs,
            breakpoints,
        }
    }

    /// Writes the linear MNA matrix at step size `dt` into `m`: static
    /// stamps plus the backward-Euler companion conductances `C/dt`.
    fn fill_linear_matrix(&self, st: &Stamps<'_>, dt: f64, m: &mut [f64]) {
        let n = st.n;
        m.copy_from_slice(&st.base);
        for c in &st.caps {
            stamp_flat(m, n, c.pi, c.qi, c.farads / dt);
        }
    }

    /// Writes the source vector `b(t, dt, v_prev)` of the linear system
    /// into `b`: waveform values plus the companion history currents.
    fn fill_source_vector(&self, st: &Stamps<'_>, t: f64, dt: f64, v_prev: &[f64], b: &mut [f64]) {
        b.fill(0.0);
        for c in &st.caps {
            let g = c.farads / dt;
            let vprev = v_prev[c.p] - v_prev[c.q];
            if let Some(i) = c.pi {
                b[i] += g * vprev;
            }
            if let Some(j) = c.qi {
                b[j] -= g * vprev;
            }
        }
        for s in &st.isrcs {
            let i = Netlist::pwl_at(s.waveform, t);
            if let Some(ip) = s.pi {
                b[ip] -= i;
            }
            if let Some(iq) = s.qi {
                b[iq] += i;
            }
        }
        for v in &st.vsrcs {
            b[v.row] = Netlist::pwl_at(v.waveform, t);
        }
    }

    /// Writes the KCL residual `F(z) = M·z + i_mos(z) − b` of the
    /// discretized system at iterate (`x` node voltages incl. ground,
    /// `iv` branch currents) into `f`. The converged root of `F` is
    /// exactly the solution the fixed-step driver's full-Newton
    /// iteration converges to.
    fn fill_residual(
        &self,
        st: &Stamps<'_>,
        m: &[f64],
        x: &[f64],
        iv: &[f64],
        b: &[f64],
        f: &mut [f64],
    ) {
        let n = st.n;
        let nn = self.n_nodes;
        for (i, fi) in f.iter_mut().enumerate() {
            let row = &m[i * n..(i + 1) * n];
            let mut acc = -b[i];
            for (a, v) in row[..nn].iter().zip(&x[1..]) {
                acc += a * v;
            }
            for (a, v) in row[nn..].iter().zip(iv) {
                acc += a * v;
            }
            *fi = acc;
        }
        for ms in &st.mos {
            let i0 = device::mos_id_dvt(
                self.dev, ms.mos_type, x[ms.d], x[ms.g], x[ms.s], ms.w, ms.l, ms.dvt,
            );
            if let Some(di) = ms.di {
                f[di] += i0;
            }
            if let Some(si) = ms.si {
                f[si] -= i0;
            }
        }
    }

    /// Writes the Jacobian at the iterate into `j`: the linear matrix
    /// plus the linearized MOS conductances — the only stamps that
    /// change within a step.
    fn fill_jacobian(&self, st: &Stamps<'_>, m: &[f64], x: &[f64], j: &mut [f64]) {
        let n = st.n;
        j.copy_from_slice(m);
        for ms in &st.mos {
            let (_, gd, gg, gs) = device::mos_linearized_dvt(
                self.dev, ms.mos_type, x[ms.d], x[ms.g], x[ms.s], ms.w, ms.l, ms.dvt,
            );
            if let Some(di) = ms.di {
                j[di * n + di] += gd;
                if let Some(gi) = ms.gi {
                    j[di * n + gi] += gg;
                }
                if let Some(si) = ms.si {
                    j[di * n + si] += gs;
                }
            }
            if let Some(si) = ms.si {
                j[si * n + si] -= gs;
                if let Some(di) = ms.di {
                    j[si * n + di] -= gd;
                }
                if let Some(gi) = ms.gi {
                    j[si * n + gi] -= gg;
                }
            }
        }
    }

    /// Solves one timepoint at `t` with companion step `dt` by
    /// modified-Newton iteration: the LU factorization in `lu` is reused
    /// across iterations (and across timepoints at the same `dt`) and
    /// only refreshed when the iteration stalls or `dt` changed. All
    /// intermediate vectors live in `lu`'s scratch buffers — the hot
    /// loop performs no heap allocation, which dominates the cost on
    /// the small (≲10-node) systems this tool simulates.
    #[allow(clippy::too_many_arguments)]
    fn newton_solve(
        &self,
        st: &Stamps<'_>,
        lu: &mut LuState,
        t: f64,
        dt: f64,
        v_prev: &[f64],
        iv_prev: &[f64],
        stats: &mut SolverStats,
    ) -> Result<(Vec<f64>, Vec<f64>), SimError> {
        if lu.dt != dt {
            self.fill_linear_matrix(st, dt, &mut lu.m_dt);
            lu.dt = dt;
            // The companion conductances moved: the old factorization no
            // longer matches the system.
            lu.lu_valid = false;
        }
        self.fill_source_vector(st, t, dt, v_prev, &mut lu.b);
        let mut x = v_prev.to_vec();
        let mut iv = iv_prev.to_vec();
        let mut prev_max_dv = f64::INFINITY;
        let mut refactor_next = false;
        let mut err = SimError::NoConvergence { time: t };
        for _ in 0..MAX_NEWTON {
            if !lu.lu_valid || refactor_next {
                self.fill_jacobian(st, &lu.m_dt, &x, &mut lu.jbuf);
                if !lu.factors.refactor(&lu.jbuf) {
                    err = SimError::SingularMatrix { time: t };
                    break;
                }
                lu.lu_valid = true;
                stats.lu_factorizations += 1;
                refactor_next = false;
                prev_max_dv = f64::INFINITY;
            } else {
                stats.lu_reuses += 1;
            }
            stats.newton_iterations += 1;
            self.fill_residual(st, &lu.m_dt, &x, &iv, &lu.b, &mut lu.delta);
            for d in lu.delta.iter_mut() {
                *d = -*d;
            }
            lu.factors.solve(&mut lu.delta);
            let mut max_dv: f64 = 0.0;
            for k in 0..self.n_nodes {
                let dv = lu.delta[k];
                max_dv = max_dv.max(dv.abs());
                x[k + 1] += dv.clamp(-VSTEP_LIMIT, VSTEP_LIMIT);
            }
            for (r, div) in iv.iter_mut().zip(&lu.delta[self.n_nodes..]) {
                *r += div;
            }
            if max_dv < VNTOL {
                return Ok((x, iv));
            }
            // Stale-Jacobian stall: the error stopped contracting fast
            // enough — pay for a fresh factorization next iteration.
            if max_dv > prev_max_dv * STALL_CONTRACTION {
                refactor_next = true;
            }
            prev_max_dv = max_dv;
        }
        // A failed attempt leaves a Jacobian from a wild iterate behind;
        // drop it so the retry starts fresh.
        lu.lu_valid = false;
        Err(err)
    }

    /// Assembles the linearized MNA system `A·x = rhs` around the current
    /// Newton iterate `x` (node voltages, ground included at index 0)
    /// with backward-Euler companions from `v_prev`. Reference-path only.
    fn assemble(
        &self,
        t: f64,
        dt: f64,
        x: &[f64],
        v_prev: &[f64],
    ) -> (Vec<Vec<f64>>, Vec<f64>) {
        let n = self.n_nodes + self.n_vsrc;
        let mut a = vec![vec![0.0; n]; n];
        let mut rhs = vec![0.0; n];
        // Row/col index of a node in the reduced system (ground → None).
        let idx = |node: NodeId| -> Option<usize> {
            if node == NodeId::GROUND {
                None
            } else {
                Some(node.index() - 1)
            }
        };
        let stamp_g = |a: &mut Vec<Vec<f64>>, p: Option<usize>, q: Option<usize>, g: f64| {
            if let Some(i) = p {
                a[i][i] += g;
                if let Some(j) = q {
                    a[i][j] -= g;
                }
            }
            if let Some(j) = q {
                a[j][j] += g;
                if let Some(i) = p {
                    a[j][i] -= g;
                }
            }
        };

        // GMIN from every node to ground.
        for (k, row) in a.iter_mut().enumerate().take(self.n_nodes) {
            row[k] += GMIN;
        }

        let mut vsrc_row = self.n_nodes;
        for dev in self.netlist.devices() {
            match dev {
                DeviceKind::Resistor { a: p, b: q, ohms } => {
                    stamp_g(&mut a, idx(*p), idx(*q), 1.0 / ohms);
                }
                DeviceKind::Capacitor { a: p, b: q, farads } => {
                    // Backward Euler companion: g = C/dt, I_eq = g·v_prev.
                    let g = farads / dt;
                    stamp_g(&mut a, idx(*p), idx(*q), g);
                    let vprev = v_prev[p.index()] - v_prev[q.index()];
                    if let Some(i) = idx(*p) {
                        rhs[i] += g * vprev;
                    }
                    if let Some(j) = idx(*q) {
                        rhs[j] -= g * vprev;
                    }
                }
                DeviceKind::Isource { a: p, b: q, waveform } => {
                    let i = Netlist::pwl_at(waveform, t);
                    if let Some(ip) = idx(*p) {
                        rhs[ip] -= i;
                    }
                    if let Some(iq) = idx(*q) {
                        rhs[iq] += i;
                    }
                }
                DeviceKind::Vsource { a: p, b: q, waveform } => {
                    let v = Netlist::pwl_at(waveform, t);
                    let row = vsrc_row;
                    vsrc_row += 1;
                    if let Some(i) = idx(*p) {
                        a[i][row] += 1.0;
                        a[row][i] += 1.0;
                    }
                    if let Some(j) = idx(*q) {
                        a[j][row] -= 1.0;
                        a[row][j] -= 1.0;
                    }
                    rhs[row] = v;
                }
                DeviceKind::Mos {
                    mos_type,
                    d,
                    g,
                    s,
                    w,
                    l,
                    dvt,
                } => {
                    let vd = x[d.index()];
                    let vg = x[g.index()];
                    let vs = x[s.index()];
                    let (i0, gd, gg, gs) =
                        device::mos_linearized_dvt(self.dev, *mos_type, vd, vg, vs, *w, *l, *dvt);
                    // i flows from drain node into source node:
                    // i ≈ i0 + gd·Δvd + gg·Δvg + gs·Δvs, already expanded
                    // around the iterate, so the rhs carries the residue.
                    let res = i0 - gd * vd - gg * vg - gs * vs;
                    if let Some(di) = idx(*d) {
                        a[di][di] += gd;
                        if let Some(gi) = idx(*g) {
                            a[di][gi] += gg;
                        }
                        if let Some(si) = idx(*s) {
                            a[di][si] += gs;
                        }
                        rhs[di] -= res;
                    }
                    if let Some(si) = idx(*s) {
                        a[si][si] -= gs;
                        if let Some(di) = idx(*d) {
                            a[si][di] -= gd;
                        }
                        if let Some(gi) = idx(*g) {
                            a[si][gi] -= gg;
                        }
                        rhs[si] += res;
                    }
                }
            }
        }
        (a, rhs)
    }
}

/// Stamps a two-terminal conductance into a flat row-major matrix.
fn stamp_flat(m: &mut [f64], n: usize, p: Option<usize>, q: Option<usize>, g: f64) {
    if let Some(i) = p {
        m[i * n + i] += g;
        if let Some(j) = q {
            m[i * n + j] -= g;
        }
    }
    if let Some(j) = q {
        m[j * n + j] += g;
        if let Some(i) = p {
            m[j * n + i] -= g;
        }
    }
}

/// The adaptive driver's reusable linear-algebra state: the linear
/// matrix for the current `dt`, the latest LU factorization, and the
/// scratch buffers the Newton loop works in. Everything is allocated
/// once per `run_adaptive` call and reused for every timepoint.
#[derive(Debug)]
struct LuState {
    dt: f64,
    /// Linear matrix (static stamps + `C/dt` companions), valid for `dt`.
    m_dt: Vec<f64>,
    /// Latest factorization of the Jacobian; stale unless `lu_valid`.
    factors: Lu,
    lu_valid: bool,
    /// Source vector for the current timepoint.
    b: Vec<f64>,
    /// Residual, negated and solved in place into the Newton update.
    delta: Vec<f64>,
    /// Jacobian assembly scratch, copied into `factors` on refactor.
    jbuf: Vec<f64>,
}

impl LuState {
    fn new(n: usize) -> Self {
        LuState {
            dt: f64::NAN,
            m_dt: vec![0.0; n * n],
            factors: Lu::new(n),
            lu_valid: false,
            b: vec![0.0; n],
            delta: vec![0.0; n],
            jbuf: vec![0.0; n * n],
        }
    }
}

/// Dense LU factorization with partial pivoting over a flat row-major
/// matrix, reusable across many right-hand sides — the piece that turns
/// modified Newton into an O(n²)-per-iteration method.
#[derive(Debug, Clone)]
struct Lu {
    n: usize,
    /// Combined L (unit diagonal, below) and U (on/above diagonal).
    a: Vec<f64>,
    /// Row permutation: step `k` swapped rows `k` and `piv[k]`.
    piv: Vec<usize>,
}

impl Lu {
    /// An unfactored placeholder with buffers sized for `n × n` systems.
    fn new(n: usize) -> Lu {
        Lu {
            n,
            a: vec![0.0; n * n],
            piv: vec![0usize; n],
        }
    }

    /// Factors `a` (flat `n × n`). Returns `None` on a numerically
    /// singular matrix.
    #[cfg(test)]
    fn factor(a: Vec<f64>, n: usize) -> Option<Lu> {
        let mut lu = Lu {
            n,
            a,
            piv: vec![0usize; n],
        };
        lu.factor_in_place().then_some(lu)
    }

    /// Copies `src` over the stored matrix and refactors in place,
    /// reusing both buffers. Returns `false` (leaving the factors
    /// unusable) on a numerically singular matrix.
    fn refactor(&mut self, src: &[f64]) -> bool {
        self.a.copy_from_slice(src);
        self.factor_in_place()
    }

    /// Factors the stored matrix in place with partial pivoting.
    fn factor_in_place(&mut self) -> bool {
        let n = self.n;
        let a = &mut self.a;
        for col in 0..n {
            let mut p = col;
            for row in (col + 1)..n {
                if a[row * n + col].abs() > a[p * n + col].abs() {
                    p = row;
                }
            }
            if a[p * n + col].abs() < 1e-20 {
                return false;
            }
            self.piv[col] = p;
            if p != col {
                for k in 0..n {
                    a.swap(col * n + k, p * n + k);
                }
            }
            let diag = a[col * n + col];
            for row in (col + 1)..n {
                let factor = a[row * n + col] / diag;
                a[row * n + col] = factor;
                if factor == 0.0 {
                    continue;
                }
                for k in (col + 1)..n {
                    a[row * n + k] -= factor * a[col * n + k];
                }
            }
        }
        true
    }

    /// Solves `A·x = b` in place using the stored factors.
    // Index loops mirror the textbook forward/back-substitution; the
    // iterator forms clippy suggests hide the triangular structure.
    #[allow(clippy::needless_range_loop)]
    fn solve(&self, b: &mut [f64]) {
        let n = self.n;
        for col in 0..n {
            b.swap(col, self.piv[col]);
            let bc = b[col];
            if bc != 0.0 {
                for row in (col + 1)..n {
                    b[row] -= self.a[row * n + col] * bc;
                }
            }
        }
        for row in (0..n).rev() {
            let mut acc = b[row];
            for k in (row + 1)..n {
                acc -= self.a[row * n + k] * b[k];
            }
            b[row] = acc / self.a[row * n + row];
        }
    }
}

/// Dense Gaussian elimination with partial pivoting. Returns `None` on a
/// (numerically) singular matrix. Reference-path solver.
fn solve_dense(mut a: Vec<Vec<f64>>, rhs: &mut [f64]) -> Option<Vec<f64>> {
    let n = rhs.len();
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        for row in (col + 1)..n {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-20 {
            return None;
        }
        if pivot != col {
            a.swap(pivot, col);
            rhs.swap(pivot, col);
        }
        let (head, tail) = a.split_at_mut(col + 1);
        let pivot_row = &head[col];
        let diag = pivot_row[col];
        let rhs_col = rhs[col];
        for (off, row_vec) in tail.iter_mut().enumerate() {
            let factor = row_vec[col] / diag;
            if factor == 0.0 {
                continue;
            }
            for (rv, pv) in row_vec[col..n].iter_mut().zip(&pivot_row[col..n]) {
                *rv -= factor * *pv;
            }
            rhs[col + 1 + off] -= factor * rhs_col;
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisram_tech::Process;

    fn dev() -> DeviceParams {
        Process::cda07().devices().clone()
    }

    #[test]
    fn rc_charging_matches_analytic() {
        // 1kΩ from a 1V source into 1nF: v(t) = 1 - e^{-t/RC}, RC = 1 µs.
        let mut nl = Netlist::new("rc");
        let src = nl.node("src");
        let out = nl.node("out");
        nl.vdc(src, Netlist::ground(), 1.0);
        nl.resistor(src, out, 1000.0);
        nl.capacitor(out, Netlist::ground(), 1e-9);
        let d = dev();
        let sim = TransientSim::new(&nl, &d).unwrap();
        let r = sim.run(10e-6, 1e-8).unwrap();
        let v_tau = r.voltage_at(out, 1e-6);
        let expect = 1.0 - (-1.0f64).exp();
        assert!((v_tau - expect).abs() < 0.02, "v(tau) = {v_tau}, expect {expect}");
        // After 10 time constants the capacitor is within 1e-4 of the rail.
        assert!((r.final_voltage(out) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn adaptive_rc_charging_matches_analytic_with_fewer_steps() {
        let mut nl = Netlist::new("rc");
        let src = nl.node("src");
        let out = nl.node("out");
        nl.vdc(src, Netlist::ground(), 1.0);
        nl.resistor(src, out, 1000.0);
        nl.capacitor(out, Netlist::ground(), 1e-9);
        let d = dev();
        let sim = TransientSim::new(&nl, &d).unwrap();
        let opts = AdaptiveOptions::for_span(10e-6);
        let (r, stats) = sim.run_adaptive_with_stats(10e-6, &opts).unwrap();
        let v_tau = r.voltage_at(out, 1e-6);
        let expect = 1.0 - (-1.0f64).exp();
        assert!((v_tau - expect).abs() < 0.02, "v(tau) = {v_tau}, expect {expect}");
        assert!((r.final_voltage(out) - 1.0).abs() < 1e-3);
        // The fixed-step run above takes 1000 steps; adaptive needs far
        // fewer and reuses its factorization heavily.
        assert!(
            stats.steps_accepted < 500,
            "expected coarse stepping, got {stats:?}"
        );
        assert!(stats.lu_reuses > stats.lu_factorizations, "{stats:?}");
    }

    #[test]
    fn adaptive_is_deterministic() {
        let d = dev();
        let mut nl = Netlist::new("inv");
        let vdd = nl.node("vdd");
        let a = nl.node("a");
        let y = nl.node("y");
        nl.vdc(vdd, Netlist::ground(), d.vdd);
        nl.vpwl(
            a,
            Netlist::ground(),
            vec![(0.0, 0.0), (2e-9, 0.0), (2.1e-9, d.vdd)],
        );
        nl.mos(MosType::Pmos, y, a, vdd, 3e-6, 0.7e-6);
        nl.mos(MosType::Nmos, y, a, Netlist::ground(), 1e-6, 0.7e-6);
        nl.capacitor(y, Netlist::ground(), 20e-15);
        let sim = TransientSim::new(&nl, &d).unwrap();
        let opts = AdaptiveOptions::for_span(5e-9);
        let r1 = sim.run_adaptive(5e-9, &opts).unwrap();
        let r2 = sim.run_adaptive(5e-9, &opts).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn adaptive_inverter_matches_fixed_step_reference() {
        let d = dev();
        let mut nl = Netlist::new("inv");
        let vdd = nl.node("vdd");
        let a = nl.node("a");
        let y = nl.node("y");
        nl.vdc(vdd, Netlist::ground(), d.vdd);
        nl.vpwl(
            a,
            Netlist::ground(),
            vec![(0.0, 0.0), (2e-9, 0.0), (2.1e-9, d.vdd)],
        );
        nl.mos(MosType::Pmos, y, a, vdd, 3e-6, 0.7e-6);
        nl.mos(MosType::Nmos, y, a, Netlist::ground(), 1e-6, 0.7e-6);
        nl.capacitor(y, Netlist::ground(), 20e-15);
        let sim = TransientSim::new(&nl, &d).unwrap();
        let fixed = sim.run(5e-9, 5e-12).unwrap();
        let (adaptive, stats) = sim
            .run_adaptive_with_stats(5e-9, &AdaptiveOptions::for_span(5e-9))
            .unwrap();
        let tf = fixed.crossing_time(y, d.vdd / 2.0, false, 2e-9).unwrap();
        let ta = adaptive.crossing_time(y, d.vdd / 2.0, false, 2e-9).unwrap();
        assert!(
            (ta - tf).abs() / tf < 0.01,
            "crossing drifted: fixed {tf:e}, adaptive {ta:e}"
        );
        assert!(
            (adaptive.final_voltage(y) - fixed.final_voltage(y)).abs() < 1e-3,
            "final voltages drifted"
        );
        assert!(
            stats.steps_accepted + stats.steps_rejected < 1001,
            "adaptive used {} attempts vs 1001 fixed steps",
            stats.steps_accepted + stats.steps_rejected
        );
    }

    #[test]
    fn divider_settles_to_half() {
        let mut nl = Netlist::new("div");
        let a = nl.node("a");
        let m = nl.node("m");
        nl.vdc(a, Netlist::ground(), 2.0);
        nl.resistor(a, m, 1000.0);
        nl.resistor(m, Netlist::ground(), 1000.0);
        let d = dev();
        let r = TransientSim::new(&nl, &d).unwrap().run(1e-9, 1e-10).unwrap();
        assert!((r.final_voltage(m) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn inverter_switches_rail_to_rail() {
        let d = dev();
        let mut nl = Netlist::new("inv");
        let vdd = nl.node("vdd");
        let a = nl.node("a");
        let y = nl.node("y");
        nl.vdc(vdd, Netlist::ground(), d.vdd);
        nl.vpwl(
            a,
            Netlist::ground(),
            vec![(0.0, 0.0), (2e-9, 0.0), (2.1e-9, d.vdd)],
        );
        nl.mos(MosType::Pmos, y, a, vdd, 3e-6, 0.7e-6);
        nl.mos(MosType::Nmos, y, a, Netlist::ground(), 1e-6, 0.7e-6);
        nl.capacitor(y, Netlist::ground(), 20e-15);
        let r = TransientSim::new(&nl, &d).unwrap().run(5e-9, 5e-12).unwrap();
        // Before the edge the output is high; after, low.
        assert!(r.voltage_at(y, 1.9e-9) > 0.95 * d.vdd);
        assert!(r.final_voltage(y) < 0.05 * d.vdd);
        // There is a falling crossing after the input edge.
        let t = r.crossing_time(y, d.vdd / 2.0, false, 2e-9);
        assert!(t.is_some());
    }

    #[test]
    fn current_source_integrates_on_capacitor() {
        // 1 mA into 1 pF for 1 ns → 1 V ramp.
        let mut nl = Netlist::new("ramp");
        let out = nl.node("out");
        nl.ipwl(Netlist::ground(), out, vec![(0.0, 1e-3)]);
        nl.capacitor(out, Netlist::ground(), 1e-12);
        let d = dev();
        let r = TransientSim::new(&nl, &d).unwrap().run(1e-9, 1e-12).unwrap();
        assert!((r.final_voltage(out) - 1.0).abs() < 0.01);
    }

    #[test]
    fn adaptive_ramp_tracks_the_integral() {
        let mut nl = Netlist::new("ramp");
        let out = nl.node("out");
        nl.ipwl(Netlist::ground(), out, vec![(0.0, 1e-3)]);
        nl.capacitor(out, Netlist::ground(), 1e-12);
        let d = dev();
        let sim = TransientSim::new(&nl, &d).unwrap();
        let r = sim
            .run_adaptive(1e-9, &AdaptiveOptions::for_span(1e-9))
            .unwrap();
        assert!((r.final_voltage(out) - 1.0).abs() < 0.01);
    }

    #[test]
    fn crossing_detection_and_interpolation() {
        let res = TranResult {
            times: vec![0.0, 1.0, 2.0, 3.0],
            volts: vec![
                vec![0.0, 0.0],
                vec![0.0, 1.0],
                vec![0.0, 2.0],
                vec![0.0, 0.0],
            ],
        };
        let n = NodeId(1);
        assert_eq!(res.crossing_time(n, 0.5, true, 0.0), Some(0.5));
        assert_eq!(res.crossing_time(n, 1.5, true, 0.0), Some(1.5));
        assert_eq!(res.crossing_time(n, 1.0, false, 2.0), Some(2.5));
        assert_eq!(res.crossing_time(n, 5.0, true, 0.0), None);
        assert_eq!(res.voltage_at(n, 0.25), 0.25);
        assert_eq!(res.voltage_at(n, 99.0), 0.0);
    }

    #[test]
    fn floating_node_reports_singular_or_settles_via_gmin() {
        // A node connected only through a capacitor is handled by GMIN —
        // must not error out.
        let mut nl = Netlist::new("float");
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vdc(a, Netlist::ground(), 1.0);
        nl.capacitor(a, b, 1e-12);
        let d = dev();
        let sim = TransientSim::new(&nl, &d).unwrap();
        assert!(sim.run(1e-9, 1e-11).is_ok());
        assert!(sim
            .run_adaptive(1e-9, &AdaptiveOptions::for_span(1e-9))
            .is_ok());
    }

    #[test]
    fn solver_handles_permuted_systems() {
        // x + 2y = 5; 3x + 4y = 11 → x = 1, y = 2 — but with a zero
        // leading pivot to force the row swap.
        let a = vec![vec![0.0, 2.0], vec![3.0, 4.0]];
        let mut rhs = vec![4.0, 11.0];
        let x = solve_dense(a, &mut rhs).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        // Singular matrix returns None.
        let a = vec![vec![1.0, 1.0], vec![2.0, 2.0]];
        let mut rhs = vec![1.0, 2.0];
        assert!(solve_dense(a, &mut rhs).is_none());
    }

    #[test]
    fn lu_matches_reference_solver_and_rejects_singular() {
        let flat = vec![0.0, 2.0, 3.0, 4.0];
        let lu = Lu::factor(flat, 2).unwrap();
        let mut b = vec![4.0, 11.0];
        lu.solve(&mut b);
        assert!((b[0] - 1.0).abs() < 1e-12);
        assert!((b[1] - 2.0).abs() < 1e-12);
        // A second right-hand side reuses the same factors.
        let mut b2 = vec![2.0, 3.0];
        lu.solve(&mut b2);
        let a = [[0.0, 2.0], [3.0, 4.0]];
        for (i, row) in a.iter().enumerate() {
            let acc: f64 = row.iter().zip(&b2).map(|(x, y)| x * y).sum();
            assert!((acc - [2.0, 3.0][i]).abs() < 1e-12);
        }
        assert!(Lu::factor(vec![1.0, 1.0, 2.0, 2.0], 2).is_none());
    }

    #[test]
    fn adaptive_options_for_span_are_ordered() {
        let o = AdaptiveOptions::for_span(1e-8);
        assert!(o.dt_min > 0.0 && o.dt_min < o.dt_max);
        assert!(o.lte_tol > 0.0);
    }

    #[test]
    #[should_panic(expected = "dt_min <= dt_max")]
    fn adaptive_rejects_inverted_bounds() {
        let mut nl = Netlist::new("r");
        let a = nl.node("a");
        nl.resistor(a, Netlist::ground(), 1.0);
        let d = dev();
        let sim = TransientSim::new(&nl, &d).unwrap();
        let _ = sim.run_adaptive(
            1e-9,
            &AdaptiveOptions {
                dt_min: 1e-9,
                dt_max: 1e-12,
                lte_tol: 1e-3,
            },
        );
    }

    #[test]
    fn sim_error_display() {
        let e = SimError::NoConvergence { time: 1e-9 };
        assert!(e.to_string().contains("1.000e-9"));
        let e = SimError::SingularMatrix { time: 0.0 };
        assert!(e.to_string().contains("singular"));
    }
}
