//! Adaptive-vs-fixed-step equivalence suite.
//!
//! The adaptive driver ([`TransientSim::run_adaptive`]) must reproduce
//! the golden fixed-step reference ([`TransientSim::run`]) on the two
//! circuits the paper's experiments lean on — the Fig. 3 current-mode
//! sense amplifier and the §II sizing inverter — across all three
//! built-in processes: interpolated crossing times within 1%, final
//! node voltages within 1 mV.
//!
//! The sense-amp netlist is a local replica of the one in
//! `bisram-bench` (this crate cannot depend on the bench crate).

use bisram_circuit::{AdaptiveOptions, MosType, Netlist, NodeId, TransientSim};
use bisram_tech::Process;

/// The Fig. 3 cross-coupled latch over the sense nodes, with the cell's
/// differential current steered off BL from 1 ns.
fn senseamp_netlist(process: &Process, delta_ua: f64) -> (Netlist, NodeId, NodeId) {
    let dev = process.devices();
    let l = process.gate_length_m();
    let lambda_m = process.rules().lambda() as f64 * 1e-9;

    let mut nl = Netlist::new("fig3_senseamp");
    let vdd = nl.node("vdd!");
    let gnd = Netlist::ground();
    nl.vdc(vdd, gnd, dev.vdd);
    let bl = nl.node("bl");
    let blb = nl.node("blb");
    nl.mos(MosType::Pmos, bl, blb, vdd, 8.0 * lambda_m, l);
    nl.mos(MosType::Pmos, blb, bl, vdd, 8.0 * lambda_m, l);
    nl.mos(MosType::Nmos, bl, blb, gnd, 4.0 * lambda_m, l);
    nl.mos(MosType::Nmos, blb, bl, gnd, 4.0 * lambda_m, l);
    let c_sense = 50e-15;
    nl.capacitor(bl, gnd, c_sense);
    nl.capacitor(blb, gnd, c_sense);
    let i_cm = 60e-6;
    nl.ipwl(bl, gnd, vec![(0.0, i_cm)]);
    nl.ipwl(blb, gnd, vec![(0.0, i_cm)]);
    nl.ipwl(
        blb,
        bl,
        vec![(0.0, 0.0), (1.0e-9, 0.0), (1.05e-9, delta_ua * 1e-6)],
    );
    (nl, bl, blb)
}

/// The §II sizing inverter testbench: rising input at 1 ns, falling at
/// 6 ns, 50 ps edges, driving a 40 fF load.
fn inverter_netlist(process: &Process) -> (Netlist, NodeId) {
    let dev = process.devices();
    let l = process.gate_length_m();
    let mut nl = Netlist::new("sizing_inv");
    let vdd = nl.node("vdd");
    let a = nl.node("a");
    let y = nl.node("y");
    let gnd = Netlist::ground();
    nl.vdc(vdd, gnd, dev.vdd);
    nl.vpwl(
        a,
        gnd,
        vec![
            (0.0, 0.0),
            (1.0e-9, 0.0),
            (1.05e-9, dev.vdd),
            (6.0e-9, dev.vdd),
            (6.05e-9, 0.0),
        ],
    );
    nl.mos(MosType::Pmos, y, a, vdd, 2.8e-6, l);
    nl.mos(MosType::Nmos, y, a, gnd, 1e-6, l);
    nl.capacitor(y, gnd, 40e-15);
    (nl, y)
}

fn assert_crossing_close(name: &str, fixed: Option<f64>, adaptive: Option<f64>) {
    let tf = fixed.unwrap_or_else(|| panic!("{name}: fixed run lost the crossing"));
    let ta = adaptive.unwrap_or_else(|| panic!("{name}: adaptive run lost the crossing"));
    assert!(
        (ta - tf).abs() / tf < 0.01,
        "{name}: crossing drifted over 1%: fixed {tf:e}, adaptive {ta:e}"
    );
}

#[test]
fn senseamp_crossings_and_finals_agree_on_every_process() {
    for process in Process::builtin() {
        let dev = process.devices();
        let (nl, bl, blb) = senseamp_netlist(&process, 20.0);
        let sim = TransientSim::new(&nl, dev).expect("valid topology");
        let fixed = sim.run(8e-9, 10e-12).expect("fixed-step converges");
        let adaptive = sim
            .run_adaptive(8e-9, &AdaptiveOptions::for_span(8e-9))
            .expect("adaptive converges");

        // The latch regenerates from its metastable point after the
        // 1 ns differential: one node rails high, the other low. Which
        // node crosses half-rail in which direction depends on where
        // the process puts the metastable point, so compare every
        // half-rail crossing the reference run actually exhibits.
        let half = dev.vdd / 2.0;
        let mut crossings_checked = 0;
        for (node, label) in [(bl, "bl"), (blb, "blb")] {
            for rising in [true, false] {
                if let Some(tf) = fixed.crossing_time(node, half, rising, 1e-9) {
                    crossings_checked += 1;
                    assert_crossing_close(
                        &format!("{} {label} rising={rising}", process.name()),
                        Some(tf),
                        adaptive.crossing_time(node, half, rising, 1e-9),
                    );
                }
            }
        }
        assert!(
            crossings_checked > 0,
            "{}: the latch never crossed half-rail — dead testbench",
            process.name()
        );
        for node in [bl, blb] {
            let vf = fixed.final_voltage(node);
            let va = adaptive.final_voltage(node);
            assert!(
                (vf - va).abs() < 1e-3,
                "{}: final voltage drifted over 1 mV: fixed {vf}, adaptive {va}",
                process.name()
            );
        }
    }
}

#[test]
fn sizing_inverter_crossings_and_finals_agree_on_every_process() {
    for process in Process::builtin() {
        let dev = process.devices();
        let (nl, y) = inverter_netlist(&process);
        let sim = TransientSim::new(&nl, dev).expect("valid topology");
        let fixed = sim.run(12e-9, 5e-12).expect("fixed-step converges");
        let adaptive = sim
            .run_adaptive(12e-9, &AdaptiveOptions::for_span(12e-9))
            .expect("adaptive converges");

        let half = dev.vdd / 2.0;
        assert_crossing_close(
            &format!("{} output fall", process.name()),
            fixed.crossing_time(y, half, false, 1e-9),
            adaptive.crossing_time(y, half, false, 1e-9),
        );
        assert_crossing_close(
            &format!("{} output rise", process.name()),
            fixed.crossing_time(y, half, true, 6e-9),
            adaptive.crossing_time(y, half, true, 6e-9),
        );
        let vf = fixed.final_voltage(y);
        let va = adaptive.final_voltage(y);
        assert!(
            (vf - va).abs() < 1e-3,
            "{}: final voltage drifted over 1 mV: fixed {vf}, adaptive {va}",
            process.name()
        );
    }
}

#[test]
fn adaptive_runs_are_reproducible() {
    let process = Process::cda05();
    let (nl, _, _) = senseamp_netlist(&process, 20.0);
    let sim = TransientSim::new(&nl, process.devices()).expect("valid topology");
    let opts = AdaptiveOptions::for_span(8e-9);
    let a = sim.run_adaptive(8e-9, &opts).expect("converges");
    let b = sim.run_adaptive(8e-9, &opts).expect("converges");
    assert_eq!(a, b);
}
