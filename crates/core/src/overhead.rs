//! The Table I overhead report.
//!
//! "BISRAMGEN produces low-area overhead BIST/BISR circuitry. Table I
//! gives some examples of the area overhead including redundancies, BIST
//! and BISR ... the parameters used are: W (the number of words), bpc,
//! bpw, and spares, the geometries being specified as W × bpw."

use crate::compiler::compile;
use crate::params::{ParamError, RamParams};
use bisram_tech::Process;

/// One row of the Table I reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadRow {
    /// Number of words.
    pub words: usize,
    /// Bits per word.
    pub bpw: usize,
    /// Bits per column.
    pub bpc: usize,
    /// Spare rows.
    pub spares: usize,
    /// Capacity in kilobits.
    pub kbits: usize,
    /// Module area in mm².
    pub area_mm2: f64,
    /// BIST+BISR overhead (spare rows not counted), fraction.
    pub overhead: f64,
    /// Overhead with spare rows counted too, fraction.
    pub overhead_with_spares: f64,
}

impl std::fmt::Display for OverheadRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:>7} x {:<3} (bpc {:>2}, {} spares) {:>6} Kb  {:>8.3} mm2  {:>5.2}% ({:>5.2}% w/ spares)",
            self.words,
            self.bpw,
            self.bpc,
            self.spares,
            self.kbits,
            self.area_mm2,
            self.overhead * 100.0,
            self.overhead_with_spares * 100.0
        )
    }
}

/// Computes one Table I row on the given process (the paper uses
/// `CDA0.7u3m1p` with four spare rows).
///
/// # Errors
///
/// Propagates parameter validation errors.
pub fn overhead_row(
    process: &Process,
    words: usize,
    bpw: usize,
    bpc: usize,
    spares: usize,
) -> Result<OverheadRow, ParamError> {
    let params = RamParams::builder()
        .words(words)
        .bits_per_word(bpw)
        .bits_per_column(bpc)
        .spare_rows(spares)
        .process(process.clone())
        .build()?;
    let ram = compile(&params).expect("compile is infallible for valid params");
    Ok(OverheadRow {
        words,
        bpw,
        bpc,
        spares,
        kbits: words * bpw / 1024,
        area_mm2: ram.area_mm2(),
        overhead: ram.areas().overhead_fraction(),
        overhead_with_spares: ram.areas().overhead_fraction_with_spares(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_satisfy_the_seven_percent_bound() {
        let p = Process::cda07();
        // Geometries spanning the paper's "realistic" 64 Kb – 4 Mb band.
        for (words, bpw, bpc) in [
            (2048, 32, 4),   // 64 Kb
            (4096, 32, 8),   // 128 Kb
            (8192, 64, 8),   // 512 Kb
            (16384, 64, 8),  // 1 Mb
            (32768, 128, 8), // 4 Mb
        ] {
            let row = overhead_row(&p, words, bpw, bpc, 4).unwrap();
            assert!(
                row.overhead < 0.07,
                "{row}: overhead exceeds the paper's bound"
            );
            assert!(row.overhead > 0.0);
            assert!(row.area_mm2 > 0.0);
        }
    }

    #[test]
    fn spare_contribution_is_under_one_percent_for_large_arrays() {
        // Paper §IX: 4 redundant rows against 512/1024 regular rows
        // contribute "much less than 1% of the RAM array area".
        let p = Process::cda07();
        let row = overhead_row(&p, 8192, 32, 8, 4).unwrap(); // 1024 rows
        let spare_part = row.overhead_with_spares - row.overhead;
        assert!(
            spare_part < 0.01,
            "spare rows contribute {:.3}%",
            spare_part * 100.0
        );
    }

    #[test]
    fn display_row_is_complete() {
        let p = Process::cda07();
        let row = overhead_row(&p, 2048, 32, 4, 4).unwrap();
        let s = row.to_string();
        assert!(s.contains("2048") && s.contains('%'));
    }

    #[test]
    fn invalid_geometry_propagates_error() {
        let p = Process::cda07();
        assert!(overhead_row(&p, 2048, 32, 3, 4).is_err());
    }
}
