//! The scoped-thread task executor behind parallel macrocell generation.
//!
//! Deliberately minimal: a fixed task list is distributed over at most
//! `jobs` `std::thread::scope` workers pulling indices from an atomic
//! counter. Results land in their task's slot, so the output order is
//! the input order no matter how the scheduler interleaves workers —
//! which is what keeps parallel compiles byte-identical to serial ones.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs every task, using up to `jobs` worker threads, and returns the
/// results in task order. `jobs <= 1` (or a single task) runs inline on
/// the caller's thread with no spawn overhead.
///
/// # Panics
///
/// Propagates a panic from any task (the scope joins all workers
/// first), so a panicking generator fails the compile loudly instead of
/// losing work silently.
pub fn run_tasks<T, F>(jobs: usize, tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    if jobs <= 1 || n <= 1 {
        return tasks.into_iter().map(|f| f()).collect();
    }
    let queue: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = jobs.min(n);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let task = queue[i]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("each index is claimed exactly once");
                let result = task();
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("joined scope has filled every slot")
        })
        .collect()
}

/// Resolves the worker count: an explicit request wins, then the
/// `BISRAM_JOBS` environment variable, then the machine's available
/// parallelism. Always at least 1.
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    if let Some(j) = explicit {
        return j.max(1);
    }
    if let Ok(v) = std::env::var("BISRAM_JOBS") {
        if let Ok(j) = v.trim().parse::<usize>() {
            return j.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_task_order() {
        let tasks: Vec<_> = (0..40).map(|i| move || i * 10).collect();
        let out = run_tasks(8, tasks);
        assert_eq!(out, (0..40).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let mk = || (0..17).map(|i| move || format!("cell_{i}")).collect::<Vec<_>>();
        assert_eq!(run_tasks(1, mk()), run_tasks(6, mk()));
    }

    #[test]
    fn empty_and_single_task_lists_work() {
        let none: Vec<fn() -> u8> = Vec::new();
        assert!(run_tasks(4, none).is_empty());
        assert_eq!(run_tasks(4, vec![|| 7u8]), vec![7]);
    }

    #[test]
    fn explicit_jobs_win_and_are_clamped() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert_eq!(resolve_jobs(Some(0)), 1);
    }

    #[test]
    fn defaulted_jobs_are_positive() {
        assert!(resolve_jobs(None) >= 1);
    }
}
