//! Compatibility re-export of the task executor.
//!
//! The scoped-thread executor behind parallel macrocell generation was
//! hoisted into the dependency-free [`bisram_exec`] crate so that leaf
//! crates (`bisram-field`, `bisram-yield`) can fan their Monte-Carlo
//! engines over the same worker pool without a dependency cycle. This
//! module keeps the original `bisramgen::pipeline::exec` paths working.

pub use bisram_exec::{resolve_jobs, run_chunked, run_tasks};
