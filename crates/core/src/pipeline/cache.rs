//! The content-keyed artifact cache shared across compiles.
//!
//! A [`CellCache`] maps `(kind, ContentKey)` pairs to `Arc`-shared
//! immutable artifacts (leaf cells, tiled macrocells, whole stage
//! outputs). Parameter sweeps hand one cache to every `compile_with`
//! call so that points sharing a process reuse leaf cells and tiles
//! instead of regenerating them; the parallel macrocell executor shares
//! the same cache across its worker threads, so the map is sharded
//! behind [`Mutex`]es to keep contention off the hot path.
//!
//! The cache is *transparent* by construction: a key covers every input
//! its builder reads, so a hit returns an artifact byte-identical to
//! what a fresh build would produce (pinned by `tests/determinism.rs`).

use super::key::{content_key, ContentKey, FxBuildHasher};
use crate::compiler::CompileError;
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of independent shards; a small power of two — enough to keep
/// the handful of compile worker threads from convoying on one lock.
const SHARDS: usize = 16;

/// One shard: the artifact map plus the per-kind hit/miss tallies for
/// the keys that hash into this shard. Keeping the tallies inside the
/// shard lock the lookup already holds makes per-kind accounting free
/// of any extra synchronization on the hot path.
#[derive(Debug, Default)]
struct ShardInner {
    map: HashMap<(&'static str, ContentKey), Arc<dyn Any + Send + Sync>, FxBuildHasher>,
    kind_hits: HashMap<&'static str, u64>,
    kind_misses: HashMap<&'static str, u64>,
}

type Shard = Mutex<ShardInner>;

/// Aggregated traffic for one cache kind (`leaf`, `macro`, a stage
/// name, `verify`, `verify-cert`, …) — the per-kind slice of
/// [`CellCache::hits`]/[`CellCache::misses`], surfaced by the compile
/// service's status response so cache behavior under traffic is
/// observable per artifact class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindStats {
    /// The cache kind string.
    pub kind: &'static str,
    /// Lookups of this kind that found a live artifact.
    pub hits: u64,
    /// Lookups of this kind that had to build.
    pub misses: u64,
}

/// A sharded, content-keyed map of compile artifacts.
#[derive(Debug, Default)]
pub struct CellCache {
    shards: [Shard; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CellCache {
    /// An empty cache.
    pub fn new() -> Self {
        CellCache::default()
    }

    /// The process-wide cache that plain [`compile`](crate::compile)
    /// uses, so that back-to-back compiles in one process (a sweep, a
    /// server loop) share artifacts without any plumbing.
    pub fn global() -> &'static Arc<CellCache> {
        static GLOBAL: OnceLock<Arc<CellCache>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(CellCache::new()))
    }

    fn shard(&self, key: ContentKey) -> &Shard {
        // The low bits of an Fx digest are well mixed (final op is a
        // multiply); any fixed bit slice spreads keys evenly.
        &self.shards[(key.0 as usize) % SHARDS]
    }

    /// Looks `(kind, key)` up, running `build` and inserting on a miss.
    ///
    /// The builder runs *outside* the shard lock so concurrent workers
    /// never serialize on each other's generation work; if two threads
    /// race on the same key both build and the second insert wins, which
    /// is harmless because equal keys imply byte-identical artifacts.
    ///
    /// # Errors
    ///
    /// Propagates the builder's error; nothing is inserted on failure.
    pub fn get_or_build<T, F>(
        &self,
        kind: &'static str,
        key: ContentKey,
        build: F,
    ) -> Result<Arc<T>, CompileError>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> Result<T, CompileError>,
    {
        if let Some(found) = self.lookup::<T>(kind, key) {
            return Ok(found);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        {
            let mut shard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
            *shard.kind_misses.entry(kind).or_insert(0) += 1;
        }
        let built: Arc<T> = Arc::new(build()?);
        let mut shard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        shard
            .map
            .insert((kind, key), Arc::clone(&built) as Arc<dyn Any + Send + Sync>);
        Ok(built)
    }

    /// A bare lookup (counts a hit when found, nothing when absent).
    /// A stored artifact of the wrong type — only possible if two
    /// different artifact types share a `kind` string, which the
    /// pipeline never does — is treated as absent rather than a panic.
    pub fn lookup<T: Send + Sync + 'static>(
        &self,
        kind: &'static str,
        key: ContentKey,
    ) -> Option<Arc<T>> {
        let mut shard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        let found = shard.map.get(&(kind, key)).cloned()?;
        match found.downcast::<T>() {
            Ok(t) => {
                *shard.kind_hits.entry(kind).or_insert(0) += 1;
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(t)
            }
            Err(_) => None,
        }
    }

    /// Convenience over [`CellCache::get_or_build`] deriving the key by
    /// hashing `key_struct` (the typed description of the artifact's
    /// inputs).
    ///
    /// # Errors
    ///
    /// Propagates the builder's error.
    pub fn get_or_build_keyed<K, T, F>(
        &self,
        kind: &'static str,
        key_struct: &K,
        build: F,
    ) -> Result<Arc<T>, CompileError>
    where
        K: std::hash::Hash,
        T: Send + Sync + 'static,
        F: FnOnce() -> Result<T, CompileError>,
    {
        self.get_or_build(kind, content_key(key_struct), build)
    }

    /// Total lookups that found a live artifact since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookups that had to build since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Per-kind hit/miss totals since construction, aggregated across
    /// shards and sorted by kind name — a deterministic snapshot for
    /// status reporting (the per-kind rows sum to
    /// [`CellCache::hits`]/[`CellCache::misses`]).
    pub fn kind_stats(&self) -> Vec<KindStats> {
        let mut agg: HashMap<&'static str, (u64, u64)> = HashMap::new();
        for s in &self.shards {
            let shard = s.lock().unwrap_or_else(|e| e.into_inner());
            for (&kind, &h) in &shard.kind_hits {
                agg.entry(kind).or_insert((0, 0)).0 += h;
            }
            for (&kind, &m) in &shard.kind_misses {
                agg.entry(kind).or_insert((0, 0)).1 += m;
            }
        }
        let mut out: Vec<KindStats> = agg
            .into_iter()
            .map(|(kind, (hits, misses))| KindStats { kind, hits, misses })
            .collect();
        out.sort_by_key(|s| s.kind);
        out
    }

    /// Number of cached artifacts.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).map.len())
            .sum()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached artifact (counters are kept — they describe
    /// the cache's lifetime, not its contents).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().unwrap_or_else(|e| e.into_inner()).map.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_builds_then_hit_reuses() {
        let cache = CellCache::new();
        let key = content_key(&"k1");
        let mut builds = 0;
        let a: Arc<String> = cache
            .get_or_build("test", key, || {
                builds += 1;
                Ok("artifact".to_owned())
            })
            .unwrap();
        let b: Arc<String> = cache
            .get_or_build("test", key, || {
                builds += 1;
                Ok("never run".to_owned())
            })
            .unwrap();
        assert_eq!(builds, 1);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn kinds_partition_the_key_space() {
        let cache = CellCache::new();
        let key = content_key(&7u64);
        let a: Arc<u32> = cache.get_or_build("kind-a", key, || Ok(1)).unwrap();
        let b: Arc<u32> = cache.get_or_build("kind-b", key, || Ok(2)).unwrap();
        assert_eq!((*a, *b), (1, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn build_errors_insert_nothing() {
        let cache = CellCache::new();
        let key = content_key(&"failing");
        let r: Result<Arc<u32>, _> = cache.get_or_build("test", key, || {
            Err(CompileError::Params(crate::params::ParamError::GateSizeTooSmall { factor: 0 }))
        });
        assert!(r.is_err());
        assert!(cache.is_empty());
        // A later successful build works.
        let ok: Arc<u32> = cache.get_or_build("test", key, || Ok(9)).unwrap();
        assert_eq!(*ok, 9);
    }

    #[test]
    fn kind_stats_partition_the_totals() {
        let cache = CellCache::new();
        let k1 = content_key(&1u64);
        let k2 = content_key(&2u64);
        let _: Arc<u32> = cache.get_or_build("alpha", k1, || Ok(1)).unwrap();
        let _: Arc<u32> = cache.get_or_build("alpha", k1, || Ok(1)).unwrap();
        let _: Arc<u32> = cache.get_or_build("alpha", k2, || Ok(2)).unwrap();
        let _: Arc<u32> = cache.get_or_build("beta", k1, || Ok(3)).unwrap();
        let stats = cache.kind_stats();
        // Sorted by kind, and the rows sum to the global counters.
        assert_eq!(
            stats,
            vec![
                KindStats { kind: "alpha", hits: 1, misses: 2 },
                KindStats { kind: "beta", hits: 0, misses: 1 },
            ]
        );
        let (h, m): (u64, u64) = stats
            .iter()
            .fold((0, 0), |(h, m), s| (h + s.hits, m + s.misses));
        assert_eq!((h, m), (cache.hits(), cache.misses()));
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache = CellCache::new();
        let key = content_key(&1u8);
        let _: Arc<u8> = cache.get_or_build("t", key, || Ok(1)).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn concurrent_same_key_builds_converge() {
        let cache = Arc::new(CellCache::new());
        let key = content_key(&"contended");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    let v: Arc<u64> = cache.get_or_build("t", key, || Ok(0xABCD)).unwrap();
                    assert_eq!(*v, 0xABCD);
                });
            }
        });
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits() + cache.misses(), 8);
    }
}
