//! Deterministic content keys for pipeline artifacts.
//!
//! Every stage (and every individually cached cell inside a stage) is
//! identified by a [`ContentKey`]: a 64-bit digest of the *subset* of
//! `(RamParams, Process)` the stage actually reads. Two compiles whose
//! inputs agree on that subset map to the same key and may share the
//! cached artifact; anything the stage reads must therefore be folded
//! into its key — the determinism suite (`tests/determinism.rs`) pins
//! this byte-for-byte.
//!
//! The hasher is a vendored FxHash-style multiply-rotate hash (the
//! rustc-hash algorithm), kept in-tree because the workspace is
//! hermetic by policy: zero external dependencies. It is *not* DoS
//! resistant and does not need to be — keys are derived from trusted
//! in-process structs, never from attacker-controlled input.

use std::hash::{BuildHasherDefault, Hash, Hasher};

/// Multiplier from the FxHash algorithm (a 64-bit cousin of the
/// Fowler–Noll–Vo primes, chosen by the Firefox team for instruction
/// throughput rather than avalanche quality).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash-style streaming hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A 64-bit content digest identifying one cached artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentKey(pub u64);

impl std::fmt::Display for ContentKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Digests any hashable key struct into a [`ContentKey`].
pub fn content_key<T: Hash + ?Sized>(value: &T) -> ContentKey {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    ContentKey(h.finish())
}

/// Folds a [`Process`](bisram_tech::Process) into a stable 64-bit
/// fingerprint. `Process` intentionally does not implement `Hash` (it
/// carries `f64` device parameters), so the fingerprint hashes the
/// fields a leaf generator can observe: name, feature size, metal
/// count, the rule lambda, and the raw bit patterns of every device
/// parameter. Custom processes with identical electrical and geometric
/// content deliberately collide — their generated cells are identical.
pub fn process_fingerprint(process: &bisram_tech::Process) -> u64 {
    let mut h = FxHasher::default();
    process.name().hash(&mut h);
    process.feature_nm().hash(&mut h);
    process.metal_layers().hash(&mut h);
    process.rules().lambda().hash(&mut h);
    let d = process.devices();
    for f in [
        d.vdd,
        d.vtn,
        d.vtp,
        d.kp_n,
        d.kp_p,
        d.cox,
        d.cj,
        d.cjsw,
        d.cw_metal,
        d.cw_poly,
        d.rsh_metal,
        d.rsh_poly,
        d.rsh_diff,
        d.channel_lambda,
    ] {
        h.write_u64(f.to_bits());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisram_tech::Process;

    #[test]
    fn keys_are_deterministic_across_hasher_instances() {
        let a = content_key(&("macro:array", 42u64, 7usize));
        let b = content_key(&("macro:array", 42u64, 7usize));
        assert_eq!(a, b);
        assert_eq!(a.to_string().len(), 16);
    }

    #[test]
    fn keys_separate_different_inputs() {
        assert_ne!(content_key(&1u64), content_key(&2u64));
        assert_ne!(content_key(&"a"), content_key(&"b"));
        assert_ne!(content_key(&("k", 1u64)), content_key(&("k", 2u64)));
    }

    #[test]
    fn byte_stream_tail_is_length_disambiguated() {
        // "ab" vs "ab\0" style collisions of a naive zero-padded tail.
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3]);
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 0]);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn process_fingerprints_distinguish_the_builtins() {
        let fps: Vec<u64> = Process::builtin().iter().map(process_fingerprint).collect();
        assert_eq!(fps.len(), 3);
        assert!(fps[0] != fps[1] && fps[1] != fps[2] && fps[0] != fps[2]);
        // Stable across calls.
        assert_eq!(process_fingerprint(&Process::cda07()), fps[2]);
    }
}
