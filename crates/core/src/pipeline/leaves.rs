//! Stage 2 — the leaf set: every process-sized leaf cell the macrocells
//! tile from.
//!
//! Leaves are cached at two granularities: each leaf individually
//! (kind `leaf`, keyed on `(process fingerprint, LeafSpec)` so sweeps
//! that only change the array geometry reuse the whole library), and
//! the assembled [`LeafSet`] (kind `stage:leaves`) so a fully-warm
//! compile takes one lookup.

use super::key::process_fingerprint;
use super::{PipelineCtx, Stage};
use crate::compiler::CompileError;
use bisram_layout::leaf::LeafSpec;
use bisram_layout::Cell;
use std::sync::Arc;

/// The generated leaf-cell library of one compile, every entry shared
/// behind an [`Arc`] so tiles reference rather than copy them.
#[derive(Debug, Clone)]
pub struct LeafSet {
    /// Six-transistor storage cell.
    pub sram: Arc<Cell>,
    /// Row decoder sized for this row-address width.
    pub rowdec: Arc<Cell>,
    /// Word-line driver at the user's critical-gate size.
    pub wldrv: Arc<Cell>,
    /// Bitline precharge at the user's critical-gate size.
    pub prech: Arc<Cell>,
    /// Column multiplexer bit.
    pub colmux: Arc<Cell>,
    /// Current-mode sense amplifier.
    pub samp: Arc<Cell>,
    /// Write driver.
    pub wrdrv: Arc<Cell>,
    /// D flip-flop (Johnson counter stages, state register).
    pub dff: Arc<Cell>,
    /// Up/down counter bit (address generator).
    pub counter: Arc<Cell>,
    /// Two-input XOR (read comparators).
    pub xor2: Arc<Cell>,
    /// CAM bit (TLB entries).
    pub cam_bit: Arc<Cell>,
    /// Programmed PLA crosspoint.
    pub pla_on: Arc<Cell>,
    /// Blank PLA crosspoint.
    pub pla_off: Arc<Cell>,
    /// PLA term-line pull-up (also the TLB match-line pull-up).
    pub pullup: Arc<Cell>,
}

/// What the leaf stage reads from `(RamParams, Process)`: the process
/// itself, the critical-gate size, and the row-address width (the row
/// decoder's fan-in).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LeafKey {
    /// [`process_fingerprint`] of the target process.
    pub process: u64,
    /// Critical-gate size factor.
    pub gate_size: i64,
    /// Row-address bits (clamped to ≥ 1 like the generators expect).
    pub row_bits: u32,
}

impl LeafKey {
    /// Extracts the key from a compile context.
    pub fn of(ctx: &PipelineCtx<'_>) -> Self {
        LeafKey {
            process: process_fingerprint(ctx.params.process()),
            gate_size: ctx.params.gate_size(),
            row_bits: ctx.params.org().row_bits().max(1),
        }
    }
}

/// Builds the [`LeafSet`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LeafStage;

impl Stage for LeafStage {
    type Artifact = LeafSet;

    const NAME: &'static str = "leaves";

    fn key(&self, ctx: &PipelineCtx<'_>) -> super::key::ContentKey {
        super::key::content_key(&LeafKey::of(ctx))
    }

    fn run(&self, ctx: &PipelineCtx<'_>) -> Result<LeafSet, CompileError> {
        let key = LeafKey::of(ctx);
        let leaf = |spec: LeafSpec| ctx.leaf(key.process, spec);
        Ok(LeafSet {
            sram: leaf(LeafSpec::Sram6t)?,
            rowdec: leaf(LeafSpec::RowDecoder {
                address_bits: key.row_bits,
            })?,
            wldrv: leaf(LeafSpec::WordlineDriver {
                size_factor: key.gate_size,
            })?,
            prech: leaf(LeafSpec::Precharge {
                size_factor: key.gate_size,
            })?,
            colmux: leaf(LeafSpec::ColMux)?,
            samp: leaf(LeafSpec::SenseAmp)?,
            wrdrv: leaf(LeafSpec::WriteDriver)?,
            dff: leaf(LeafSpec::Dff)?,
            counter: leaf(LeafSpec::CounterBit)?,
            xor2: leaf(LeafSpec::Xor2)?,
            cam_bit: leaf(LeafSpec::CamBit)?,
            pla_on: leaf(LeafSpec::PlaCrosspoint { programmed: true })?,
            pla_off: leaf(LeafSpec::PlaCrosspoint { programmed: false })?,
            pullup: leaf(LeafSpec::PlaPullup)?,
        })
    }

    fn describe(artifact: &LeafSet) -> String {
        format!(
            "14 leaves, sram {}x{} nm",
            artifact.sram.bbox().width(),
            artifact.sram.bbox().height()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::CompileOptions;
    use crate::RamParams;

    #[test]
    fn leaf_key_ignores_geometry_that_leaves_do_not_read() {
        let opts = CompileOptions::cold();
        // Same rows (words/bpc fixed), different word width: identical key.
        let a = RamParams::builder().words(1024).bits_per_word(8).build().unwrap();
        let b = RamParams::builder().words(1024).bits_per_word(32).build().unwrap();
        assert_eq!(
            LeafKey::of(&PipelineCtx::new(&a, &opts)),
            LeafKey::of(&PipelineCtx::new(&b, &opts))
        );
        // More words ⇒ more row bits ⇒ different key.
        let c = RamParams::builder().words(4096).bits_per_word(8).build().unwrap();
        assert_ne!(
            LeafKey::of(&PipelineCtx::new(&a, &opts)),
            LeafKey::of(&PipelineCtx::new(&c, &opts))
        );
    }

    #[test]
    fn shared_cache_reuses_individual_leaves_across_geometries() {
        let opts = CompileOptions::cold();
        let a = RamParams::builder().words(1024).bits_per_word(8).build().unwrap();
        let b = RamParams::builder().words(4096).bits_per_word(8).build().unwrap();
        let ctx_a = PipelineCtx::new(&a, &opts);
        let set_a = LeafStage.run(&ctx_a).unwrap();
        let misses_after_a = opts.cache().misses();
        // Different row_bits: the decoder misses, but the other 13
        // leaves are shared with the first geometry.
        let ctx_b = PipelineCtx::new(&b, &opts);
        let set_b = LeafStage.run(&ctx_b).unwrap();
        assert!(Arc::ptr_eq(&set_a.sram, &set_b.sram));
        assert!(!Arc::ptr_eq(&set_a.rowdec, &set_b.rowdec));
        assert_eq!(opts.cache().misses(), misses_after_a + 1);
    }
}
