//! Stage 4 — the floorplan: macrocell placement, over-the-cell routing,
//! and the assembled chip cell.

use super::key::content_key;
use super::macrocells::MacroSet;
use super::{PipelineCtx, Stage};
use crate::compiler::CompileError;
use bisram_layout::placer::{place_with_margin, Macro, Placement};
use bisram_layout::route::{self, Route};
use bisram_layout::Cell;
use std::sync::Arc;

/// The placed-and-routed module.
#[derive(Debug, Clone)]
pub struct Floorplan {
    /// The macrocell placement (decreasing area + port alignment).
    pub placement: Placement,
    /// The over-the-cell metal-3 routes.
    pub routes: Vec<Route>,
    /// The assembled chip cell (macro instances + route shapes).
    pub chip: Cell,
}

/// Builds the [`Floorplan`] from the macro set.
#[derive(Debug, Clone)]
pub struct FloorplanStage {
    /// Stage-3 artifact.
    pub macros: Arc<MacroSet>,
}

impl Stage for FloorplanStage {
    type Artifact = Floorplan;

    const NAME: &'static str = "floorplan";

    fn key(&self, ctx: &PipelineCtx<'_>) -> super::key::ContentKey {
        // Placement and routing read every macro (hence the full
        // parameter set) plus the process's lambda for the margin; all
        // of it is covered by the module fingerprint. The PLA is fixed
        // per march, already part of the macro stage inputs — keyed
        // here through the macro report total, which pins the actual
        // macro contents this floorplan placed.
        content_key(&(ctx.params_fingerprint(), self.macros.report.total()))
    }

    fn run(&self, ctx: &PipelineCtx<'_>) -> Result<Floorplan, CompileError> {
        let org = ctx.params.org();
        let lambda = ctx.params.process().rules().lambda();
        let macros = self
            .macros
            .cells
            .iter()
            .map(|(name, cell)| Macro::new(*name, Arc::clone(cell)))
            .collect();
        // Clearance between macros: the widest same-layer spacing rule
        // (the n-well's 9 lambda) with slack, so no cross-macro DRC
        // violations can arise.
        let placement = place_with_margin(macros, 12 * lambda);
        let routes = route::route_placement(&placement, ctx.params.process());
        let mut chip = placement
            .clone()
            .into_cell(&format!("bisram_{}x{}", org.words(), org.bpw()));
        for r in &routes {
            for (layer, rect) in &r.shapes {
                chip.add_shape(*layer, *rect);
            }
        }
        Ok(Floorplan {
            placement,
            routes,
            chip,
        })
    }

    fn describe(artifact: &Floorplan) -> String {
        format!(
            "{} macros placed, {} routes, {:.1}% utilization",
            artifact.placement.placed().len(),
            artifact.routes.len(),
            artifact.placement.utilization() * 100.0
        )
    }
}
