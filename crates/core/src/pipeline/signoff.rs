//! Stage 5 — signoff: the extrapolated datasheet.

use super::key::content_key;
use super::{PipelineCtx, Stage};
use crate::compiler::CompileError;
use crate::datasheet::Datasheet;

/// The signoff artifact: electrical extrapolations for the datasheet
/// (access/cycle time, power, the TLB delay-masking check).
#[derive(Debug, Clone)]
pub struct Signoff {
    /// The extrapolated datasheet.
    pub datasheet: Datasheet,
}

/// Builds the [`Signoff`]. Reads the full parameter set (organization,
/// process electricals, gate sizing) but none of the layout artifacts —
/// extrapolation is analytic, which is why this stage can run without
/// waiting on the floorplan.
#[derive(Debug, Clone, Copy, Default)]
pub struct SignoffStage;

impl Stage for SignoffStage {
    type Artifact = Signoff;

    const NAME: &'static str = "signoff";

    fn key(&self, ctx: &PipelineCtx<'_>) -> super::key::ContentKey {
        content_key(&ctx.params_fingerprint())
    }

    fn run(&self, ctx: &PipelineCtx<'_>) -> Result<Signoff, CompileError> {
        Ok(Signoff {
            datasheet: Datasheet::extrapolate(ctx.params),
        })
    }

    fn describe(artifact: &Signoff) -> String {
        format!(
            "access {:.2} ns",
            artifact.datasheet.access_time_s * 1e9
        )
    }
}
