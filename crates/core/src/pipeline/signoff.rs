//! Stage 5 — signoff: the extrapolated datasheet, plus (on request)
//! full physical verification of every macrocell.
//!
//! Verification runs the three `bisram-verify` engines — scanline DRC,
//! connectivity extraction, and LVS against schematics composed from
//! the leaf library — over each tiled macrocell. Macrocells are
//! verified **in parallel** on the same scoped-thread executor the
//! macrocell stage uses, and each per-macro result is content-keyed
//! (kind `verify`) so sweeps re-verify only the macros that actually
//! changed.

use super::cache::CellCache;
use super::floorplan::Floorplan;
use super::key::content_key;
use super::leaves::LeafKey;
use super::macrocells::MacroSet;
use super::{exec, PipelineCtx, Stage, VerifyMode};
use crate::compiler::CompileError;
use crate::datasheet::Datasheet;
use bisram_bist::trpla::Pla;
use bisram_layout::leaf::LeafSpec;
use bisram_verify::hier::{boundary_findings, verify_cell_hier, CellCertificate, CertificateStore};
use bisram_verify::{verify_cell, CellVerifyReport, SchematicLib, VerifyReport};
use std::sync::Arc;

/// The signoff artifact: electrical extrapolations for the datasheet
/// (access/cycle time, power, the TLB delay-masking check) and, when
/// the compile asked for it, the physical verification report.
#[derive(Debug, Clone)]
pub struct Signoff {
    /// The extrapolated datasheet.
    pub datasheet: Datasheet,
    /// DRC + LVS over every macrocell
    /// ([`CompileOptions::with_verify`](super::CompileOptions::with_verify)).
    pub verify: Option<Arc<VerifyReport>>,
}

/// Builds the [`Signoff`]. The datasheet reads the full parameter set
/// (organization, process electricals, gate sizing); verification
/// additionally reads the stage-3 macrocells and the PLA personality
/// that shaped them.
#[derive(Debug, Clone)]
pub struct SignoffStage {
    /// Stage-3 artifact (the cells verification checks).
    pub macros: Arc<MacroSet>,
    /// Stage-4 artifact: hierarchical verification additionally runs a
    /// boundary-interaction DRC pass over the placed macros.
    pub floorplan: Arc<Floorplan>,
    /// The PLA personality (part of the verify cache key: it is the one
    /// macrocell input the parameter fingerprint does not cover).
    pub pla: Pla,
}

/// The leaf specs a compile's macrocells are tiled from — the
/// schematic library [`verify_macros`] composes references out of.
/// Must stay in lockstep with `LeafStage::run`.
fn leaf_specs(key: &LeafKey) -> Vec<LeafSpec> {
    vec![
        LeafSpec::Sram6t,
        LeafSpec::RowDecoder {
            address_bits: key.row_bits,
        },
        LeafSpec::WordlineDriver {
            size_factor: key.gate_size,
        },
        LeafSpec::Precharge {
            size_factor: key.gate_size,
        },
        LeafSpec::ColMux,
        LeafSpec::SenseAmp,
        LeafSpec::WriteDriver,
        LeafSpec::Dff,
        LeafSpec::CounterBit,
        LeafSpec::Xor2,
        LeafSpec::CamBit,
        LeafSpec::PlaCrosspoint { programmed: true },
        LeafSpec::PlaCrosspoint { programmed: false },
        LeafSpec::PlaPullup,
    ]
}

/// Adapts the pipeline's [`CellCache`] as a
/// [`CertificateStore`]: verified-clean certificates live under the new
/// cache kind `verify-cert`, salted with the schematic-library identity
/// (the certificate key itself already covers cell content and rules).
struct CacheCertStore<'a> {
    cache: &'a CellCache,
    salt: u64,
}

impl CertificateStore for CacheCertStore<'_> {
    fn get_or_build(
        &self,
        key: u64,
        build: &mut dyn FnMut() -> CellCertificate,
    ) -> Arc<CellCertificate> {
        match self
            .cache
            .get_or_build("verify-cert", content_key(&(self.salt, key)), || Ok(build()))
        {
            Ok(cert) => cert,
            // The builder is infallible; this arm is unreachable but
            // keeps the adapter total without unwrapping.
            Err(_) => Arc::new(build()),
        }
    }
}

/// Runs DRC + LVS over every macrocell, in parallel, each macro cached
/// under kind `verify`. In [`VerifyMode::Hier`] each macro is verified
/// through content-keyed certificates and the placed floorplan gets a
/// boundary-interaction DRC pass on top.
fn verify_macros(
    ctx: &PipelineCtx<'_>,
    macros: &MacroSet,
    floorplan: &Floorplan,
    pla: &Pla,
) -> Result<VerifyReport, CompileError> {
    let process = ctx.params.process();
    let rules = process.rules();
    let leaf_key = LeafKey::of(ctx);
    let lib = Arc::new(SchematicLib::for_leaves(&leaf_specs(&leaf_key), process));
    let fp = ctx.params_fingerprint();
    let mode = ctx.verify_mode();
    // The certificate key covers rules + cell content; the salt adds
    // what else shapes a report — the schematic library identity.
    let salt = content_key(&(ctx.process_fingerprint(), leaf_key)).0;
    let tasks: Vec<_> = macros
        .cells
        .iter()
        .map(|(name, cell)| {
            let lib = Arc::clone(&lib);
            let cell = Arc::clone(cell);
            move || {
                ctx.cache()
                    .get_or_build("verify", content_key(&(fp, pla, *name, mode)), || {
                        Ok(match mode {
                            VerifyMode::Flat => verify_cell(rules, &cell, &lib),
                            VerifyMode::Hier => {
                                let store = CacheCertStore {
                                    cache: ctx.cache(),
                                    salt,
                                };
                                verify_cell_hier(rules, &cell, &lib, &store)
                            }
                        })
                    })
            }
        })
        .collect();
    let per_macro: Vec<Arc<CellVerifyReport>> = exec::run_tasks(ctx.jobs(), tasks)
        .into_iter()
        .collect::<Result<_, _>>()?;
    let mut cells: Vec<CellVerifyReport> = per_macro.iter().map(|c| (**c).clone()).collect();
    let mut error = None;
    if mode == VerifyMode::Hier {
        // Macros are placed with a 12λ margin — wider than the largest
        // rule distance — so this pass finds nothing on a healthy
        // placement; it exists to catch placer regressions. Routes are
        // deliberately excluded: flat mode does not check them either
        // (they belong to no macrocell).
        let placed = floorplan.placement.clone().into_cell("floorplan");
        match boundary_findings(rules, &placed) {
            Ok(findings) if findings.is_empty() => {}
            Ok(findings) => cells.push(CellVerifyReport {
                cell: "floorplan".to_string(),
                shape_count: 0,
                drc: findings,
                lvs: None,
                error: None,
            }),
            Err(e) => error = Some(e),
        }
    }
    Ok(VerifyReport {
        process: process.name().to_string(),
        cells,
        error,
    })
}

impl Stage for SignoffStage {
    type Artifact = Signoff;

    const NAME: &'static str = "signoff";

    fn key(&self, ctx: &PipelineCtx<'_>) -> super::key::ContentKey {
        content_key(&(
            ctx.params_fingerprint(),
            ctx.verify(),
            ctx.verify_mode(),
            &self.pla,
        ))
    }

    fn run(&self, ctx: &PipelineCtx<'_>) -> Result<Signoff, CompileError> {
        let verify = if ctx.verify() {
            Some(Arc::new(verify_macros(
                ctx,
                &self.macros,
                &self.floorplan,
                &self.pla,
            )?))
        } else {
            None
        };
        Ok(Signoff {
            datasheet: Datasheet::extrapolate(ctx.params),
            verify,
        })
    }

    fn describe(artifact: &Signoff) -> String {
        let mut s = format!("access {:.2} ns", artifact.datasheet.access_time_s * 1e9);
        if let Some(v) = &artifact.verify {
            s.push_str(if v.is_clean() {
                ", verify clean"
            } else {
                ", verify DIRTY"
            });
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::control::ControlStage;
    use crate::pipeline::leaves::LeafStage;
    use crate::pipeline::macrocells::MacroStage;
    use crate::pipeline::CompileOptions;
    use crate::RamParams;

    fn small() -> RamParams {
        RamParams::builder()
            .words(64)
            .bits_per_word(4)
            .bits_per_column(4)
            .spare_rows(4)
            .build()
            .unwrap()
    }

    fn signoff_with(opts: &CompileOptions) -> Signoff {
        let params = small();
        let ctx = PipelineCtx::new(&params, opts);
        let control = ctx.run_stage(&ControlStage).unwrap();
        let leaves = ctx.run_stage(&LeafStage).unwrap();
        let macros = ctx
            .run_stage(&MacroStage {
                control: Arc::clone(&control),
                leaves,
            })
            .unwrap();
        let floorplan = ctx
            .run_stage(&crate::pipeline::floorplan::FloorplanStage {
                macros: Arc::clone(&macros),
            })
            .unwrap();
        let stage = SignoffStage {
            macros,
            floorplan,
            pla: control.pla.clone(),
        };
        stage.run(&ctx).unwrap()
    }

    #[test]
    fn verification_is_off_by_default() {
        let signoff = signoff_with(&CompileOptions::cold());
        assert!(signoff.verify.is_none());
        assert!(!SignoffStage::describe(&signoff).contains("verify"));
    }

    #[test]
    fn verification_covers_every_macro_and_is_clean() {
        let signoff = signoff_with(&CompileOptions::cold().with_verify(true));
        let report = signoff.verify.as_ref().expect("verify requested");
        assert_eq!(report.cells.len(), 12);
        assert!(report.is_clean(), "{report}");
        assert!(SignoffStage::describe(&signoff).contains("verify clean"));
    }

    #[test]
    fn per_macro_results_are_cache_shared() {
        let opts = CompileOptions::cold().with_verify(true);
        let _ = signoff_with(&opts);
        let misses = opts.cache().misses();
        let _ = signoff_with(&opts);
        // Second run: every per-macro verify (and everything else) hits.
        assert_eq!(opts.cache().misses(), misses);
    }

    #[test]
    fn hierarchical_report_is_byte_identical_to_flat() {
        let flat = signoff_with(&CompileOptions::cold().with_verify(true));
        let hier = signoff_with(
            &CompileOptions::cold()
                .with_verify(true)
                .with_verify_mode(VerifyMode::Hier),
        );
        let flat = flat.verify.expect("flat report");
        let hier = hier.verify.expect("hier report");
        assert!(flat.is_clean(), "{flat}");
        assert_eq!(flat.to_string(), hier.to_string());
    }

    #[test]
    fn hierarchical_certificates_are_cache_shared() {
        let opts = CompileOptions::cold()
            .with_verify(true)
            .with_verify_mode(VerifyMode::Hier);
        let _ = signoff_with(&opts);
        let misses = opts.cache().misses();
        let _ = signoff_with(&opts);
        assert_eq!(opts.cache().misses(), misses);
    }
}
