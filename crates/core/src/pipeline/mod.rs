//! The staged compile pipeline.
//!
//! `compile()` used to be one long function that regenerated every leaf
//! cell, tile, and PLA layout from scratch, serially, on every
//! invocation — so a parameter sweep recompiled identical
//! sub-structures hundreds of times. This module restructures it as an
//! explicit pipeline of five typed stages:
//!
//! | stage | artifact | reads |
//! |-------|----------|-------|
//! | [`control::ControlStage`] | [`control::ControlPlan`] | the built-in march |
//! | [`leaves::LeafStage`] | [`leaves::LeafSet`] | process, gate size, row bits |
//! | [`macrocells::MacroStage`] | [`macrocells::MacroSet`] | full geometry + PLA |
//! | [`floorplan::FloorplanStage`] | [`floorplan::Floorplan`] | full geometry |
//! | [`signoff::SignoffStage`] | [`signoff::Signoff`] | full parameter set (+ macrocells when verifying) |
//!
//! Each stage declares a deterministic **content key** over the subset
//! of `(RamParams, Process)` it actually reads ([`key`]), and every
//! artifact is memoized in a sharded, `Arc`-sharing [`cache::CellCache`]
//! — so repeated compiles in a sweep reuse leaf cells, tiles, and PLA
//! layouts across parameter points that share a process. Macrocell
//! generation inside stage 3 fans out over a scoped-thread executor
//! ([`exec`]), bounded by [`CompileOptions::with_jobs`] or the
//! `BISRAM_JOBS` environment variable. Every compile records a
//! [`trace::PipelineTrace`] (per-stage wall time, cache traffic,
//! artifact sizes) surfaced on `CompiledRam::trace` and printed by
//! `bisramgen --timings`.
//!
//! Caching and parallelism are **transparent**: outputs are
//! byte-identical to a cold serial compile (`tests/determinism.rs`).

pub mod cache;
pub mod control;
pub mod exec;
pub mod floorplan;
pub mod key;
pub mod leaves;
pub mod macrocells;
pub mod signoff;
pub mod trace;

pub use cache::{CellCache, KindStats};
pub use control::ControlPlan;
pub use floorplan::Floorplan;
pub use key::ContentKey;
pub use leaves::LeafSet;
pub use macrocells::MacroSet;
pub use signoff::Signoff;
pub use trace::{PipelineTrace, StageTrace};

use crate::compiler::CompileError;
use crate::params::RamParams;
use key::content_key;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One pipeline stage: a typed artifact, a content key over the inputs
/// the stage reads, and the generation itself.
pub trait Stage {
    /// The stage's output artifact.
    type Artifact: Send + Sync + 'static;

    /// Stage (and cache-kind) name.
    const NAME: &'static str;

    /// The content key: a digest of exactly the inputs [`Stage::run`]
    /// reads. Anything the stage reads but the key omits breaks cache
    /// transparency — the determinism suite exists to catch that.
    fn key(&self, ctx: &PipelineCtx<'_>) -> ContentKey;

    /// Generates the artifact.
    ///
    /// # Errors
    ///
    /// Stage-specific [`CompileError`]s.
    fn run(&self, ctx: &PipelineCtx<'_>) -> Result<Self::Artifact, CompileError>;

    /// One-line artifact summary for the trace.
    fn describe(artifact: &Self::Artifact) -> String;
}

/// How signoff verification traverses the design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VerifyMode {
    /// Flatten each macrocell and check every placed shape.
    #[default]
    Flat,
    /// Verify each *distinct* cell once behind a content-keyed
    /// verified-clean certificate (cache kind `verify-cert`), then
    /// design-rule check only the halo windows where instances abut.
    /// Byte-identical reports to [`VerifyMode::Flat`] on clean designs.
    Hier,
}

impl VerifyMode {
    /// Parses the `--verify-mode` spelling (`flat` | `hier`).
    pub fn parse(s: &str) -> Option<VerifyMode> {
        match s {
            "flat" => Some(VerifyMode::Flat),
            "hier" => Some(VerifyMode::Hier),
            _ => None,
        }
    }
}

impl std::fmt::Display for VerifyMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            VerifyMode::Flat => "flat",
            VerifyMode::Hier => "hier",
        })
    }
}

/// Knobs for [`compile_with`](crate::compile_with): which cache to use
/// and how many macrocell workers to run.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    jobs: Option<usize>,
    cache: Arc<CellCache>,
    verify: bool,
    verify_mode: VerifyMode,
}

impl Default for CompileOptions {
    /// The production default: the process-wide shared cache
    /// ([`CellCache::global`]), automatic parallelism, no verification.
    fn default() -> Self {
        CompileOptions {
            jobs: None,
            cache: Arc::clone(CellCache::global()),
            verify: false,
            verify_mode: VerifyMode::Flat,
        }
    }
}

impl CompileOptions {
    /// The default options (shared global cache, automatic jobs).
    pub fn new() -> Self {
        CompileOptions::default()
    }

    /// Options with a private empty cache — a guaranteed-cold compile,
    /// for benchmarking and for the determinism suite's baselines.
    pub fn cold() -> Self {
        CompileOptions {
            jobs: None,
            cache: Arc::new(CellCache::new()),
            verify: false,
            verify_mode: VerifyMode::Flat,
        }
    }

    /// Replaces the cache (e.g. one cache per sweep).
    pub fn with_cache(mut self, cache: Arc<CellCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Fixes the macrocell worker count (1 = serial). Overrides the
    /// `BISRAM_JOBS` environment variable.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs);
        self
    }

    /// The cache compiles with these options will share.
    pub fn cache(&self) -> &Arc<CellCache> {
        &self.cache
    }

    /// Requests full physical verification (scanline DRC, extraction,
    /// LVS) of every macrocell during signoff; the report lands on
    /// [`Signoff::verify`](signoff::Signoff) and
    /// `CompiledRam::verify_report`.
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Whether signoff will run physical verification.
    pub fn verify(&self) -> bool {
        self.verify
    }

    /// Selects flat or hierarchical verification (default
    /// [`VerifyMode::Flat`]); only consulted when verification is on.
    pub fn with_verify_mode(mut self, mode: VerifyMode) -> Self {
        self.verify_mode = mode;
        self
    }

    /// How signoff verification will traverse the design.
    pub fn verify_mode(&self) -> VerifyMode {
        self.verify_mode
    }

    /// The explicit worker count, if fixed.
    pub fn jobs(&self) -> Option<usize> {
        self.jobs
    }
}

/// Everything a stage can see: the validated parameters, the artifact
/// cache, the resolved worker count, and the trace being accumulated.
#[derive(Debug)]
pub struct PipelineCtx<'a> {
    /// The validated compile parameters.
    pub params: &'a RamParams,
    cache: Arc<CellCache>,
    jobs: usize,
    verify: bool,
    verify_mode: VerifyMode,
    traces: Mutex<Vec<StageTrace>>,
}

impl<'a> PipelineCtx<'a> {
    /// Builds a context from options (resolving the worker count from
    /// the options, the `BISRAM_JOBS` variable, or the machine).
    pub fn new(params: &'a RamParams, options: &CompileOptions) -> Self {
        PipelineCtx {
            params,
            cache: Arc::clone(options.cache()),
            jobs: exec::resolve_jobs(options.jobs()),
            verify: options.verify(),
            verify_mode: options.verify_mode(),
            traces: Mutex::new(Vec::new()),
        }
    }

    /// The artifact cache.
    pub fn cache(&self) -> &CellCache {
        &self.cache
    }

    /// Worker threads the macrocell stage may use.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Whether signoff should run physical verification.
    pub fn verify(&self) -> bool {
        self.verify
    }

    /// How signoff verification traverses the design.
    pub fn verify_mode(&self) -> VerifyMode {
        self.verify_mode
    }

    /// Fingerprint of the target process (see
    /// [`key::process_fingerprint`]).
    pub fn process_fingerprint(&self) -> u64 {
        key::process_fingerprint(self.params.process())
    }

    /// Digest of the full parameter set: process fingerprint plus every
    /// user knob (geometry, spares, gate sizing, straps). The key for
    /// stages that read everything.
    pub fn params_fingerprint(&self) -> u64 {
        let org = self.params.org();
        content_key(&(
            self.process_fingerprint(),
            org.words(),
            org.bpw(),
            org.columns(),
            org.total_rows(),
            org.spare_rows(),
            self.params.gate_size(),
            self.params.strap_every(),
            self.params.strap_lambda(),
        ))
        .0
    }

    /// Fetches one leaf cell through the cache (kind `leaf`), keyed on
    /// the process fingerprint and the typed
    /// [`LeafSpec`](bisram_layout::leaf::LeafSpec).
    ///
    /// # Errors
    ///
    /// Currently infallible (leaf generators cannot fail for validated
    /// parameters); the `Result` keeps the signature uniform.
    pub fn leaf(
        &self,
        process_fp: u64,
        spec: bisram_layout::leaf::LeafSpec,
    ) -> Result<Arc<bisram_layout::Cell>, CompileError> {
        self.cache
            .get_or_build("leaf", content_key(&(process_fp, spec)), || {
                Ok(spec.build(self.params.process()))
            })
    }

    /// Runs one stage through the cache, recording a [`StageTrace`].
    ///
    /// # Errors
    ///
    /// Propagates the stage's error (nothing is cached on failure).
    pub fn run_stage<S: Stage>(&self, stage: &S) -> Result<Arc<S::Artifact>, CompileError> {
        let stage_key = stage.key(self);
        let hits_before = self.cache.hits();
        let misses_before = self.cache.misses();
        let start = Instant::now();
        let (artifact, cached) = match self.cache.lookup::<S::Artifact>(S::NAME, stage_key) {
            Some(found) => (found, true),
            None => (
                self.cache
                    .get_or_build(S::NAME, stage_key, || stage.run(self))?,
                false,
            ),
        };
        let record = StageTrace {
            stage: S::NAME,
            key: stage_key,
            wall: start.elapsed(),
            cached,
            cache_hits: self.cache.hits() - hits_before,
            cache_misses: self.cache.misses() - misses_before,
            artifact: S::describe(&artifact),
        };
        self.traces
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(record);
        Ok(artifact)
    }

    /// Consumes the context into the per-compile trace.
    pub fn finish(self) -> PipelineTrace {
        PipelineTrace {
            stages: self
                .traces
                .into_inner()
                .unwrap_or_else(|e| e.into_inner()),
            jobs: self.jobs,
        }
    }
}

/// The five-stage artifact bundle a compile assembles into a
/// `CompiledRam`.
pub(crate) struct PipelineOutput {
    pub control: Arc<ControlPlan>,
    pub macros: Arc<MacroSet>,
    pub floorplan: Arc<Floorplan>,
    pub signoff: Arc<Signoff>,
    pub trace: PipelineTrace,
}

/// Runs the full pipeline for one parameter point.
pub(crate) fn run_pipeline(
    params: &RamParams,
    options: &CompileOptions,
) -> Result<PipelineOutput, CompileError> {
    let ctx = PipelineCtx::new(params, options);
    let control = ctx.run_stage(&control::ControlStage)?;
    let leaves = ctx.run_stage(&leaves::LeafStage)?;
    let macros = ctx.run_stage(&macrocells::MacroStage {
        control: Arc::clone(&control),
        leaves,
    })?;
    let floorplan = ctx.run_stage(&floorplan::FloorplanStage {
        macros: Arc::clone(&macros),
    })?;
    let signoff = ctx.run_stage(&signoff::SignoffStage {
        macros: Arc::clone(&macros),
        floorplan: Arc::clone(&floorplan),
        pla: control.pla.clone(),
    })?;
    Ok(PipelineOutput {
        control,
        macros,
        floorplan,
        signoff,
        trace: ctx.finish(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RamParams;

    fn small() -> RamParams {
        RamParams::builder()
            .words(256)
            .bits_per_word(8)
            .bits_per_column(4)
            .spare_rows(4)
            .build()
            .unwrap()
    }

    #[test]
    fn pipeline_runs_all_five_stages_in_order() {
        let out = run_pipeline(&small(), &CompileOptions::cold()).unwrap();
        let names: Vec<&str> = out.trace.stages.iter().map(|s| s.stage).collect();
        assert_eq!(
            names,
            ["control", "leaves", "macrocells", "floorplan", "signoff"]
        );
        assert!(out.trace.total_wall().as_nanos() > 0);
        assert_eq!(out.macros.cells.len(), 12);
        assert_eq!(out.floorplan.placement.placed().len(), 12);
        assert!(out.signoff.datasheet.access_time_s > 0.0);
        assert!(out.control.program.state_count() > 0);
    }

    #[test]
    fn second_compile_on_the_same_cache_hits_every_stage() {
        let opts = CompileOptions::cold();
        let cold = run_pipeline(&small(), &opts).unwrap();
        assert!(cold.trace.stages.iter().all(|s| !s.cached));
        let warm = run_pipeline(&small(), &opts).unwrap();
        assert!(
            warm.trace.stages.iter().all(|s| s.cached),
            "{}",
            warm.trace
        );
        assert_eq!(warm.trace.cache_misses(), 0);
        assert!(warm.trace.cache_hits() >= 5);
    }

    #[test]
    fn fresh_cache_contexts_do_not_interfere() {
        let a = run_pipeline(&small(), &CompileOptions::cold()).unwrap();
        let b = run_pipeline(&small(), &CompileOptions::cold()).unwrap();
        // Different caches, so no sharing — but identical artifacts.
        assert!(!Arc::ptr_eq(&a.macros, &b.macros));
        assert_eq!(
            format!("{}", a.macros.report),
            format!("{}", b.macros.report)
        );
    }

    #[test]
    fn jobs_resolution_prefers_options() {
        let params = small();
        let ctx = PipelineCtx::new(&params, &CompileOptions::cold().with_jobs(3));
        assert_eq!(ctx.jobs(), 3);
    }

    #[test]
    fn default_options_share_the_global_cache() {
        let a = CompileOptions::default();
        let b = CompileOptions::new();
        assert!(Arc::ptr_eq(a.cache(), b.cache()));
        assert!(!Arc::ptr_eq(a.cache(), CompileOptions::cold().cache()));
    }
}
