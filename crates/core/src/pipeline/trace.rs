//! Per-stage pipeline instrumentation.
//!
//! Every compile records a [`PipelineTrace`]: one [`StageTrace`] per
//! stage with wall time, the cache traffic the stage generated, whether
//! the stage artifact itself came out of the cache, and a short
//! artifact summary. `CompiledRam::trace` exposes it and
//! `bisramgen --timings` prints it; the `pipeline_throughput` bench
//! uses it to prove warm sweeps actually hit the cache.

use super::key::ContentKey;
use std::time::Duration;

/// Instrumentation for one pipeline stage of one compile.
#[derive(Debug, Clone)]
pub struct StageTrace {
    /// Stage name (`control`, `leaves`, `macrocells`, `floorplan`,
    /// `signoff`).
    pub stage: &'static str,
    /// The stage artifact's content key.
    pub key: ContentKey,
    /// Wall-clock time spent in the stage (lookup + build).
    pub wall: Duration,
    /// Whether the stage artifact was served from the cache.
    pub cached: bool,
    /// Cache hits generated while the stage ran (stage-level plus any
    /// inner per-cell traffic).
    pub cache_hits: u64,
    /// Cache misses generated while the stage ran.
    pub cache_misses: u64,
    /// One-line artifact description (sizes, counts).
    pub artifact: String,
}

/// The full per-compile record.
#[derive(Debug, Clone, Default)]
pub struct PipelineTrace {
    /// Stage records in execution order.
    pub stages: Vec<StageTrace>,
    /// Worker threads the macrocell stage was allowed to use.
    pub jobs: usize,
}

impl PipelineTrace {
    /// Total wall time across stages.
    pub fn total_wall(&self) -> Duration {
        self.stages.iter().map(|s| s.wall).sum()
    }

    /// Total cache hits across stages.
    pub fn cache_hits(&self) -> u64 {
        self.stages.iter().map(|s| s.cache_hits).sum()
    }

    /// Total cache misses across stages.
    pub fn cache_misses(&self) -> u64 {
        self.stages.iter().map(|s| s.cache_misses).sum()
    }

    /// Looks a stage record up by name.
    pub fn stage(&self, name: &str) -> Option<&StageTrace> {
        self.stages.iter().find(|s| s.stage == name)
    }
}

impl std::fmt::Display for PipelineTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<12} {:>10} {:>6} {:>6} {:>6}  {:<18} artifact",
            "stage", "wall", "cached", "hits", "miss", "key"
        )?;
        for s in &self.stages {
            writeln!(
                f,
                "{:<12} {:>10} {:>6} {:>6} {:>6}  {:<18} {}",
                s.stage,
                format!("{:.1?}", s.wall),
                if s.cached { "yes" } else { "no" },
                s.cache_hits,
                s.cache_misses,
                s.key.to_string(),
                s.artifact,
            )?;
        }
        writeln!(
            f,
            "{:<12} {:>10} {:>6} {:>6} {:>6}  (jobs: {})",
            "TOTAL",
            format!("{:.1?}", self.total_wall()),
            "",
            self.cache_hits(),
            self.cache_misses(),
            self.jobs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> PipelineTrace {
        PipelineTrace {
            stages: vec![
                StageTrace {
                    stage: "control",
                    key: ContentKey(0xDEAD),
                    wall: Duration::from_millis(2),
                    cached: false,
                    cache_hits: 0,
                    cache_misses: 1,
                    artifact: "34 states".into(),
                },
                StageTrace {
                    stage: "macrocells",
                    key: ContentKey(0xBEEF),
                    wall: Duration::from_millis(5),
                    cached: true,
                    cache_hits: 3,
                    cache_misses: 2,
                    artifact: "12 macros".into(),
                },
            ],
            jobs: 4,
        }
    }

    #[test]
    fn totals_sum_over_stages() {
        let t = trace();
        assert_eq!(t.total_wall(), Duration::from_millis(7));
        assert_eq!(t.cache_hits(), 3);
        assert_eq!(t.cache_misses(), 3);
        assert_eq!(t.stage("control").unwrap().artifact, "34 states");
        assert!(t.stage("missing").is_none());
    }

    #[test]
    fn display_renders_every_stage_and_the_total() {
        let s = trace().to_string();
        assert!(s.contains("control"));
        assert!(s.contains("macrocells"));
        assert!(s.contains("TOTAL"));
        assert!(s.contains("jobs: 4"));
        assert!(s.contains("000000000000beef"));
    }
}
