//! Stage 3 — the macrocell set: leaf cells tiled into the twelve
//! macrocells of the module, plus the area report behind Table I.
//!
//! The macrocells are mutually independent (each tiles its own leaves),
//! so this stage generates them **in parallel** on the scoped-thread
//! executor, up to the context's job count. Each macrocell is also
//! individually content-keyed (kind `macro`), so a sweep point that
//! changes only the word width regenerates the word-pitched macros and
//! reuses the row-pitched ones.

use super::control::ControlPlan;
use super::exec;
use super::key::{content_key, ContentKey};
use super::leaves::LeafSet;
use super::{PipelineCtx, Stage};
use crate::compiler::CompileError;
use bisram_bist::trpla::{Pla, Tri};
use bisram_geom::{Point, PortDirection, Side, Transform};
use bisram_layout::area::AreaReport;
use bisram_layout::{tile, Cell};
use std::sync::Arc;

/// A deferred macrocell build handed to the parallel executor.
type Task<'t> = Box<dyn FnOnce() -> Result<Arc<Cell>, CompileError> + Send + 't>;

/// The macrocell names, in the compiler's canonical order (the area
/// report and the placer consume them in this order, which keeps every
/// downstream artifact byte-stable).
pub const MACRO_NAMES: [&str; 12] = [
    "ram_array",
    "row_decoders",
    "wl_drivers",
    "precharge",
    "column_mux",
    "sense_amps",
    "write_drivers",
    "bist_addgen",
    "bist_datagen",
    "bist_trpla",
    "bist_streg",
    "bisr_tlb",
];

/// The tiled macrocells of one compile plus their area accounting.
#[derive(Debug, Clone)]
pub struct MacroSet {
    /// `(name, cell)` in [`MACRO_NAMES`] order.
    pub cells: Vec<(&'static str, Arc<Cell>)>,
    /// The itemized area report (array rows split into regular/spare).
    pub report: AreaReport,
}

impl MacroSet {
    /// Looks a macrocell up by name.
    pub fn cell(&self, name: &str) -> Option<&Arc<Cell>> {
        self.cells.iter().find(|(n, _)| *n == name).map(|(_, c)| c)
    }
}

/// Builds the [`MacroSet`] from the control plan and leaf set.
#[derive(Debug, Clone)]
pub struct MacroStage {
    /// Stage-1 artifact (the TRPLA personality sizes `bist_trpla` and
    /// `bist_streg`).
    pub control: Arc<ControlPlan>,
    /// Stage-2 artifact.
    pub leaves: Arc<LeafSet>,
}

impl Stage for MacroStage {
    type Artifact = MacroSet;

    const NAME: &'static str = "macrocells";

    fn key(&self, ctx: &PipelineCtx<'_>) -> ContentKey {
        // Reads the full geometry, the process (via the leaf set), and
        // the PLA personality.
        content_key(&(ctx.params_fingerprint(), &self.control.pla))
    }

    fn run(&self, ctx: &PipelineCtx<'_>) -> Result<MacroSet, CompileError> {
        let params = ctx.params;
        let org = *params.org();
        let lambda = params.process().rules().lambda();
        let fp = ctx.process_fingerprint();
        let leaves = &self.leaves;
        let pla = &self.control.pla;
        let flip_flops = self.control.program.flip_flops() as usize;
        let addr_bits = (org.row_bits() + org.col_bits()).max(1) as usize;

        // One closure per macrocell; each consults the cache under its
        // own key (the subset of inputs that macro reads) and builds on
        // a miss. The executor preserves list order, so the result is
        // schedule-independent.
        fn cached<'t>(
            ctx: &'t PipelineCtx<'_>,
            key: ContentKey,
            build: Box<dyn FnOnce() -> Cell + Send + 't>,
        ) -> Task<'t> {
            Box::new(move || ctx.cache().get_or_build("macro", key, || Ok(build())))
        }
        let cached = |key, build| cached(ctx, key, build);
        let tasks: Vec<Task<'_>> = vec![
            cached(
                content_key(&("ram_array", fp, org.columns(), org.total_rows(), params.strap_every(), params.strap_lambda())),
                Box::new(move || {
                    let array_row = Arc::new(tile::tile_with_straps(
                        "array_row",
                        Arc::clone(&leaves.sram),
                        1,
                        org.columns(),
                        params.strap_every(),
                        params.strap_lambda() * lambda,
                    ));
                    let mut array = tile::tile_column("ram_array", array_row, org.total_rows());
                    // Representative boundary ports so the placer's
                    // alignment heuristic has something to align (word
                    // line of row 0, bitline of column 0).
                    array.add_port(tile::wordline_boundary_port(
                        lambda,
                        array.bbox().width(),
                        Side::West,
                        PortDirection::Input,
                    ));
                    array.add_port(tile::bitline_boundary_port(lambda));
                    array
                }),
            ),
            cached(
                content_key(&("row_decoders", fp, org.row_bits(), org.total_rows())),
                Box::new(move || {
                    let mut rowdec = tile::tile_column(
                        "row_decoders",
                        Arc::clone(&leaves.rowdec),
                        org.total_rows(),
                    );
                    rowdec.add_port(tile::wordline_boundary_port(
                        lambda,
                        rowdec.bbox().width(),
                        Side::East,
                        PortDirection::Output,
                    ));
                    rowdec
                }),
            ),
            cached(
                content_key(&("wl_drivers", fp, params.gate_size(), org.total_rows())),
                Box::new(move || {
                    tile::tile_column("wl_drivers", Arc::clone(&leaves.wldrv), org.total_rows())
                }),
            ),
            cached(
                content_key(&("precharge", fp, params.gate_size(), org.columns())),
                Box::new(move || {
                    let mut prech =
                        tile::tile_row("precharge", Arc::clone(&leaves.prech), org.columns());
                    prech.add_port(tile::bitline_boundary_port(lambda));
                    prech
                }),
            ),
            cached(
                content_key(&("column_mux", fp, org.columns())),
                Box::new(move || {
                    tile::tile_row("column_mux", Arc::clone(&leaves.colmux), org.columns())
                }),
            ),
            cached(
                content_key(&("sense_amps", fp, org.bpw())),
                Box::new(move || tile::tile_row("sense_amps", Arc::clone(&leaves.samp), org.bpw())),
            ),
            cached(
                content_key(&("write_drivers", fp, org.bpw())),
                Box::new(move || {
                    tile::tile_row("write_drivers", Arc::clone(&leaves.wrdrv), org.bpw())
                }),
            ),
            cached(
                content_key(&("bist_addgen", fp, addr_bits)),
                Box::new(move || {
                    tile::tile_row("bist_addgen", Arc::clone(&leaves.counter), addr_bits)
                }),
            ),
            cached(
                content_key(&("bist_datagen", fp, org.bpw())),
                Box::new(move || {
                    // DATAGEN: Johnson stages + XOR read comparators.
                    let stages = org.bpw() / 2 + 1;
                    let johnson = Arc::new(tile::tile_row(
                        "johnson",
                        Arc::clone(&leaves.dff),
                        stages.max(1),
                    ));
                    let xors = Arc::new(tile::tile_row(
                        "comparators",
                        Arc::clone(&leaves.xor2),
                        org.bpw(),
                    ));
                    let mut c = Cell::new("bist_datagen");
                    let jh = johnson.bbox().height();
                    c.add_instance("johnson", johnson, Transform::IDENTITY);
                    c.add_instance("xors", xors, Transform::translate(Point::new(0, jh)));
                    c
                }),
            ),
            cached(
                content_key(&("bist_trpla", fp, pla)),
                Box::new(move || build_pla_layout(leaves, pla)),
            ),
            cached(
                content_key(&("bist_streg", fp, flip_flops)),
                Box::new(move || tile::tile_row("bist_streg", Arc::clone(&leaves.dff), flip_flops)),
            ),
            cached(
                content_key(&("bisr_tlb", fp, org.spare_rows(), org.row_bits())),
                Box::new(move || build_tlb_layout(leaves, org.spare_rows(), org.row_bits(), lambda)),
            ),
        ];
        let cells: Vec<Arc<Cell>> = exec::run_tasks(ctx.jobs(), tasks)
            .into_iter()
            .collect::<Result<_, _>>()?;

        // Area accounting (placement independent, so it belongs to this
        // stage). The array is split into regular and spare rows.
        let mut report = AreaReport::new();
        let array_area = cells[0].area();
        let per_row = array_area / org.total_rows() as i128;
        report.add("array_regular_rows", per_row * org.rows() as i128);
        report.add("array_spare_rows", per_row * org.spare_rows() as i128);
        for (name, cell) in MACRO_NAMES.iter().zip(&cells).skip(1) {
            report.add(name, cell.area());
        }

        Ok(MacroSet {
            cells: MACRO_NAMES.iter().copied().zip(cells).collect(),
            report,
        })
    }

    fn describe(artifact: &MacroSet) -> String {
        format!(
            "{} macros, {} nm2 accounted",
            artifact.cells.len(),
            artifact.report.total()
        )
    }
}

/// Builds the TRPLA layout from the PLA personality: one crosspoint cell
/// per (term, column), programmed where the personality demands, plus a
/// pull-up per term line.
fn build_pla_layout(leaves: &LeafSet, pla: &Pla) -> Cell {
    let on = &leaves.pla_on;
    let off = &leaves.pla_off;
    let pitch = on.bbox().width();
    let vpitch = on.bbox().height();
    let mut c = Cell::new("bist_trpla");
    for (t, (term, outs)) in pla.and_plane.iter().zip(pla.or_plane.iter()).enumerate() {
        let y = t as i64 * vpitch;
        for (i, tri) in term.iter().enumerate() {
            let master = if *tri == Tri::DontCare { off } else { on };
            c.add_instance(
                format!("and_{t}_{i}"),
                Arc::clone(master),
                Transform::translate(Point::new(i as i64 * pitch, y)),
            );
        }
        let or_x0 = term.len() as i64 * pitch;
        for (o, drive) in outs.iter().enumerate() {
            let master = if *drive { on } else { off };
            c.add_instance(
                format!("or_{t}_{o}"),
                Arc::clone(master),
                Transform::translate(Point::new(or_x0 + o as i64 * pitch, y)),
            );
        }
        c.add_instance(
            format!("pu_{t}"),
            Arc::clone(&leaves.pullup),
            Transform::translate(Point::new(or_x0 + outs.len() as i64 * pitch, y)),
        );
    }
    c
}

/// Builds the TLB: a CAM of `spares × row_bits` plus per-entry
/// match-line pull-ups at the CAM row pitch (the CAM bit's match line
/// sits at 28λ, the pull-up's at 3λ).
fn build_tlb_layout(leaves: &LeafSet, spare_rows: usize, row_bits: u32, lambda: i64) -> Cell {
    let cam_h = leaves.cam_bit.bbox().height();
    let cam = Arc::new(tile::tile_grid(
        "cam",
        Arc::clone(&leaves.cam_bit),
        spare_rows.max(1),
        row_bits.max(1) as usize,
    ));
    let mut c = Cell::new("bisr_tlb");
    let cw = cam.bbox().width();
    c.add_instance("cam", cam, Transform::IDENTITY);
    for entry in 0..spare_rows.max(1) {
        c.add_instance(
            format!("pullup_{entry}"),
            Arc::clone(&leaves.pullup),
            Transform::translate(Point::new(cw, entry as i64 * cam_h + 25 * lambda)),
        );
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::control::ControlStage;
    use crate::pipeline::leaves::LeafStage;
    use crate::pipeline::CompileOptions;
    use crate::RamParams;

    fn stage_for(params: &RamParams, opts: &CompileOptions) -> (MacroSet, MacroSet) {
        let ctx = PipelineCtx::new(params, opts);
        let control = ctx.run_stage(&ControlStage).unwrap();
        let leaves = ctx.run_stage(&LeafStage).unwrap();
        let stage = MacroStage { control, leaves };
        let serial_ctx = PipelineCtx::new(params, &CompileOptions::cold().with_jobs(1));
        let control_s = serial_ctx.run_stage(&ControlStage).unwrap();
        let leaves_s = serial_ctx.run_stage(&LeafStage).unwrap();
        let serial = MacroStage {
            control: control_s,
            leaves: leaves_s,
        };
        (stage.run(&ctx).unwrap(), serial.run(&serial_ctx).unwrap())
    }

    #[test]
    fn parallel_and_serial_macro_sets_are_identical() {
        let params = RamParams::builder()
            .words(512)
            .bits_per_word(16)
            .bits_per_column(4)
            .build()
            .unwrap();
        let (par, ser) = stage_for(&params, &CompileOptions::cold().with_jobs(8));
        assert_eq!(par.cells.len(), 12);
        for ((n1, c1), (n2, c2)) in par.cells.iter().zip(&ser.cells) {
            assert_eq!(n1, n2);
            assert_eq!(c1.bbox(), c2.bbox(), "{n1}");
            assert_eq!(c1.flatten(), c2.flatten(), "{n1}");
        }
        assert_eq!(format!("{}", par.report), format!("{}", ser.report));
    }

    #[test]
    fn macro_lookup_by_name() {
        let params = RamParams::builder().words(256).build().unwrap();
        let (set, _) = stage_for(&params, &CompileOptions::cold());
        assert!(set.cell("ram_array").is_some());
        assert!(set.cell("bisr_tlb").is_some());
        assert!(set.cell("nonexistent").is_none());
    }

    #[test]
    fn word_width_change_reuses_row_pitched_macros() {
        let opts = CompileOptions::cold();
        let a = RamParams::builder().words(1024).bits_per_word(8).bits_per_column(4).build().unwrap();
        // Same rows/columns? No: bpw changes columns (columns = bpw*bpc).
        // Row decoder column + wl driver column depend only on
        // total_rows, which is words/bpc here — keep words and bpc.
        let b = RamParams::builder().words(1024).bits_per_word(16).bits_per_column(4).build().unwrap();
        let ctx_a = PipelineCtx::new(&a, &opts);
        let control = ctx_a.run_stage(&ControlStage).unwrap();
        let leaves = ctx_a.run_stage(&LeafStage).unwrap();
        let set_a = MacroStage { control, leaves }.run(&ctx_a).unwrap();
        let ctx_b = PipelineCtx::new(&b, &opts);
        let control = ctx_b.run_stage(&ControlStage).unwrap();
        let leaves = ctx_b.run_stage(&LeafStage).unwrap();
        let set_b = MacroStage { control, leaves }.run(&ctx_b).unwrap();
        // Shared: row-pitched and PLA macros. Distinct: word-pitched.
        for name in ["row_decoders", "wl_drivers", "bist_trpla", "bist_streg", "bisr_tlb"] {
            assert!(
                Arc::ptr_eq(set_a.cell(name).unwrap(), set_b.cell(name).unwrap()),
                "{name} should be cache-shared"
            );
        }
        for name in ["ram_array", "sense_amps", "write_drivers", "bist_datagen"] {
            assert!(
                !Arc::ptr_eq(set_a.cell(name).unwrap(), set_b.cell(name).unwrap()),
                "{name} should differ"
            );
        }
    }
}
