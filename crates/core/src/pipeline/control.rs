//! Stage 1 — the control plan: march test → TRPLA program → PLA
//! personality, round-tripped through the paper's two-file interchange.

use super::key::content_key;
use super::{PipelineCtx, Stage};
use crate::compiler::CompileError;
use bisram_bist::march;
use bisram_bist::trpla::{self, ControlProgram, Pla};

/// The BIST control plan: the microprogrammed IFA-9 controller and the
/// PLA personality it synthesizes to. The personality is exported to
/// the two-file format and parsed back, exactly as the original tool
/// loads its control code at run time — so a malformed interchange is a
/// typed [`CompileError::Pla`], not a panic.
#[derive(Debug, Clone)]
pub struct ControlPlan {
    /// The assembled two-pass test-and-repair microprogram.
    pub program: ControlProgram,
    /// The personality, as reloaded from the interchange files.
    pub pla: Pla,
}

/// Builds the [`ControlPlan`]. Reads nothing from `RamParams` — the
/// controller is geometry-independent (its word-width adaptation lives
/// in the data generator) — so every compile in a process shares one
/// cached plan.
#[derive(Debug, Clone, Copy, Default)]
pub struct ControlStage;

impl Stage for ControlStage {
    type Artifact = ControlPlan;

    const NAME: &'static str = "control";

    fn key(&self, _ctx: &PipelineCtx<'_>) -> super::key::ContentKey {
        // The one input is the built-in march algorithm.
        content_key(&"march:IFA-9")
    }

    fn run(&self, _ctx: &PipelineCtx<'_>) -> Result<ControlPlan, CompileError> {
        let program = trpla::assemble(&march::ifa9());
        let synthesized = program.synthesize_pla();
        let (and_s, or_s) = synthesized.export_planes();
        let pla = Pla::import_planes(&and_s, &or_s).map_err(CompileError::Pla)?;
        Ok(ControlPlan { program, pla })
    }

    fn describe(artifact: &ControlPlan) -> String {
        format!(
            "{} states / {} FFs / {} PLA terms",
            artifact.program.state_count(),
            artifact.program.flip_flops(),
            artifact.pla.terms()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::CompileOptions;
    use crate::RamParams;

    #[test]
    fn control_plan_round_trips_and_is_parameter_independent() {
        let opts = CompileOptions::cold();
        let small = RamParams::builder().words(256).build().unwrap();
        let large = RamParams::builder().words(16384).bits_per_word(64).bits_per_column(8).build().unwrap();
        let ctx_a = PipelineCtx::new(&small, &opts);
        let ctx_b = PipelineCtx::new(&large, &opts);
        assert_eq!(ControlStage.key(&ctx_a), ControlStage.key(&ctx_b));
        let plan = ControlStage.run(&ctx_a).unwrap();
        let (and_s, or_s) = plan.pla.export_planes();
        assert_eq!(Pla::import_planes(&and_s, &or_s).unwrap(), plan.pla);
        assert!(ControlStage::describe(&plan).contains("states"));
    }
}
