//! The compile entry points and the assembled [`CompiledRam`].
//!
//! The actual generation lives in the staged pipeline
//! ([`crate::pipeline`]): control plan → leaf set → macrocells →
//! floorplan → signoff, each stage content-keyed and cached. This
//! module owns the public error type, the `compile`/`compile_with`
//! entry points, and the `CompiledRam` facade over the stage artifacts.

use crate::datasheet::Datasheet;
use crate::params::{ParamError, RamParams};
use crate::pipeline::{
    self, CompileOptions, ControlPlan, Floorplan, MacroSet, PipelineTrace, Signoff,
};
use bisram_bist::trpla::{ControlProgram, Pla, PlaneParseError};
use bisram_layout::area::AreaReport;
use bisram_layout::placer::Placement;
use bisram_layout::route::Route;
use bisram_layout::{export, Cell};
use bisram_mem::SramModel;
use std::fmt::Write as _;
use std::sync::Arc;

/// Errors from the compiler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Parameter validation failed (when compiling from raw inputs).
    Params(ParamError),
    /// The control-code interchange (the two PLA personality planes)
    /// failed to parse back.
    Pla(PlaneParseError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Params(e) => write!(f, "invalid parameters: {e}"),
            CompileError::Pla(e) => write!(f, "control code interchange: {e}"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Params(e) => Some(e),
            CompileError::Pla(e) => Some(e),
        }
    }
}

impl From<ParamError> for CompileError {
    fn from(e: ParamError) -> Self {
        CompileError::Params(e)
    }
}

impl From<PlaneParseError> for CompileError {
    fn from(e: PlaneParseError) -> Self {
        CompileError::Pla(e)
    }
}

/// A fully compiled BISR RAM module: a facade over the `Arc`-shared
/// pipeline artifacts, so cloning a compiled module (or holding many
/// from one sweep) shares the heavy layout data.
#[derive(Debug, Clone)]
pub struct CompiledRam {
    params: RamParams,
    control: Arc<ControlPlan>,
    macros: Arc<MacroSet>,
    floorplan: Arc<Floorplan>,
    signoff: Arc<Signoff>,
    areas: Areas,
    trace: PipelineTrace,
}

/// Area accounting of a compiled RAM.
#[derive(Debug, Clone)]
pub struct Areas {
    report: AreaReport,
}

impl Areas {
    /// The itemized report.
    pub fn report(&self) -> &AreaReport {
        &self.report
    }

    /// The Table I quantity: BIST + BISR circuitry area over everything
    /// else (spare rows are *not* counted as overhead — paper §IX:
    /// "redundancy is used in a vast majority of large RAMs even if
    /// there is no self-repair").
    pub fn overhead_fraction(&self) -> f64 {
        self.report
            .overhead(|n| n.starts_with("bist_") || n.starts_with("bisr_"))
    }

    /// The stricter variant counting the spare rows as overhead too.
    pub fn overhead_fraction_with_spares(&self) -> f64 {
        self.report.overhead(|n| {
            n.starts_with("bist_") || n.starts_with("bisr_") || n == "array_spare_rows"
        })
    }

    /// Controller (TRPLA) area as a fraction of the storage array area
    /// (paper §VI: "less than 0.1% for a 16-kbyte RAM").
    pub fn controller_fraction_of_array(&self) -> f64 {
        let array = self.report.area_of("array_regular_rows")
            + self.report.area_of("array_spare_rows");
        if array == 0 {
            0.0
        } else {
            self.report.area_of("bist_trpla") as f64 / array as f64
        }
    }
}

/// Compiles a validated parameter set into a full BISR RAM module,
/// using the process-wide shared artifact cache and automatic
/// parallelism (see [`compile_with`] for explicit control).
///
/// # Errors
///
/// [`CompileError::Pla`] if the self-generated control-code interchange
/// fails to parse back (indicates a bug, but no longer a panic);
/// parameter validation happens in [`RamParams`] construction.
pub fn compile(params: &RamParams) -> Result<CompiledRam, CompileError> {
    compile_with(params, &CompileOptions::default())
}

/// Compiles with explicit pipeline options: a chosen artifact cache
/// (shared, cold, or custom — see [`CompileOptions`]) and a fixed
/// macrocell worker count.
///
/// # Errors
///
/// See [`compile`].
pub fn compile_with(
    params: &RamParams,
    options: &CompileOptions,
) -> Result<CompiledRam, CompileError> {
    let out = pipeline::run_pipeline(params, options)?;
    Ok(CompiledRam {
        params: params.clone(),
        areas: Areas {
            report: out.macros.report.clone(),
        },
        control: out.control,
        macros: out.macros,
        floorplan: out.floorplan,
        signoff: out.signoff,
        trace: out.trace,
    })
}

impl CompiledRam {
    /// The parameters this module was compiled from.
    pub fn params(&self) -> &RamParams {
        &self.params
    }

    /// The assembled chip cell (macrocell instances + route shapes).
    pub fn chip(&self) -> &Cell {
        &self.floorplan.chip
    }

    /// The macrocell placement.
    pub fn placement(&self) -> &Placement {
        &self.floorplan.placement
    }

    /// The over-the-cell metal-3 routes.
    pub fn routes(&self) -> &[Route] {
        &self.floorplan.routes
    }

    /// The tiled macrocells (stage-3 artifact).
    pub fn macrocells(&self) -> &MacroSet {
        &self.macros
    }

    /// Area accounting.
    pub fn areas(&self) -> &Areas {
        &self.areas
    }

    /// The extrapolated datasheet.
    pub fn datasheet(&self) -> &Datasheet {
        &self.signoff.datasheet
    }

    /// The physical verification report (DRC + extraction + LVS over
    /// every macrocell), present when the compile ran with
    /// [`CompileOptions::with_verify`].
    pub fn verify_report(&self) -> Option<&bisram_verify::VerifyReport> {
        self.signoff.verify.as_deref()
    }

    /// The TRPLA control program (two-pass IFA-9 test and repair).
    pub fn control_program(&self) -> &ControlProgram {
        &self.control.program
    }

    /// The PLA personality.
    pub fn pla(&self) -> &Pla {
        &self.control.pla
    }

    /// The per-stage pipeline instrumentation of this compile: wall
    /// times, cache hits/misses, artifact summaries (printed by
    /// `bisramgen --timings`).
    pub fn trace(&self) -> &PipelineTrace {
        &self.trace
    }

    /// The control code in the paper's two-file format
    /// `(and_plane, or_plane)`.
    pub fn pla_planes(&self) -> (String, String) {
        self.control.pla.export_planes()
    }

    /// A fresh behavioural model of this memory (fault-free; inject
    /// faults and run the BIST/BISR flows from `bisram-bist` /
    /// `bisram-repair` against it).
    pub fn behavioural_model(&self) -> SramModel {
        SramModel::new(*self.params.org())
    }

    /// Total module area in mm².
    pub fn area_mm2(&self) -> f64 {
        self.floorplan.placement.bbox().area() as f64 * 1e-12
    }

    /// An SVG floorplan plot — the stand-in for the paper's Fig. 6/7
    /// layout photographs (macro outlines with labels; full-detail
    /// geometry export is [`CompiledRam::to_cif`]).
    pub fn floorplan_svg(&self) -> String {
        let bbox = self.floorplan.placement.bbox();
        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" viewBox="{} {} {} {}">"#,
            bbox.left(),
            -bbox.top(),
            bbox.width().max(1),
            bbox.height().max(1)
        );
        let palette = [
            "#b0c4de", "#ffd9a0", "#c1e1c1", "#f4b6c2", "#d7bde2", "#aed6f1", "#f9e79f",
            "#a3e4d7", "#f5cba7", "#d5dbdb", "#fadbd8", "#d4efdf",
        ];
        for (i, m) in self.floorplan.placement.placed().iter().enumerate() {
            let b = m.bbox();
            let _ = writeln!(
                out,
                r##"<rect x="{}" y="{}" width="{}" height="{}" fill="{}" stroke="#333" stroke-width="{}"/>"##,
                b.left(),
                -b.top(),
                b.width(),
                b.height(),
                palette[i % palette.len()],
                bbox.width() / 400 + 1,
            );
            let c = b.center();
            let _ = writeln!(
                out,
                r#"<text x="{}" y="{}" font-size="{}" text-anchor="middle">{}</text>"#,
                c.x,
                -c.y,
                (b.height() / 8).clamp(bbox.width() / 120 + 1, bbox.width() / 30 + 2),
                m.name
            );
        }
        for r in &self.floorplan.routes {
            for (_, rect) in &r.shapes {
                let _ = writeln!(
                    out,
                    r##"<rect x="{}" y="{}" width="{}" height="{}" fill="#20b2aa"/>"##,
                    rect.left(),
                    -rect.top(),
                    rect.width().max(1),
                    rect.height().max(1)
                );
            }
        }
        let _ = writeln!(out, "</svg>");
        out
    }

    /// Full-detail CIF of the chip. **Flattens the entire hierarchy** —
    /// intended for small modules and leaf-cell inspection; a 4 Mb array
    /// produces a very large file.
    pub fn to_cif(&self) -> String {
        export::to_cif(&self.floorplan.chip)
    }

    /// A SPICE deck of the sense path (bit cell driving the bitline into
    /// the current-mode sense amplifier) — the per-leaf "simulation
    /// model" output of the tool.
    pub fn sense_path_spice(&self) -> String {
        use bisram_circuit::{MosType, Netlist};
        let dev = self.params.process().devices();
        let l = self.params.process().gate_length_m();
        let lambda_m = self.params.process().rules().lambda() as f64 * 1e-9;
        let mut nl = Netlist::new("sense_path");
        let vdd = nl.node("vdd!");
        let gnd = Netlist::ground();
        nl.vdc(vdd, gnd, dev.vdd);
        // Selected cell pulls one bitline down through the access device.
        let wl = nl.node("wl");
        let bl = nl.node("bl");
        let blb = nl.node("blb");
        nl.vpwl(wl, gnd, vec![(0.0, 0.0), (1e-9, 0.0), (1.05e-9, dev.vdd)]);
        nl.mos(MosType::Nmos, bl, wl, gnd, 4.0 * lambda_m, l);
        // Bitline capacitances.
        let rows = self.params.org().total_rows() as f64;
        let c_bl = rows * dev.c_drain(4.0 * lambda_m, 3.0 * lambda_m);
        nl.capacitor(bl, gnd, c_bl);
        nl.capacitor(blb, gnd, c_bl);
        // Cross-coupled current-mode sense pair (Fig. 3).
        nl.mos(MosType::Pmos, bl, blb, vdd, 8.0 * lambda_m, l);
        nl.mos(MosType::Pmos, blb, bl, vdd, 8.0 * lambda_m, l);
        nl.to_spice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RamParams;

    fn small() -> CompiledRam {
        let p = RamParams::builder()
            .words(256)
            .bits_per_word(8)
            .bits_per_column(4)
            .spare_rows(4)
            .build()
            .unwrap();
        compile(&p).unwrap()
    }

    #[test]
    fn compile_produces_all_macrocells() {
        let ram = small();
        for name in [
            "ram_array",
            "row_decoders",
            "wl_drivers",
            "precharge",
            "column_mux",
            "sense_amps",
            "write_drivers",
            "bist_addgen",
            "bist_datagen",
            "bist_trpla",
            "bist_streg",
            "bisr_tlb",
        ] {
            assert!(
                ram.placement().find(name).is_some(),
                "missing macrocell {name}"
            );
            assert!(ram.areas().report().area_of(name) > 0 || name == "ram_array");
            assert!(ram.macrocells().cell(name).is_some());
        }
        assert!(ram.area_mm2() > 0.0);
    }

    #[test]
    fn macrocells_do_not_overlap() {
        let ram = small();
        let placed = ram.placement().placed();
        for i in 0..placed.len() {
            for j in (i + 1)..placed.len() {
                assert!(
                    !placed[i].bbox().overlaps(placed[j].bbox()),
                    "{} overlaps {}",
                    placed[i].name,
                    placed[j].name
                );
            }
        }
    }

    #[test]
    fn overhead_is_below_seven_percent_for_realistic_sizes() {
        // Paper abstract: "low area overheads for BIST and BISR, of at
        // most 7% for realistic array sizes" (64 Kb to 4 Mb).
        for (words, bpw, bpc) in [(2048, 32, 4), (8192, 32, 8), (16384, 64, 8)] {
            let p = RamParams::builder()
                .words(words)
                .bits_per_word(bpw)
                .bits_per_column(bpc)
                .build()
                .unwrap();
            let ram = compile(&p).unwrap();
            let o = ram.areas().overhead_fraction();
            assert!(
                o < 0.07,
                "{words}x{bpw}: overhead {:.2}% exceeds 7%",
                o * 100.0
            );
        }
    }

    #[test]
    fn overhead_shrinks_with_array_size() {
        let mk = |words| {
            let p = RamParams::builder()
                .words(words)
                .bits_per_word(32)
                .bits_per_column(8)
                .build()
                .unwrap();
            compile(&p).unwrap().areas().overhead_fraction()
        };
        let small = mk(2048);
        let large = mk(32768);
        assert!(large < small, "overhead: small={small:.4} large={large:.4}");
    }

    #[test]
    fn controller_is_tiny_fraction_of_sixteen_kb_array() {
        // Paper §VI: "the controller area is found to be a very tiny
        // fraction of the memory array area (less than 0.1%) for a
        // 16-kbyte RAM".
        let p = RamParams::builder()
            .words(16384)
            .bits_per_word(8)
            .bits_per_column(8)
            .build()
            .unwrap();
        let ram = compile(&p).unwrap();
        let frac = ram.areas().controller_fraction_of_array();
        assert!(frac < 0.001, "controller fraction {frac:.5}");
    }

    #[test]
    fn floorplan_svg_and_cif_render() {
        let ram = small();
        let svg = ram.floorplan_svg();
        assert!(svg.contains("ram_array") && svg.contains("bisr_tlb"));
        assert!(svg.trim_end().ends_with("</svg>"));
        let cif = ram.to_cif();
        assert!(cif.contains("L CMF;") && cif.trim_end().ends_with('E'));
    }

    #[test]
    fn pla_planes_roundtrip_through_files() {
        let ram = small();
        let (and_s, or_s) = ram.pla_planes();
        let back = Pla::import_planes(&and_s, &or_s).unwrap();
        assert_eq!(&back, ram.pla());
        assert_eq!(ram.control_program().flip_flops(), 6);
    }

    #[test]
    fn behavioural_model_matches_parameters() {
        let ram = small();
        let model = ram.behavioural_model();
        assert_eq!(model.org(), ram.params().org());
    }

    #[test]
    fn sense_path_spice_is_simulatable_text() {
        let ram = small();
        let deck = ram.sense_path_spice();
        assert!(deck.contains("M1") && deck.contains("PWL") && deck.contains(".END"));
    }

    #[test]
    fn compile_records_a_full_trace() {
        let ram = small();
        assert_eq!(ram.trace().stages.len(), 5);
        assert!(ram.trace().jobs >= 1);
        assert!(ram.trace().to_string().contains("macrocells"));
    }

    #[test]
    fn pla_errors_are_typed_not_panics() {
        let e = CompileError::from(PlaneParseError::Ragged { plane: "AND" });
        assert_eq!(e.to_string(), "control code interchange: ragged AND plane");
        assert!(std::error::Error::source(&e).is_some());
    }
}
