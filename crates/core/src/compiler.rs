//! The compile pipeline: leaf cells → macrocells → floorplan → outputs.

use crate::datasheet::Datasheet;
use crate::params::{ParamError, RamParams};
use bisram_bist::march;
use bisram_bist::trpla::{self, ControlProgram, Pla, Tri};
use bisram_geom::{Point, Port, PortDirection, Rect, Side, Transform};
use bisram_layout::area::AreaReport;
use bisram_layout::placer::{place_with_margin, Macro, Placement};
use bisram_layout::route::{self, Route};
use bisram_layout::{export, leaf, tile, Cell};
use bisram_mem::SramModel;
use bisram_tech::Layer;
use std::fmt::Write as _;
use std::sync::Arc;

/// Errors from the compiler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Parameter validation failed (when compiling from raw inputs).
    Params(ParamError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Params(e) => write!(f, "invalid parameters: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParamError> for CompileError {
    fn from(e: ParamError) -> Self {
        CompileError::Params(e)
    }
}

/// A fully compiled BISR RAM module.
#[derive(Debug, Clone)]
pub struct CompiledRam {
    params: RamParams,
    chip: Cell,
    placement: Placement,
    routes: Vec<Route>,
    areas: Areas,
    datasheet: Datasheet,
    program: ControlProgram,
    pla: Pla,
}

/// Area accounting of a compiled RAM.
#[derive(Debug, Clone)]
pub struct Areas {
    report: AreaReport,
}

impl Areas {
    /// The itemized report.
    pub fn report(&self) -> &AreaReport {
        &self.report
    }

    /// The Table I quantity: BIST + BISR circuitry area over everything
    /// else (spare rows are *not* counted as overhead — paper §IX:
    /// "redundancy is used in a vast majority of large RAMs even if
    /// there is no self-repair").
    pub fn overhead_fraction(&self) -> f64 {
        self.report
            .overhead(|n| n.starts_with("bist_") || n.starts_with("bisr_"))
    }

    /// The stricter variant counting the spare rows as overhead too.
    pub fn overhead_fraction_with_spares(&self) -> f64 {
        self.report.overhead(|n| {
            n.starts_with("bist_") || n.starts_with("bisr_") || n == "array_spare_rows"
        })
    }

    /// Controller (TRPLA) area as a fraction of the storage array area
    /// (paper §VI: "less than 0.1% for a 16-kbyte RAM").
    pub fn controller_fraction_of_array(&self) -> f64 {
        let array = self.report.area_of("array_regular_rows")
            + self.report.area_of("array_spare_rows");
        if array == 0 {
            0.0
        } else {
            self.report.area_of("bist_trpla") as f64 / array as f64
        }
    }
}

/// Compiles a validated parameter set into a full BISR RAM module.
///
/// # Errors
///
/// Currently infallible for validated [`RamParams`]; the `Result`
/// reserves room for resource-limit errors.
pub fn compile(params: &RamParams) -> Result<CompiledRam, CompileError> {
    let process = params.process();
    let org = *params.org();
    let lambda = process.rules().lambda();

    // --- Control program and PLA personality (read back through the
    // two-file interchange, exactly as the original tool loads its
    // control code at run time).
    let program = trpla::assemble(&march::ifa9());
    let pla = {
        let synthesized = program.synthesize_pla();
        let (and_s, or_s) = synthesized.export_planes();
        Pla::import_planes(&and_s, &or_s).expect("self-generated planes always parse")
    };

    // --- Macrocells.
    let sram = Arc::new(leaf::sram6t(process));
    let array_row = Arc::new(tile::tile_with_straps(
        "array_row",
        Arc::clone(&sram),
        1,
        org.columns(),
        params.strap_every(),
        params.strap_lambda() * lambda,
    ));
    let mut array = tile::tile_column("ram_array", Arc::clone(&array_row), org.total_rows());
    // Representative boundary ports so the placer's alignment heuristic
    // has something to align (word line of row 0, bitline of column 0).
    array.add_port(
        Port::new(
            "wl0",
            Layer::Poly.id(),
            Rect::new(0, 18 * lambda, 2 * lambda, 20 * lambda),
            Side::West,
        )
        .with_direction(PortDirection::Input),
    );
    array.add_port(
        Port::new(
            "bl0",
            Layer::Metal2.id(),
            Rect::new(2 * lambda, 0, 5 * lambda, 4 * lambda),
            Side::South,
        )
        .with_direction(PortDirection::Inout),
    );

    let rowdec_cell = Arc::new(leaf::row_decoder(process, org.row_bits().max(1)));
    let mut rowdec = tile::tile_column("row_decoders", rowdec_cell, org.total_rows());
    let rd_w = rowdec.bbox().width();
    rowdec.add_port(
        Port::new(
            "wl0",
            Layer::Poly.id(),
            Rect::new(rd_w - 2 * lambda, 18 * lambda, rd_w, 20 * lambda),
            Side::East,
        )
        .with_direction(PortDirection::Output),
    );

    let wldrv = tile::tile_column(
        "wl_drivers",
        Arc::new(leaf::wordline_driver(process, params.gate_size())),
        org.total_rows(),
    );
    let mut prech = tile::tile_row(
        "precharge",
        Arc::new(leaf::precharge(process, params.gate_size())),
        org.columns(),
    );
    prech.add_port(
        Port::new(
            "bl0",
            Layer::Metal2.id(),
            Rect::new(2 * lambda, 0, 5 * lambda, 4 * lambda),
            Side::South,
        )
        .with_direction(PortDirection::Inout),
    );
    let colmux = tile::tile_row("column_mux", Arc::new(leaf::col_mux(process)), org.columns());
    let samp = tile::tile_row("sense_amps", Arc::new(leaf::sense_amp(process)), org.bpw());
    let wrdrv = tile::tile_row(
        "write_drivers",
        Arc::new(leaf::write_driver(process)),
        org.bpw(),
    );

    // BIST: ADDGEN (up/down counter over the full word address),
    // DATAGEN (Johnson stages + XOR comparators), TRPLA, STREG.
    let addr_bits = (org.row_bits() + org.col_bits()).max(1) as usize;
    let addgen = tile::tile_row(
        "bist_addgen",
        Arc::new(leaf::counter_bit(process)),
        addr_bits,
    );
    let datagen = {
        let stages = org.bpw() / 2 + 1;
        let johnson = Arc::new(tile::tile_row(
            "johnson",
            Arc::new(leaf::dff(process)),
            stages.max(1),
        ));
        let xors = Arc::new(tile::tile_row(
            "comparators",
            Arc::new(leaf::xor2(process)),
            org.bpw(),
        ));
        let mut c = Cell::new("bist_datagen");
        let jh = johnson.bbox().height();
        c.add_instance("johnson", johnson, Transform::IDENTITY);
        c.add_instance("xors", xors, Transform::translate(Point::new(0, jh)));
        c
    };
    let trpla_cell = build_pla_layout(process, &pla);
    let streg = tile::tile_row(
        "bist_streg",
        Arc::new(leaf::dff(process)),
        program.flip_flops() as usize,
    );

    // BISR: the TLB — a CAM of `spares × row_bits` plus per-entry match
    // pullups.
    let tlb_cell = {
        let cam_bit = Arc::new(leaf::cam_bit(process));
        let cam_h = cam_bit.bbox().height();
        let cam = Arc::new(tile::tile_grid(
            "cam",
            cam_bit,
            org.spare_rows().max(1),
            org.row_bits().max(1) as usize,
        ));
        let pullup = Arc::new(leaf::pla_pullup(process));
        let mut c = Cell::new("bisr_tlb");
        let cw = cam.bbox().width();
        c.add_instance("cam", cam, Transform::IDENTITY);
        // One match-line pull-up per entry, placed at the CAM row pitch
        // with its term line aligned to the row's match line (the CAM
        // bit's match line sits at 28 lambda, the pull-up's at 3 lambda).
        for entry in 0..org.spare_rows().max(1) {
            c.add_instance(
                format!("pullup_{entry}"),
                Arc::clone(&pullup),
                Transform::translate(Point::new(cw, entry as i64 * cam_h + 25 * lambda)),
            );
        }
        c
    };

    // --- Area accounting (before placement; areas are placement
    // independent).
    let mut report = AreaReport::new();
    let array_area = array.area();
    let per_row = array_area / org.total_rows() as i128;
    report.add("array_regular_rows", per_row * org.rows() as i128);
    report.add("array_spare_rows", per_row * org.spare_rows() as i128);
    report.add("row_decoders", rowdec.area());
    report.add("wl_drivers", wldrv.area());
    report.add("precharge", prech.area());
    report.add("column_mux", colmux.area());
    report.add("sense_amps", samp.area());
    report.add("write_drivers", wrdrv.area());
    report.add("bist_addgen", addgen.area());
    report.add("bist_datagen", datagen.area());
    report.add("bist_trpla", trpla_cell.area());
    report.add("bist_streg", streg.area());
    report.add("bisr_tlb", tlb_cell.area());

    // --- Macrocell placement (decreasing area + port alignment) and
    // over-the-cell routing.
    let macros = vec![
        Macro::new("ram_array", Arc::new(array)),
        Macro::new("row_decoders", Arc::new(rowdec)),
        Macro::new("wl_drivers", Arc::new(wldrv)),
        Macro::new("precharge", Arc::new(prech)),
        Macro::new("column_mux", Arc::new(colmux)),
        Macro::new("sense_amps", Arc::new(samp)),
        Macro::new("write_drivers", Arc::new(wrdrv)),
        Macro::new("bist_addgen", Arc::new(addgen)),
        Macro::new("bist_datagen", Arc::new(datagen)),
        Macro::new("bist_trpla", Arc::new(trpla_cell)),
        Macro::new("bist_streg", Arc::new(streg)),
        Macro::new("bisr_tlb", Arc::new(tlb_cell)),
    ];
    // Clearance between macros: the widest same-layer spacing rule (the
    // n-well's 9 lambda) with slack, so no cross-macro DRC violations
    // can arise.
    let placement = place_with_margin(macros, 12 * lambda);
    let routes = route::route_placement(&placement, process);
    let mut chip = placement.clone().into_cell(&format!(
        "bisram_{}x{}",
        org.words(),
        org.bpw()
    ));
    for r in &routes {
        for (layer, rect) in &r.shapes {
            chip.add_shape(*layer, *rect);
        }
    }

    let datasheet = Datasheet::extrapolate(params);

    Ok(CompiledRam {
        params: params.clone(),
        chip,
        placement,
        routes,
        areas: Areas { report },
        datasheet,
        program,
        pla,
    })
}

/// Builds the TRPLA layout from the PLA personality: one crosspoint cell
/// per (term, column), programmed where the personality demands, plus a
/// pull-up per term line.
fn build_pla_layout(process: &bisram_tech::Process, pla: &Pla) -> Cell {
    let on = Arc::new(leaf::pla_crosspoint(process, true));
    let off = Arc::new(leaf::pla_crosspoint(process, false));
    let pullup = Arc::new(leaf::pla_pullup(process));
    let pitch = on.bbox().width();
    let vpitch = on.bbox().height();
    let mut c = Cell::new("bist_trpla");
    for (t, (term, outs)) in pla.and_plane.iter().zip(pla.or_plane.iter()).enumerate() {
        let y = t as i64 * vpitch;
        for (i, tri) in term.iter().enumerate() {
            let master = if *tri == Tri::DontCare { &off } else { &on };
            c.add_instance(
                format!("and_{t}_{i}"),
                Arc::clone(master),
                Transform::translate(Point::new(i as i64 * pitch, y)),
            );
        }
        let or_x0 = term.len() as i64 * pitch;
        for (o, drive) in outs.iter().enumerate() {
            let master = if *drive { &on } else { &off };
            c.add_instance(
                format!("or_{t}_{o}"),
                Arc::clone(master),
                Transform::translate(Point::new(or_x0 + o as i64 * pitch, y)),
            );
        }
        c.add_instance(
            format!("pu_{t}"),
            Arc::clone(&pullup),
            Transform::translate(Point::new(
                or_x0 + outs.len() as i64 * pitch,
                y,
            )),
        );
    }
    c
}

impl CompiledRam {
    /// The parameters this module was compiled from.
    pub fn params(&self) -> &RamParams {
        &self.params
    }

    /// The assembled chip cell (macrocell instances + route shapes).
    pub fn chip(&self) -> &Cell {
        &self.chip
    }

    /// The macrocell placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The over-the-cell metal-3 routes.
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// Area accounting.
    pub fn areas(&self) -> &Areas {
        &self.areas
    }

    /// The extrapolated datasheet.
    pub fn datasheet(&self) -> &Datasheet {
        &self.datasheet
    }

    /// The TRPLA control program (two-pass IFA-9 test and repair).
    pub fn control_program(&self) -> &ControlProgram {
        &self.program
    }

    /// The PLA personality.
    pub fn pla(&self) -> &Pla {
        &self.pla
    }

    /// The control code in the paper's two-file format
    /// `(and_plane, or_plane)`.
    pub fn pla_planes(&self) -> (String, String) {
        self.pla.export_planes()
    }

    /// A fresh behavioural model of this memory (fault-free; inject
    /// faults and run the BIST/BISR flows from `bisram-bist` /
    /// `bisram-repair` against it).
    pub fn behavioural_model(&self) -> SramModel {
        SramModel::new(*self.params.org())
    }

    /// Total module area in mm².
    pub fn area_mm2(&self) -> f64 {
        self.placement.bbox().area() as f64 * 1e-12
    }

    /// An SVG floorplan plot — the stand-in for the paper's Fig. 6/7
    /// layout photographs (macro outlines with labels; full-detail
    /// geometry export is [`CompiledRam::to_cif`]).
    pub fn floorplan_svg(&self) -> String {
        let bbox = self.placement.bbox();
        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" viewBox="{} {} {} {}">"#,
            bbox.left(),
            -bbox.top(),
            bbox.width().max(1),
            bbox.height().max(1)
        );
        let palette = [
            "#b0c4de", "#ffd9a0", "#c1e1c1", "#f4b6c2", "#d7bde2", "#aed6f1", "#f9e79f",
            "#a3e4d7", "#f5cba7", "#d5dbdb", "#fadbd8", "#d4efdf",
        ];
        for (i, m) in self.placement.placed().iter().enumerate() {
            let b = m.bbox();
            let _ = writeln!(
                out,
                r##"<rect x="{}" y="{}" width="{}" height="{}" fill="{}" stroke="#333" stroke-width="{}"/>"##,
                b.left(),
                -b.top(),
                b.width(),
                b.height(),
                palette[i % palette.len()],
                bbox.width() / 400 + 1,
            );
            let c = b.center();
            let _ = writeln!(
                out,
                r#"<text x="{}" y="{}" font-size="{}" text-anchor="middle">{}</text>"#,
                c.x,
                -c.y,
                (b.height() / 8).clamp(bbox.width() / 120 + 1, bbox.width() / 30 + 2),
                m.name
            );
        }
        for r in &self.routes {
            for (_, rect) in &r.shapes {
                let _ = writeln!(
                    out,
                    r##"<rect x="{}" y="{}" width="{}" height="{}" fill="#20b2aa"/>"##,
                    rect.left(),
                    -rect.top(),
                    rect.width().max(1),
                    rect.height().max(1)
                );
            }
        }
        let _ = writeln!(out, "</svg>");
        out
    }

    /// Full-detail CIF of the chip. **Flattens the entire hierarchy** —
    /// intended for small modules and leaf-cell inspection; a 4 Mb array
    /// produces a very large file.
    pub fn to_cif(&self) -> String {
        export::to_cif(&self.chip)
    }

    /// A SPICE deck of the sense path (bit cell driving the bitline into
    /// the current-mode sense amplifier) — the per-leaf "simulation
    /// model" output of the tool.
    pub fn sense_path_spice(&self) -> String {
        use bisram_circuit::{MosType, Netlist};
        let dev = self.params.process().devices();
        let l = self.params.process().gate_length_m();
        let lambda_m = self.params.process().rules().lambda() as f64 * 1e-9;
        let mut nl = Netlist::new("sense_path");
        let vdd = nl.node("vdd!");
        let gnd = Netlist::ground();
        nl.vdc(vdd, gnd, dev.vdd);
        // Selected cell pulls one bitline down through the access device.
        let wl = nl.node("wl");
        let bl = nl.node("bl");
        let blb = nl.node("blb");
        nl.vpwl(wl, gnd, vec![(0.0, 0.0), (1e-9, 0.0), (1.05e-9, dev.vdd)]);
        nl.mos(MosType::Nmos, bl, wl, gnd, 4.0 * lambda_m, l);
        // Bitline capacitances.
        let rows = self.params.org().total_rows() as f64;
        let c_bl = rows * dev.c_drain(4.0 * lambda_m, 3.0 * lambda_m);
        nl.capacitor(bl, gnd, c_bl);
        nl.capacitor(blb, gnd, c_bl);
        // Cross-coupled current-mode sense pair (Fig. 3).
        nl.mos(MosType::Pmos, bl, blb, vdd, 8.0 * lambda_m, l);
        nl.mos(MosType::Pmos, blb, bl, vdd, 8.0 * lambda_m, l);
        nl.to_spice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RamParams;

    fn small() -> CompiledRam {
        let p = RamParams::builder()
            .words(256)
            .bits_per_word(8)
            .bits_per_column(4)
            .spare_rows(4)
            .build()
            .unwrap();
        compile(&p).unwrap()
    }

    #[test]
    fn compile_produces_all_macrocells() {
        let ram = small();
        for name in [
            "ram_array",
            "row_decoders",
            "wl_drivers",
            "precharge",
            "column_mux",
            "sense_amps",
            "write_drivers",
            "bist_addgen",
            "bist_datagen",
            "bist_trpla",
            "bist_streg",
            "bisr_tlb",
        ] {
            assert!(
                ram.placement().find(name).is_some(),
                "missing macrocell {name}"
            );
            assert!(ram.areas().report().area_of(name) > 0 || name == "ram_array");
        }
        assert!(ram.area_mm2() > 0.0);
    }

    #[test]
    fn macrocells_do_not_overlap() {
        let ram = small();
        let placed = ram.placement().placed();
        for i in 0..placed.len() {
            for j in (i + 1)..placed.len() {
                assert!(
                    !placed[i].bbox().overlaps(placed[j].bbox()),
                    "{} overlaps {}",
                    placed[i].name,
                    placed[j].name
                );
            }
        }
    }

    #[test]
    fn overhead_is_below_seven_percent_for_realistic_sizes() {
        // Paper abstract: "low area overheads for BIST and BISR, of at
        // most 7% for realistic array sizes" (64 Kb to 4 Mb).
        for (words, bpw, bpc) in [(2048, 32, 4), (8192, 32, 8), (16384, 64, 8)] {
            let p = RamParams::builder()
                .words(words)
                .bits_per_word(bpw)
                .bits_per_column(bpc)
                .build()
                .unwrap();
            let ram = compile(&p).unwrap();
            let o = ram.areas().overhead_fraction();
            assert!(
                o < 0.07,
                "{words}x{bpw}: overhead {:.2}% exceeds 7%",
                o * 100.0
            );
        }
    }

    #[test]
    fn overhead_shrinks_with_array_size() {
        let mk = |words| {
            let p = RamParams::builder()
                .words(words)
                .bits_per_word(32)
                .bits_per_column(8)
                .build()
                .unwrap();
            compile(&p).unwrap().areas().overhead_fraction()
        };
        let small = mk(2048);
        let large = mk(32768);
        assert!(large < small, "overhead: small={small:.4} large={large:.4}");
    }

    #[test]
    fn controller_is_tiny_fraction_of_sixteen_kb_array() {
        // Paper §VI: "the controller area is found to be a very tiny
        // fraction of the memory array area (less than 0.1%) for a
        // 16-kbyte RAM".
        let p = RamParams::builder()
            .words(16384)
            .bits_per_word(8)
            .bits_per_column(8)
            .build()
            .unwrap();
        let ram = compile(&p).unwrap();
        let frac = ram.areas().controller_fraction_of_array();
        assert!(frac < 0.001, "controller fraction {frac:.5}");
    }

    #[test]
    fn floorplan_svg_and_cif_render() {
        let ram = small();
        let svg = ram.floorplan_svg();
        assert!(svg.contains("ram_array") && svg.contains("bisr_tlb"));
        assert!(svg.trim_end().ends_with("</svg>"));
        let cif = ram.to_cif();
        assert!(cif.contains("L CMF;") && cif.trim_end().ends_with('E'));
    }

    #[test]
    fn pla_planes_roundtrip_through_files() {
        let ram = small();
        let (and_s, or_s) = ram.pla_planes();
        let back = Pla::import_planes(&and_s, &or_s).unwrap();
        assert_eq!(&back, ram.pla());
        assert_eq!(ram.control_program().flip_flops(), 6);
    }

    #[test]
    fn behavioural_model_matches_parameters() {
        let ram = small();
        let model = ram.behavioural_model();
        assert_eq!(model.org(), ram.params().org());
    }

    #[test]
    fn sense_path_spice_is_simulatable_text() {
        let ram = small();
        let deck = ram.sense_path_spice();
        assert!(deck.contains("M1") && deck.contains("PWL") && deck.contains(".END"));
    }
}
