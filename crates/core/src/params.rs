//! User parameters of a RAM compilation (paper §II).
//!
//! "The parameters explicitly specified by the user include: bpc, bpw,
//! number of words, number of spare rows (4, 8, or 16), size of critical
//! gates in the RAM circuitry, and the strap space."

use bisram_mem::{ArrayOrg, OrgError};
use bisram_tech::{Process, ProcessError};

/// Validation errors for [`RamParams`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamError {
    /// The array geometry is inconsistent (delegated to the memory
    /// organization rules: bpc a power of two, whole power-of-two rows,
    /// word width in range).
    Organization(OrgError),
    /// The selected process cannot host a BISR RAM.
    Process(ProcessError),
    /// Critical-gate size factor below 1.
    GateSizeTooSmall {
        /// Offending factor.
        factor: i64,
    },
    /// Strap space too small to satisfy the widest same-layer spacing
    /// rule (the n-well needs 9λ; the compiler enforces ≥ 12λ or zero).
    StrapSpaceTooSmall {
        /// Offending strap space in lambda.
        lambda: i64,
    },
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::Organization(e) => write!(f, "array organization: {e}"),
            ParamError::Process(e) => write!(f, "process: {e}"),
            ParamError::GateSizeTooSmall { factor } => {
                write!(f, "critical-gate size factor {factor} is below minimum size 1")
            }
            ParamError::StrapSpaceTooSmall { lambda } => write!(
                f,
                "strap space {lambda} lambda is below the 12 lambda the well spacing rule needs"
            ),
        }
    }
}

impl std::error::Error for ParamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParamError::Organization(e) => Some(e),
            ParamError::Process(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OrgError> for ParamError {
    fn from(e: OrgError) -> Self {
        ParamError::Organization(e)
    }
}

impl From<ProcessError> for ParamError {
    fn from(e: ProcessError) -> Self {
        ParamError::Process(e)
    }
}

/// Validated compiler parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RamParams {
    org: ArrayOrg,
    process: Process,
    gate_size: i64,
    strap_every: usize,
    strap_lambda: i64,
}

impl RamParams {
    /// Starts a builder with the paper's defaults: 4 spare rows, 2×
    /// critical gates, a strap gap of 12λ every 32 columns, on the
    /// CDA 0.7 µm process.
    pub fn builder() -> RamParamsBuilder {
        RamParamsBuilder::default()
    }

    /// The array organization.
    pub fn org(&self) -> &ArrayOrg {
        &self.org
    }

    /// The target process.
    pub fn process(&self) -> &Process {
        &self.process
    }

    /// Critical-gate size factor (paper: precharge transistors and
    /// word-line drivers are made larger than minimal size).
    pub fn gate_size(&self) -> i64 {
        self.gate_size
    }

    /// Columns between straps (0 = no straps).
    pub fn strap_every(&self) -> usize {
        self.strap_every
    }

    /// Strap gap width in lambda.
    pub fn strap_lambda(&self) -> i64 {
        self.strap_lambda
    }

    /// Whether the TLB delay-masking guarantee of paper §VI applies:
    /// "BISRAMGEN will allow a user to generate a RAM array with more
    /// spares but will not be able to guarantee that the TLB delay
    /// penalty can be masked." The guarantee holds for the standard
    /// spare counts.
    pub fn delay_masking_guaranteed(&self) -> bool {
        matches!(self.org.spare_rows(), 1..=4)
    }

    /// Memory capacity in bits.
    pub fn capacity_bits(&self) -> usize {
        self.org.capacity_bits()
    }
}

impl std::fmt::Display for RamParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} in {} (gates x{}, strap {}l/{} cols)",
            self.org,
            self.process.name(),
            self.gate_size,
            self.strap_lambda,
            self.strap_every
        )
    }
}

/// Builder for [`RamParams`].
#[derive(Debug, Clone)]
pub struct RamParamsBuilder {
    words: usize,
    bpw: usize,
    bpc: usize,
    spare_rows: usize,
    process: Process,
    gate_size: i64,
    strap_every: usize,
    strap_lambda: i64,
}

impl Default for RamParamsBuilder {
    fn default() -> Self {
        RamParamsBuilder {
            words: 1024,
            bpw: 8,
            bpc: 4,
            spare_rows: 4,
            process: Process::cda07(),
            gate_size: 2,
            strap_every: 32,
            strap_lambda: 12,
        }
    }
}

impl RamParamsBuilder {
    /// Number of addressable words.
    pub fn words(mut self, words: usize) -> Self {
        self.words = words;
        self
    }

    /// Bits per word (`bpw`).
    pub fn bits_per_word(mut self, bpw: usize) -> Self {
        self.bpw = bpw;
        self
    }

    /// Bits per column (`bpc`, must be a power of two).
    pub fn bits_per_column(mut self, bpc: usize) -> Self {
        self.bpc = bpc;
        self
    }

    /// Spare rows (4, 8 or 16 carry the paper's delay-masking
    /// guarantee; other values compile with the guarantee withdrawn).
    pub fn spare_rows(mut self, spares: usize) -> Self {
        self.spare_rows = spares;
        self
    }

    /// Target CMOS process.
    pub fn process(mut self, process: Process) -> Self {
        self.process = process;
        self
    }

    /// Critical-gate size factor (≥ 1).
    pub fn gate_size(mut self, factor: i64) -> Self {
        self.gate_size = factor;
        self
    }

    /// Strap space: a gap of `lambda` λ every `every` columns. `every`
    /// of 0 disables straps.
    pub fn strap(mut self, every: usize, lambda: i64) -> Self {
        self.strap_every = every;
        self.strap_lambda = lambda;
        self
    }

    /// Validates and builds.
    ///
    /// # Errors
    ///
    /// See [`ParamError`].
    pub fn build(self) -> Result<RamParams, ParamError> {
        if self.gate_size < 1 {
            return Err(ParamError::GateSizeTooSmall {
                factor: self.gate_size,
            });
        }
        if self.strap_every > 0 && self.strap_lambda < 12 {
            return Err(ParamError::StrapSpaceTooSmall {
                lambda: self.strap_lambda,
            });
        }
        let org = ArrayOrg::new(self.words, self.bpw, self.bpc, self.spare_rows)?;
        Ok(RamParams {
            org,
            process: self.process,
            gate_size: self.gate_size,
            strap_every: self.strap_every,
            strap_lambda: self.strap_lambda,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisram_mem::OrgError;

    #[test]
    fn defaults_build() {
        let p = RamParams::builder().build().unwrap();
        assert_eq!(p.org().words(), 1024);
        assert!(p.delay_masking_guaranteed());
        assert_eq!(p.capacity_bits(), 8192);
        assert!(p.to_string().contains("CDA.7u3m1p"));
    }

    #[test]
    fn organization_errors_propagate() {
        let e = RamParams::builder().bits_per_column(3).build().unwrap_err();
        assert_eq!(e, ParamError::Organization(OrgError::BpcNotPowerOfTwo { bpc: 3 }));
        assert!(e.to_string().contains("power of two"));
    }

    #[test]
    fn gate_size_validated() {
        let e = RamParams::builder().gate_size(0).build().unwrap_err();
        assert_eq!(e, ParamError::GateSizeTooSmall { factor: 0 });
    }

    #[test]
    fn strap_space_validated() {
        let e = RamParams::builder().strap(32, 8).build().unwrap_err();
        assert_eq!(e, ParamError::StrapSpaceTooSmall { lambda: 8 });
        // Disabled straps skip the check.
        assert!(RamParams::builder().strap(0, 0).build().is_ok());
    }

    #[test]
    fn many_spares_withdraw_the_masking_guarantee() {
        let p = RamParams::builder()
            .spare_rows(16)
            .build()
            .unwrap();
        assert!(!p.delay_masking_guaranteed());
        // But it still compiles — the paper allows it.
        assert_eq!(p.org().spare_rows(), 16);
    }

    #[test]
    fn fig6_parameters_build() {
        // Fig. 6: 4K words of 128 bits, bpc 8, 32 cells between straps,
        // 4 spare rows, buffer size 2.
        let p = RamParams::builder()
            .words(4096)
            .bits_per_word(128)
            .bits_per_column(8)
            .spare_rows(4)
            .gate_size(2)
            .strap(32, 12)
            .build()
            .unwrap();
        assert_eq!(p.capacity_bits() / 8 / 1024, 64, "64 kB");
    }
}
