//! Datasheet generation.
//!
//! Paper §II: BISRAMGEN "can generate simple leaf cells ahead of time and
//! extract and simulate them, thereby extrapolating and providing timing,
//! area, and power guarantees for the overall system before designing the
//! overall layout" — the RAMGEN lineage of datasheets (setup/hold, read
//! access, write times, supply currents). This module performs that
//! extrapolation with the logical-effort and Elmore models of
//! `bisram-circuit`.

use crate::params::RamParams;
use bisram_circuit::campath::{self, TlbTiming};
use bisram_circuit::elmore;
use bisram_circuit::le::{self, GateType, Path};
use bisram_circuit::snm::{self, CellGeometry};
use bisram_field::{censored_mttf, simulate_fleet, ChipRepairReport, DegradationState, FieldConfig};
use bisram_layout::leaf;
use bisram_tech::Process;
use bisram_yield::reliability::ReliabilityModel;

/// Lifetime figures for the datasheet's reliability section: the
/// analytic §VIII model next to a seeded in-field simulation of the same
/// array ([`bisram_field`]), both censored to the same horizon so the
/// two MTTF figures are directly comparable.
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilitySheet {
    /// Per-bit failure rate assumed, failures per hour.
    pub lambda_per_hour: f64,
    /// Horizon both figures are censored to, hours.
    pub horizon_hours: f64,
    /// MTTF from the closed-form `R(t)`, integrated over the session
    /// grid up to the horizon.
    pub analytic_mttf_hours: f64,
    /// MTTF from `lifetimes` simulated in-field lifetimes (periodic
    /// transparent test-and-repair sessions), same grid and censoring.
    pub simulated_mttf_hours: f64,
    /// Lifetimes simulated.
    pub lifetimes: usize,
    /// Of those, how many failed inside the horizon.
    pub deaths: usize,
}

/// The chip-level repair section of a datasheet: a
/// [`ChipRepairReport`] summarized and priced in silicon area for a
/// concrete process (granted spare rows × the 6T cell footprint).
#[derive(Debug, Clone, PartialEq)]
pub struct ChipSheet {
    /// Process the spare area is priced in.
    pub process: String,
    /// Macros on the chip.
    pub macros: usize,
    /// Macros fully repaired (or born clean).
    pub repaired: usize,
    /// Macros left detect-only (budget or spare shortfall).
    pub detect_only: usize,
    /// Macros quarantined by the transport.
    pub quarantined: usize,
    /// Macros whose repair failed verification.
    pub failed: usize,
    /// Spare rows the diagnoses demanded chip-wide.
    pub rows_requested: usize,
    /// Spare rows the allocator granted.
    pub rows_granted: usize,
    /// Chip redundancy budget, in cell units.
    pub budget_units: u64,
    /// Budget actually spent, in cell units.
    pub spent_units: u64,
    /// Silicon area of the granted spare cells, mm².
    pub spare_area_mm2: f64,
}

impl ChipSheet {
    /// Summarizes a chip run. Budget units are SRAM cells (a spare row's
    /// cost is its cell count), so the spent figure converts directly to
    /// area through the process's 6T cell footprint.
    pub fn from_report(report: &ChipRepairReport, process: &Process) -> ChipSheet {
        let lambda_m = process.rules().lambda() as f64 * 1e-9;
        let cell_m2 = leaf::SRAM_W as f64 * leaf::SRAM_H as f64 * lambda_m * lambda_m;
        ChipSheet {
            process: process.name().to_owned(),
            macros: report.macros.len(),
            repaired: report.count(DegradationState::Healthy),
            detect_only: report.count(DegradationState::DetectOnly),
            quarantined: report.count(DegradationState::Quarantined),
            failed: report.count(DegradationState::Failed),
            rows_requested: report.plan.rows_requested,
            rows_granted: report.plan.rows_granted,
            budget_units: report.plan.budget,
            spent_units: report.plan.spent,
            spare_area_mm2: report.plan.spent as f64 * cell_m2 * 1e6,
        }
    }
}

impl std::fmt::Display for ChipSheet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "chip repair ({}):", self.process)?;
        writeln!(
            f,
            "  macros        : {:8}  ({} repaired, {} detect-only, {} quarantined, {} failed)",
            self.macros, self.repaired, self.detect_only, self.quarantined, self.failed
        )?;
        writeln!(
            f,
            "  spare rows    : {:8}  of {} requested",
            self.rows_granted, self.rows_requested
        )?;
        let budget = if self.budget_units == u64::MAX {
            "unlimited".to_owned()
        } else {
            format!("{}", self.budget_units)
        };
        writeln!(f, "  budget spent  : {:8}  of {budget} cell units", self.spent_units)?;
        writeln!(f, "  spare area    : {:10.6} mm2", self.spare_area_mm2)?;
        Ok(())
    }
}

/// The extrapolated electrical datasheet of a compiled RAM.
#[derive(Debug, Clone, PartialEq)]
pub struct Datasheet {
    /// Read access time (address valid → data valid), seconds.
    pub access_time_s: f64,
    /// Write time, seconds.
    pub write_time_s: f64,
    /// Cycle time (access + precharge), seconds.
    pub cycle_time_s: f64,
    /// TLB compare-and-map delay (paper §VI), seconds.
    pub tlb: TlbTiming,
    /// Whether the TLB delay can be masked inside the precharge phase
    /// (paper §VI technique 1) — guaranteed for 1–4 spares.
    pub tlb_masked: bool,
    /// Active power at the rated cycle time, watts.
    pub active_power_w: f64,
    /// Standby (leakage) power, watts.
    pub standby_power_w: f64,
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Hold static noise margin of the 6T cell, volts.
    pub hold_snm_v: f64,
    /// Read static noise margin of the 6T cell, volts.
    pub read_snm_v: f64,
    /// Lifetime section, filled in by
    /// [`Datasheet::with_simulated_reliability`]; `None` in the plain
    /// extrapolated sheet (the simulation costs real compute).
    pub reliability: Option<ReliabilitySheet>,
}

impl Datasheet {
    /// Extracts the datasheet for a parameter set.
    pub fn extrapolate(params: &RamParams) -> Datasheet {
        let process = params.process();
        let dev = process.devices();
        let lgate = process.gate_length_m();
        let lambda_m = process.rules().lambda() as f64 * 1e-9;
        let org = params.org();
        let tau = le::tau(dev, lgate);

        // --- Row decode: address buffer + predecode + final gate.
        let rows = org.total_rows() as f64;
        let addr_branch = rows / 2.0; // each address line loads half the decoders
        let buf_stages = Path::optimum_stage_count(addr_branch.max(1.0));
        let per_stage = addr_branch.max(1.0).powf(1.0 / buf_stages as f64);
        let mut decode = Path::new(tau);
        for _ in 0..buf_stages {
            decode = decode.stage(GateType::Inverter, per_stage);
        }
        decode = decode
            .stage(GateType::Nand(3), 3.0)
            .stage(GateType::Nor(2), 2.0);
        let t_decode = decode.delay_s();

        // --- Word line: driver (critical gate, scaled) into the strapped
        // word line across all columns.
        let cols = org.columns() as f64;
        let wl_len = cols * leaf::SRAM_W as f64 * lambda_m;
        let wire_w = 3.0 * lambda_m;
        let r_wl = dev.rsh_metal * wl_len / wire_w;
        let c_wl = dev.cw_metal * wl_len
            + cols * 2.0 * dev.c_gate(4.0 * lambda_m, lgate); // two access gates per cell
        let drv_w = 8.0 * lambda_m * params.gate_size() as f64;
        let r_drv = dev.r_eff_n(drv_w, lgate);
        let t_wl = r_drv * c_wl + elmore::wire_delay(r_wl, c_wl, 0.0);

        // --- Bitline: cell discharge through the stacked access +
        // pulldown devices. Current-mode sensing needs only a small
        // differential (paper §IV), captured by the 0.2 swing factor.
        let rows_total = org.total_rows() as f64;
        let bl_len = rows_total * leaf::SRAM_H as f64 * lambda_m;
        let c_bl = dev.cw_metal * bl_len + rows_total * dev.c_drain(4.0 * lambda_m, 3.0 * lambda_m);
        let r_cell = 2.0 * dev.r_eff_n(4.0 * lambda_m, lgate);
        let t_bl = 0.2 * r_cell * c_bl;

        // --- Column mux + sense amplifier + output driver.
        let t_out = Path::new(tau)
            .stage(GateType::Mux(org.bpc() as u8), 2.0)
            .stage(GateType::Inverter, 4.0)
            .stage(GateType::Inverter, 4.0)
            .delay_s();

        let access = t_decode + t_wl + t_bl + t_out;
        // Writes skip sensing: the (strong) write driver forces the
        // bitlines directly (paper §IV: "in write mode, the sense
        // amplifier is bypassed and the bit-lines are directly
        // accessed").
        let r_wdrv = dev.r_eff_n(8.0 * lambda_m, lgate);
        let write = t_decode + t_wl + 0.5 * r_wdrv * c_bl;
        let precharge = 0.6 * access;
        let cycle = access + precharge;

        // --- TLB delay and masking (paper §VI technique 1: overlap with
        // the precharge phase).
        let tlb = campath::tlb_delay(process, org.row_bits(), org.spare_rows().max(1));
        let tlb_masked = params.delay_masking_guaranteed() && tlb.total_s() < precharge;

        // --- Power: switched capacitance per cycle (one word line, the
        // selected subarray bitlines at partial swing, decoders).
        let c_switched = c_wl + org.bpw() as f64 * 0.2 * c_bl + 20.0 * dev.c_gate(drv_w, lgate);
        let f = 1.0 / cycle;
        let active_power_w = c_switched * dev.vdd * dev.vdd * f;
        // Leakage: ~1 pA per cell at these nodes.
        let standby_power_w = org.total_cells() as f64 * 1e-12 * dev.vdd;

        // Cell stability: the standard cell geometry for this process.
        let margins = snm::analyze(dev, &CellGeometry::standard(lgate));

        Datasheet {
            access_time_s: access,
            write_time_s: write,
            cycle_time_s: cycle,
            tlb,
            tlb_masked,
            active_power_w,
            standby_power_w,
            vdd: dev.vdd,
            hold_snm_v: margins.hold_snm,
            read_snm_v: margins.read_snm,
            reliability: None,
        }
    }

    /// Fills the reliability section by running `lifetimes` seeded
    /// in-field simulations of this array next to the analytic model.
    ///
    /// The horizon is set to twice the row-failure time constant divided
    /// by the row count (the scale on which `R(t)` actually decays) and
    /// split into twelve maintenance sessions; both MTTF figures are
    /// censored to that horizon so they stay comparable. Small `lifetimes`
    /// counts (tens) give figure-of-merit accuracy in milliseconds; the
    /// full cross-validation lives in `bisram-field`'s test suite.
    ///
    /// # Panics
    ///
    /// Panics when `lambda_per_hour` is not a positive finite rate or
    /// `lifetimes` is zero.
    pub fn with_simulated_reliability(
        mut self,
        params: &RamParams,
        lambda_per_hour: f64,
        lifetimes: usize,
        seed: u64,
    ) -> Datasheet {
        assert!(
            lambda_per_hour.is_finite() && lambda_per_hour > 0.0,
            "failure rate must be positive and finite"
        );
        let org = *params.org();
        let model = ReliabilityModel {
            org,
            lambda_per_hour,
        };
        let tau_row = 1.0 / (lambda_per_hour * org.columns() as f64);
        let horizon_hours = 2.0 * tau_row / org.rows() as f64 * (1.0 + org.spare_rows() as f64);
        let config = FieldConfig::new(org, lambda_per_hour, horizon_hours / 12.0, horizon_hours);
        let fleet = simulate_fleet(&config, lifetimes, seed);
        let analytic = model.sample(&config.session_times());
        self.reliability = Some(ReliabilitySheet {
            lambda_per_hour,
            horizon_hours,
            analytic_mttf_hours: censored_mttf(&analytic),
            simulated_mttf_hours: fleet.mttf_hours,
            lifetimes,
            deaths: fleet.deaths,
        });
        self
    }
}

impl std::fmt::Display for Datasheet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "read access   : {:8.2} ns", self.access_time_s * 1e9)?;
        writeln!(f, "write time    : {:8.2} ns", self.write_time_s * 1e9)?;
        writeln!(f, "cycle time    : {:8.2} ns", self.cycle_time_s * 1e9)?;
        writeln!(
            f,
            "TLB delay     : {:8.2} ns ({})",
            self.tlb.total_s() * 1e9,
            if self.tlb_masked { "masked" } else { "NOT masked" }
        )?;
        writeln!(f, "active power  : {:8.2} mW", self.active_power_w * 1e3)?;
        writeln!(f, "standby power : {:8.4} mW", self.standby_power_w * 1e3)?;
        writeln!(f, "supply        : {:8.2} V", self.vdd)?;
        writeln!(f, "hold SNM      : {:8.2} V", self.hold_snm_v)?;
        writeln!(f, "read SNM      : {:8.2} V", self.read_snm_v)?;
        if let Some(r) = &self.reliability {
            writeln!(
                f,
                "MTTF (model)  : {:8.0} h  (lambda = {:.1e}/h, censored at {:.0} h)",
                r.analytic_mttf_hours, r.lambda_per_hour, r.horizon_hours
            )?;
            writeln!(
                f,
                "MTTF (simul.) : {:8.0} h  ({} lifetimes, {} failed in-horizon)",
                r.simulated_mttf_hours, r.lifetimes, r.deaths
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RamParams;
    use bisram_tech::Process;

    fn params(words: usize, bpw: usize, spares: usize) -> RamParams {
        RamParams::builder()
            .words(words)
            .bits_per_word(bpw)
            .bits_per_column(4)
            .spare_rows(spares)
            .build()
            .unwrap()
    }

    #[test]
    fn access_time_is_nanoseconds_scale() {
        let d = Datasheet::extrapolate(&params(4096, 32, 4));
        assert!(
            (1e-9..60e-9).contains(&d.access_time_s),
            "access {:.3e} s is implausible for a 0.7 um SRAM",
            d.access_time_s
        );
        assert!(d.cycle_time_s > d.access_time_s);
        assert!(d.write_time_s < d.cycle_time_s);
    }

    #[test]
    fn bigger_arrays_are_slower() {
        let small = Datasheet::extrapolate(&params(1024, 8, 4));
        let large = Datasheet::extrapolate(&params(16384, 64, 4));
        assert!(large.access_time_s > small.access_time_s);
    }

    #[test]
    fn tlb_delay_order_of_magnitude_below_access() {
        // Paper §VI: the TLB delay "is at least an order of magnitude
        // smaller than the RAM access time".
        let d = Datasheet::extrapolate(&params(4096, 32, 4));
        assert!(
            d.tlb.total_s() * 5.0 < d.access_time_s,
            "tlb {:.3e} vs access {:.3e}",
            d.tlb.total_s(),
            d.access_time_s
        );
        assert!(d.tlb_masked);
    }

    #[test]
    fn sixteen_spares_lose_the_masking_guarantee() {
        let d = Datasheet::extrapolate(&params(4096, 32, 16));
        assert!(!d.tlb_masked);
    }

    #[test]
    fn faster_process_is_faster() {
        let p05 = RamParams::builder().process(Process::cda05()).build().unwrap();
        let p07 = RamParams::builder().process(Process::cda07()).build().unwrap();
        let d05 = Datasheet::extrapolate(&p05);
        let d07 = Datasheet::extrapolate(&p07);
        assert!(d05.access_time_s < d07.access_time_s);
    }

    #[test]
    fn power_numbers_positive_and_display_complete() {
        let d = Datasheet::extrapolate(&params(1024, 8, 4));
        assert!(d.active_power_w > 0.0);
        assert!(d.standby_power_w > 0.0 && d.standby_power_w < d.active_power_w);
        let s = d.to_string();
        for key in ["read access", "TLB delay", "active power", "supply", "read SNM"] {
            assert!(s.contains(key), "missing {key}");
        }
    }

    #[test]
    fn cell_is_stable_in_every_process() {
        for p in bisram_tech::Process::builtin() {
            let params = RamParams::builder().process(p.clone()).build().unwrap();
            let d = Datasheet::extrapolate(&params);
            assert!(d.read_snm_v > 0.1, "{}: read SNM {:.3}", p.name(), d.read_snm_v);
            assert!(d.hold_snm_v > d.read_snm_v);
        }
    }

    #[test]
    fn simulated_reliability_section_tracks_the_analytic_model() {
        let p = params(256, 4, 4);
        let d = Datasheet::extrapolate(&p);
        assert!(d.reliability.is_none(), "plain sheet carries no lifetime section");
        let d = d.with_simulated_reliability(&p, 1e-9, 24, 0xD5);
        let r = d.reliability.as_ref().expect("section filled in");
        assert!(r.analytic_mttf_hours > 0.0 && r.simulated_mttf_hours > 0.0);
        assert!(r.simulated_mttf_hours <= r.horizon_hours);
        // Two dozen lifetimes give a figure of merit, not a validation —
        // but it must land on the analytic value's order of magnitude.
        let ratio = r.simulated_mttf_hours / r.analytic_mttf_hours;
        assert!(
            (0.5..2.0).contains(&ratio),
            "simulated {:.0} h vs analytic {:.0} h",
            r.simulated_mttf_hours,
            r.analytic_mttf_hours
        );
        assert_eq!(r.lifetimes, 24);
        assert!(r.deaths <= 24);
        let s = d.to_string();
        assert!(s.contains("MTTF (model)"), "{s}");
        assert!(s.contains("MTTF (simul.)"), "{s}");
        // Deterministic: same seed, same sheet.
        let again = Datasheet::extrapolate(&p).with_simulated_reliability(&p, 1e-9, 24, 0xD5);
        assert_eq!(d, again);
    }

    #[test]
    fn chip_sheet_summarizes_a_chip_run() {
        use bisram_field::{heterogeneous_chip, ChipConfig, ChipModel};
        let cfg = ChipConfig::new(heterogeneous_chip(4, 9), u64::MAX, 9);
        let report = ChipModel::new(cfg).diagnose_and_repair();
        let sheet = ChipSheet::from_report(&report, &Process::cda07());
        assert_eq!(sheet.macros, 4);
        assert_eq!(
            sheet.repaired + sheet.detect_only + sheet.quarantined + sheet.failed,
            4,
            "every macro lands in exactly one state"
        );
        assert_eq!(sheet.rows_granted, report.plan.rows_granted);
        // Cell-unit costs convert to a plausible spare area.
        assert!(sheet.spare_area_mm2 >= 0.0);
        if sheet.spent_units > 0 {
            assert!(sheet.spare_area_mm2 > 0.0);
        }
        let s = sheet.to_string();
        for key in ["chip repair", "macros", "spare rows", "budget spent", "spare area"] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
        // A scaled-down process prices the same spares smaller.
        let smaller = ChipSheet::from_report(&report, &Process::cda05());
        assert!(smaller.spare_area_mm2 <= sheet.spare_area_mm2);
    }

    #[test]
    fn critical_gate_sizing_speeds_up_the_word_line() {
        let slow = RamParams::builder().gate_size(1).build().unwrap();
        let fast = RamParams::builder().gate_size(4).build().unwrap();
        assert!(
            Datasheet::extrapolate(&fast).access_time_s
                < Datasheet::extrapolate(&slow).access_time_s
        );
    }
}
