//! The `bisramgen` command-line tool: compile a BISR RAM and write its
//! outputs, the way the original tool was invoked from the CAD flow.
//!
//! ```sh
//! bisramgen --words 4096 --bpw 32 --bpc 8 --spares 4 \
//!           --process CDA.7u3m1p --gate-size 2 --strap 32:12 \
//!           --out build/myram
//! ```
//!
//! Outputs written to the `--out` directory: `datasheet.txt`,
//! `areas.txt`, `floorplan.svg`, `trpla_and.plane`, `trpla_or.plane`,
//! `sense_path.sp`, and (with `--cif`, small modules only) `layout.cif`.

use bisram_tech::Process;
use bisramgen::{compile_with, CompileOptions, RamParams, VerifyMode};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    words: usize,
    bpw: usize,
    bpc: usize,
    spares: usize,
    process: String,
    gate_size: i64,
    strap_every: usize,
    strap_lambda: i64,
    out: PathBuf,
    cif: bool,
    jobs: Option<usize>,
    timings: bool,
    verify: bool,
    verify_mode: VerifyMode,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            words: 1024,
            bpw: 32,
            bpc: 4,
            spares: 4,
            process: "CDA.7u3m1p".to_owned(),
            gate_size: 2,
            strap_every: 32,
            strap_lambda: 12,
            out: PathBuf::from("bisramgen_out"),
            cif: false,
            jobs: None,
            timings: false,
            verify: false,
            verify_mode: VerifyMode::Flat,
        }
    }
}

const USAGE: &str = "\
bisramgen - compile a built-in self-repairable static RAM

USAGE:
  bisramgen [OPTIONS]

OPTIONS:
  --words N        addressable words (default 1024)
  --bpw N          bits per word (default 32)
  --bpc N          bits per column, power of two (default 4)
  --spares N       spare rows; 4/8/16 keep the delay-masking guarantee (default 4)
  --process NAME   CDA.5u3m1p | mos.6u3m1pHP | CDA.7u3m1p (default CDA.7u3m1p)
  --gate-size N    critical-gate size factor >= 1 (default 2)
  --strap E:L      strap gap of L lambda every E columns; 0:0 disables (default 32:12)
  --out DIR        output directory (default bisramgen_out)
  --cif            also write the flattened CIF (small modules only)
  --jobs N         macrocell worker threads (default: BISRAM_JOBS, then all cores)
  --timings        print the per-stage pipeline trace (wall time, cache hits)
  --verify         run physical verification (DRC + extraction + LVS) on every
                   macrocell; writes verify.txt, exits nonzero on violations
  --verify-mode M  flat (default) checks every placed shape; hier verifies each
                   distinct cell once behind a cached certificate and checks
                   only instance-boundary halos — same report, much faster on
                   large arrays
  --help           show this text
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--words" => args.words = parse_num(&value("--words")?)?,
            "--bpw" => args.bpw = parse_num(&value("--bpw")?)?,
            "--bpc" => args.bpc = parse_num(&value("--bpc")?)?,
            "--spares" => args.spares = parse_num(&value("--spares")?)?,
            "--process" => args.process = value("--process")?,
            "--gate-size" => args.gate_size = parse_num(&value("--gate-size")?)? as i64,
            "--strap" => {
                let v = value("--strap")?;
                let (e, l) = v
                    .split_once(':')
                    .ok_or_else(|| format!("--strap expects E:L, got {v:?}"))?;
                args.strap_every = parse_num(e)?;
                args.strap_lambda = parse_num(l)? as i64;
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--cif" => args.cif = true,
            "--jobs" => args.jobs = Some(parse_num(&value("--jobs")?)?),
            "--timings" => args.timings = true,
            "--verify" => args.verify = true,
            "--verify-mode" => {
                let v = value("--verify-mode")?;
                args.verify_mode = VerifyMode::parse(&v)
                    .ok_or_else(|| format!("--verify-mode expects flat|hier, got {v:?}"))?;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse::<usize>()
        .map_err(|_| format!("expected a number, got {s:?}"))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let process = Process::by_name(&args.process)
        .ok_or_else(|| format!("unknown process {:?}; built-ins: CDA.5u3m1p, mos.6u3m1pHP, CDA.7u3m1p", args.process))?;
    let params = RamParams::builder()
        .words(args.words)
        .bits_per_word(args.bpw)
        .bits_per_column(args.bpc)
        .spare_rows(args.spares)
        .gate_size(args.gate_size)
        .strap(args.strap_every, args.strap_lambda)
        .process(process)
        .build()
        .map_err(|e| e.to_string())?;

    eprintln!("compiling {params} ...");
    let mut options = CompileOptions::new()
        .with_verify(args.verify)
        .with_verify_mode(args.verify_mode);
    if let Some(jobs) = args.jobs {
        options = options.with_jobs(jobs);
    }
    let ram = compile_with(&params, &options).map_err(|e| e.to_string())?;
    if args.timings {
        eprintln!("{}", ram.trace());
    }

    std::fs::create_dir_all(&args.out).map_err(|e| format!("creating {:?}: {e}", args.out))?;
    let write = |name: &str, contents: &str| -> Result<(), String> {
        let path = args.out.join(name);
        std::fs::write(&path, contents).map_err(|e| format!("writing {path:?}: {e}"))?;
        eprintln!("  wrote {}", path.display());
        Ok(())
    };

    write("datasheet.txt", &ram.datasheet().to_string())?;
    write(
        "areas.txt",
        &format!(
            "{}\nBIST+BISR overhead: {:.3}% ({:.3}% counting spare rows)\nmodule: {:.4} mm2, utilization {:.1}%\n",
            ram.areas().report(),
            ram.areas().overhead_fraction() * 100.0,
            ram.areas().overhead_fraction_with_spares() * 100.0,
            ram.area_mm2(),
            ram.placement().utilization() * 100.0
        ),
    )?;
    write("floorplan.svg", &ram.floorplan_svg())?;
    let (and_plane, or_plane) = ram.pla_planes();
    write("trpla_and.plane", &and_plane)?;
    write("trpla_or.plane", &or_plane)?;
    write("sense_path.sp", &ram.sense_path_spice())?;
    let mut verify_dirty = false;
    if let Some(report) = ram.verify_report() {
        write("verify.txt", &report.to_string())?;
        if report.is_clean() {
            eprintln!(
                "  verify: clean ({} macrocells, 0 drc violations, 0 lvs mismatches)",
                report.cells.len()
            );
        } else {
            verify_dirty = true;
            eprintln!(
                "  verify: DIRTY ({} drc violations, {} lvs mismatches) — see verify.txt",
                report.drc_violations(),
                report.lvs_mismatches()
            );
        }
    }
    if args.cif {
        if params.org().cells() > 200_000 {
            eprintln!("  skipping CIF: module too large for a flattened export");
        } else {
            write("layout.cif", &ram.to_cif())?;
        }
    }

    eprintln!(
        "done: {} states / {} FFs, {:.2}% overhead, {:.2} ns access",
        ram.control_program().state_count(),
        ram.control_program().flip_flops(),
        ram.areas().overhead_fraction() * 100.0,
        ram.datasheet().access_time_s * 1e9
    );
    if verify_dirty {
        return Err("physical verification found violations".to_owned());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bisramgen: {msg}");
            ExitCode::FAILURE
        }
    }
}
