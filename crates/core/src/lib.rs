//! **BISRAMGEN** — a physical design tool for built-in self-repairable
//! static RAMs (reproduction of Chakraborty et al., DATE 1999 / IEEE
//! TVLSI 9(2), 2001).
//!
//! From a set of user-specified geometry parameters and a CMOS process,
//! the compiler builds a library of leaf cells and assembles them
//! bottom-up into a redundant RAM array with built-in self-test (a
//! microprogrammed IFA-9 march controller with Johnson-counter data
//! backgrounds) and built-in self-repair (a TLB that switches faulty
//! rows out and spare rows in), producing:
//!
//! * the hierarchical **layout** with a macrocell floorplan, plus CIF
//!   and SVG exports,
//! * **simulation models**: a behavioural memory wired to the BIST/BISR
//!   machinery, a SPICE deck of the sense path, and the TRPLA control
//!   code as the paper's two personality-plane files,
//! * a **datasheet** with extrapolated access time, cycle time, area and
//!   power, and the TLB delay-masking check of paper §VI,
//! * the **area-overhead report** behind Table I.
//!
//! # Quickstart
//!
//! ```
//! use bisramgen::{RamParams, compile};
//! use bisram_tech::Process;
//!
//! let params = RamParams::builder()
//!     .words(1024)
//!     .bits_per_word(8)
//!     .bits_per_column(4)
//!     .spare_rows(4)
//!     .process(Process::cda07())
//!     .build()?;
//! let ram = compile(&params)?;
//! assert!(ram.areas().overhead_fraction() < 0.07, "paper: at most 7%");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod compiler;
mod datasheet;
mod overhead;
mod params;
pub mod pipeline;

pub use compiler::{compile, compile_with, Areas, CompileError, CompiledRam};
pub use pipeline::{CellCache, CompileOptions, KindStats, PipelineTrace, VerifyMode};
pub use datasheet::{ChipSheet, Datasheet, ReliabilitySheet};
pub use overhead::{overhead_row, OverheadRow};
pub use params::{ParamError, RamParams, RamParamsBuilder};

// Re-export the workspace crates under one roof, matching how the tool
// presents itself as a single entry point.
pub use bisram_bist as bist;
pub use bisram_circuit as circuit;
pub use bisram_diag as diag;
pub use bisram_field as field;
pub use bisram_geom as geom;
pub use bisram_layout as layout;
pub use bisram_mem as mem;
pub use bisram_repair as repair;
pub use bisram_tech as tech;
pub use bisram_yield as yield_model;
