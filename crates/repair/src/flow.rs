//! The two-pass self-test-and-repair flow.
//!
//! Paper §V: "The test involves two passes. In the first pass, the memory
//! array is tested and faulty addresses are stored in a translation
//! lookaside buffer (TLB). In the second pass, the array is retested
//! along with the mapped redundant addresses. Any fault detected in the
//! second pass produces a 'Repair Unsuccessful' status signal, which
//! implies either too many faults in the memory array or faulty spares.
//! This two-pass algorithm can be easily converted to a 2·k-pass
//! algorithm; that is, the cycle of self-testing and self-repair may be
//! iterated to repair faults within the spares themselves."

use crate::tlb::Tlb;
use bisram_bist::engine::{run_march, MarchConfig};
use bisram_bist::march::{self, MarchTest};
use bisram_mem::SramModel;

/// Configuration of a repair session.
#[derive(Debug, Clone)]
pub struct RepairSetup {
    /// March test to run (IFA-9 by default, as microprogrammed into the
    /// TRPLA).
    pub test: MarchTest,
    /// Engine configuration (Johnson backgrounds, full fail logging).
    pub march: MarchConfig,
    /// Maximum test passes. `2` is the paper's base algorithm (one
    /// capture pass, one verify pass); larger values enable the iterated
    /// variant that replaces faulty spares.
    pub max_passes: usize,
}

impl Default for RepairSetup {
    fn default() -> Self {
        RepairSetup {
            test: march::ifa9(),
            march: MarchConfig::default(),
            max_passes: 2,
        }
    }
}

impl RepairSetup {
    /// The iterated `2·k`-pass variant able to repair faulty spares.
    pub fn iterated(max_passes: usize) -> Self {
        assert!(max_passes >= 2, "need at least capture + verify");
        RepairSetup {
            max_passes,
            ..RepairSetup::default()
        }
    }
}

/// Why a repair session failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnrepairableReason {
    /// More faulty rows than free spares (at some pass).
    OutOfSpares {
        /// Rows that still needed mapping when the spares ran out.
        unmapped_rows: usize,
    },
    /// Mismatches persisted through the final allowed pass.
    FaultsPersist,
}

/// Outcome of a repair session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairOutcome {
    /// Pass 1 found no faults: the array is good as manufactured.
    AlreadyGood,
    /// Repair succeeded: the final verify pass was clean.
    Repaired {
        /// Spares consumed (including any burned on faulty spares).
        spares_used: usize,
    },
    /// The paper's "Repair Unsuccessful" status signal.
    Unsuccessful {
        /// Diagnosis.
        reason: UnrepairableReason,
    },
}

impl RepairOutcome {
    /// True for both `AlreadyGood` and `Repaired`.
    pub fn is_usable(&self) -> bool {
        !matches!(self, RepairOutcome::Unsuccessful { .. })
    }

    /// True only when spares were actually deployed.
    pub fn is_repaired(&self) -> bool {
        matches!(self, RepairOutcome::Repaired { .. })
    }
}

/// Full report of a repair session.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// Final outcome.
    pub outcome: RepairOutcome,
    /// The TLB as programmed (useful even on failure, for diagnosis).
    pub tlb: Tlb,
    /// Test passes executed.
    pub passes: usize,
    /// Faulty rows seen in the first pass.
    pub pass1_faulty_rows: Vec<usize>,
    /// Total memory operations spent on self-test.
    pub operations: u64,
}

/// Runs the self-test-and-repair flow on a memory.
///
/// Pass 1 runs the march unmapped and captures every distinct faulty row
/// into the TLB (strictly increasing spare assignment). Each subsequent
/// pass re-runs the march through the TLB; mismatching rows are captured
/// again (remapping rows whose spare was itself faulty) until a pass is
/// clean or `max_passes` is exhausted.
pub fn self_test_and_repair(ram: &mut SramModel, setup: &RepairSetup) -> RepairReport {
    let org = *ram.org();
    let mut tlb = Tlb::new(org.rows(), org.spare_rows());
    let mut operations: u64 = 0;

    // Pass 1: unmapped capture pass.
    let pass1 = run_march(&setup.test, ram, &setup.march, None);
    operations += pass1.reads() + pass1.writes();
    let pass1_faulty_rows = pass1.faulty_rows();
    if !pass1.detected() {
        return RepairReport {
            outcome: RepairOutcome::AlreadyGood,
            tlb,
            passes: 1,
            pass1_faulty_rows,
            operations,
        };
    }
    if let Err(e) = capture_rows(&mut tlb, &pass1_faulty_rows) {
        return RepairReport {
            outcome: RepairOutcome::Unsuccessful { reason: e },
            tlb,
            passes: 1,
            pass1_faulty_rows,
            operations,
        };
    }

    // Verify (and possibly iterate).
    let mut passes = 1;
    while passes < setup.max_passes {
        passes += 1;
        let verify = run_march(&setup.test, ram, &setup.march, Some(&tlb));
        operations += verify.reads() + verify.writes();
        if !verify.detected() {
            return RepairReport {
                outcome: RepairOutcome::Repaired {
                    spares_used: tlb.used(),
                },
                tlb,
                passes,
                pass1_faulty_rows,
                operations,
            };
        }
        if passes == setup.max_passes {
            return RepairReport {
                outcome: RepairOutcome::Unsuccessful {
                    reason: UnrepairableReason::FaultsPersist,
                },
                tlb,
                passes,
                pass1_faulty_rows,
                operations,
            };
        }
        // Iterated variant: recapture the still-failing rows (their
        // spares were faulty, or they are newly exposed rows).
        if let Err(e) = capture_rows(&mut tlb, &verify.faulty_rows()) {
            return RepairReport {
                outcome: RepairOutcome::Unsuccessful { reason: e },
                tlb,
                passes,
                pass1_faulty_rows,
                operations,
            };
        }
    }

    RepairReport {
        outcome: RepairOutcome::Unsuccessful {
            reason: UnrepairableReason::FaultsPersist,
        },
        tlb,
        passes,
        pass1_faulty_rows,
        operations,
    }
}

fn capture_rows(tlb: &mut Tlb, rows: &[usize]) -> Result<(), UnrepairableReason> {
    for (i, &row) in rows.iter().enumerate() {
        if tlb.capture(row).is_err() {
            return Err(UnrepairableReason::OutOfSpares {
                unmapped_rows: rows.len() - i,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisram_bist::RowMap;
    use bisram_mem::{row_failure, ArrayOrg, Fault, FaultKind, Word};

    fn org(spares: usize) -> ArrayOrg {
        ArrayOrg::new(256, 8, 4, spares).unwrap()
    }

    #[test]
    fn clean_memory_is_already_good() {
        let mut ram = SramModel::new(org(4));
        let report = self_test_and_repair(&mut ram, &RepairSetup::default());
        assert_eq!(report.outcome, RepairOutcome::AlreadyGood);
        assert_eq!(report.passes, 1);
        assert!(report.pass1_faulty_rows.is_empty());
        assert!(report.operations > 0);
    }

    #[test]
    fn single_faulty_row_repaired_with_one_spare() {
        let o = org(4);
        let mut ram = SramModel::new(o);
        ram.inject_all(row_failure(&o, 9, true));
        let report = self_test_and_repair(&mut ram, &RepairSetup::default());
        assert_eq!(report.outcome, RepairOutcome::Repaired { spares_used: 1 });
        assert_eq!(report.pass1_faulty_rows, vec![9]);
        assert_eq!(report.tlb.map_row(9), o.rows());
        // The repaired memory now works through the map.
        let addr = o.join(9, 0);
        let phys = report.tlb.map_row(9);
        ram.write_word_at(phys, 0, Word::from_u64(0x5A, 8));
        assert_eq!(ram.read_word_at(phys, 0).to_u64(), 0x5A);
        let _ = addr;
    }

    #[test]
    fn repairs_up_to_spare_count_rows() {
        let o = org(4);
        let mut ram = SramModel::new(o);
        for row in [3, 17, 42, 63] {
            ram.inject(Fault::new(o.cell_at(row, 1, 2), FaultKind::StuckAt(true)));
        }
        let report = self_test_and_repair(&mut ram, &RepairSetup::default());
        assert_eq!(report.outcome, RepairOutcome::Repaired { spares_used: 4 });
        assert_eq!(report.pass1_faulty_rows.len(), 4);
    }

    #[test]
    fn too_many_faulty_rows_is_out_of_spares() {
        let o = org(2);
        let mut ram = SramModel::new(o);
        for row in [1, 2, 3] {
            ram.inject(Fault::new(o.cell_at(row, 0, 0), FaultKind::StuckAt(true)));
        }
        let report = self_test_and_repair(&mut ram, &RepairSetup::default());
        assert_eq!(
            report.outcome,
            RepairOutcome::Unsuccessful {
                reason: UnrepairableReason::OutOfSpares { unmapped_rows: 1 }
            }
        );
    }

    #[test]
    fn faulty_spare_fails_two_pass_but_iterated_repairs() {
        let o = org(4);
        let build = || {
            let mut ram = SramModel::new(o);
            // Row 5 faulty; spare 0 (the row it will map to) also faulty.
            ram.inject(Fault::new(o.cell_at(5, 0, 0), FaultKind::StuckAt(true)));
            ram.inject(Fault::new(
                o.cell_at(o.rows(), 0, 0),
                FaultKind::StuckAt(false),
            ));
            ram
        };

        // Base two-pass algorithm: Repair Unsuccessful (faulty spare).
        let mut ram = build();
        let two_pass = self_test_and_repair(&mut ram, &RepairSetup::default());
        assert_eq!(
            two_pass.outcome,
            RepairOutcome::Unsuccessful {
                reason: UnrepairableReason::FaultsPersist
            }
        );

        // Iterated 2k-pass: row 5 is recaptured onto spare 1.
        let mut ram = build();
        let iterated = self_test_and_repair(&mut ram, &RepairSetup::iterated(4));
        assert_eq!(iterated.outcome, RepairOutcome::Repaired { spares_used: 2 });
        assert_eq!(iterated.tlb.map_row(5), o.rows() + 1);
    }

    #[test]
    fn spare_exhaustion_via_faulty_spares() {
        let o = org(2);
        let mut ram = SramModel::new(o);
        // One faulty row but both spares faulty: iterated repair burns
        // through them and runs out.
        ram.inject(Fault::new(o.cell_at(7, 0, 0), FaultKind::StuckAt(true)));
        ram.inject(Fault::new(
            o.cell_at(o.rows(), 0, 0),
            FaultKind::StuckAt(true),
        ));
        ram.inject(Fault::new(
            o.cell_at(o.rows() + 1, 0, 0),
            FaultKind::StuckAt(true),
        ));
        let report = self_test_and_repair(&mut ram, &RepairSetup::iterated(6));
        assert!(matches!(
            report.outcome,
            RepairOutcome::Unsuccessful {
                reason: UnrepairableReason::OutOfSpares { .. }
            }
        ));
    }

    #[test]
    fn outcome_predicates() {
        assert!(RepairOutcome::AlreadyGood.is_usable());
        assert!(!RepairOutcome::AlreadyGood.is_repaired());
        assert!(RepairOutcome::Repaired { spares_used: 1 }.is_repaired());
        assert!(!RepairOutcome::Unsuccessful {
            reason: UnrepairableReason::FaultsPersist
        }
        .is_usable());
    }

    #[test]
    #[should_panic(expected = "capture + verify")]
    fn iterated_needs_two_passes() {
        let _ = RepairSetup::iterated(1);
    }
}
