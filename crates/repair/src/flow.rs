//! The two-pass self-test-and-repair flow.
//!
//! Paper §V: "The test involves two passes. In the first pass, the memory
//! array is tested and faulty addresses are stored in a translation
//! lookaside buffer (TLB). In the second pass, the array is retested
//! along with the mapped redundant addresses. Any fault detected in the
//! second pass produces a 'Repair Unsuccessful' status signal, which
//! implies either too many faults in the memory array or faulty spares.
//! This two-pass algorithm can be easily converted to a 2·k-pass
//! algorithm; that is, the cycle of self-testing and self-repair may be
//! iterated to repair faults within the spares themselves."

use crate::tlb::Tlb;
use bisram_bist::engine::{run_march, MarchConfig};
use bisram_bist::RowMap;
use bisram_bist::march::{self, MarchTest};
use bisram_mem::SramModel;

/// Configuration of a repair session.
#[derive(Debug, Clone)]
pub struct RepairSetup {
    /// March test to run (IFA-9 by default, as microprogrammed into the
    /// TRPLA).
    pub test: MarchTest,
    /// Engine configuration (Johnson backgrounds, full fail logging).
    pub march: MarchConfig,
    /// Maximum test passes. `2` is the paper's base algorithm (one
    /// capture pass, one verify pass); larger values enable the iterated
    /// variant that replaces faulty spares.
    pub max_passes: usize,
}

impl Default for RepairSetup {
    fn default() -> Self {
        RepairSetup {
            test: march::ifa9(),
            march: MarchConfig::default(),
            max_passes: 2,
        }
    }
}

impl RepairSetup {
    /// The iterated `2·k`-pass variant able to repair faulty spares.
    pub fn iterated(max_passes: usize) -> Self {
        assert!(max_passes >= 2, "need at least capture + verify");
        RepairSetup {
            max_passes,
            ..RepairSetup::default()
        }
    }
}

/// Why a repair session failed.
///
/// Both variants carry the logical rows that were still faulty when the
/// flow gave up, so callers (the yield simulator's diagnosis path, the
/// in-field lifetime engine's unrepairable-region map) can act on the
/// surviving addresses instead of only knowing a count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnrepairableReason {
    /// More faulty rows than free spares (at some pass).
    OutOfSpares {
        /// Rows that still needed mapping when the spares ran out.
        unmapped_rows: usize,
        /// The logical rows left without a spare, in address order.
        surviving_rows: Vec<usize>,
    },
    /// Mismatches persisted through the final allowed pass.
    FaultsPersist {
        /// The logical rows still failing in the last pass, in address
        /// order.
        surviving_rows: Vec<usize>,
    },
}

impl UnrepairableReason {
    /// The logical rows still faulty when the flow gave up, regardless
    /// of which way it failed.
    pub fn surviving_rows(&self) -> &[usize] {
        match self {
            UnrepairableReason::OutOfSpares { surviving_rows, .. }
            | UnrepairableReason::FaultsPersist { surviving_rows } => surviving_rows,
        }
    }
}

/// Outcome of a repair session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairOutcome {
    /// Pass 1 found no faults: the array is good as manufactured.
    AlreadyGood,
    /// Repair succeeded: the final verify pass was clean.
    Repaired {
        /// Spares consumed (including any burned on faulty spares).
        spares_used: usize,
    },
    /// The paper's "Repair Unsuccessful" status signal.
    Unsuccessful {
        /// Diagnosis.
        reason: UnrepairableReason,
    },
}

impl RepairOutcome {
    /// True for both `AlreadyGood` and `Repaired`.
    pub fn is_usable(&self) -> bool {
        !matches!(self, RepairOutcome::Unsuccessful { .. })
    }

    /// True only when spares were actually deployed.
    pub fn is_repaired(&self) -> bool {
        matches!(self, RepairOutcome::Repaired { .. })
    }
}

/// Full report of a repair session.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// Final outcome.
    pub outcome: RepairOutcome,
    /// The TLB as programmed (useful even on failure, for diagnosis).
    pub tlb: Tlb,
    /// Test passes executed.
    pub passes: usize,
    /// Faulty rows seen in the first pass.
    pub pass1_faulty_rows: Vec<usize>,
    /// Total memory operations spent on self-test.
    pub operations: u64,
}

/// Runs the self-test-and-repair flow on a memory.
///
/// Pass 1 runs the march unmapped and captures every distinct faulty row
/// into the TLB (strictly increasing spare assignment). Each subsequent
/// pass re-runs the march through the TLB; mismatching rows are captured
/// again (remapping rows whose spare was itself faulty) until a pass is
/// clean or `max_passes` is exhausted.
pub fn self_test_and_repair(ram: &mut SramModel, setup: &RepairSetup) -> RepairReport {
    let org = *ram.org();
    let mut tlb = Tlb::new(org.rows(), org.spare_rows());
    let mut operations: u64 = 0;

    // Pass 1: unmapped capture pass.
    let pass1 = run_march(&setup.test, ram, &setup.march, None);
    operations += pass1.reads() + pass1.writes();
    let pass1_faulty_rows = pass1.faulty_rows();
    if !pass1.detected() {
        return RepairReport {
            outcome: RepairOutcome::AlreadyGood,
            tlb,
            passes: 1,
            pass1_faulty_rows,
            operations,
        };
    }
    if let Err(e) = capture_rows(&mut tlb, &pass1_faulty_rows) {
        return RepairReport {
            outcome: RepairOutcome::Unsuccessful { reason: e },
            tlb,
            passes: 1,
            pass1_faulty_rows,
            operations,
        };
    }

    // Verify (and possibly iterate).
    let mut passes = 1;
    while passes < setup.max_passes {
        passes += 1;
        let verify = run_march(&setup.test, ram, &setup.march, Some(&tlb));
        operations += verify.reads() + verify.writes();
        if !verify.detected() {
            return RepairReport {
                outcome: RepairOutcome::Repaired {
                    spares_used: tlb.used(),
                },
                tlb,
                passes,
                pass1_faulty_rows,
                operations,
            };
        }
        if passes == setup.max_passes {
            return RepairReport {
                outcome: RepairOutcome::Unsuccessful {
                    reason: UnrepairableReason::FaultsPersist {
                        surviving_rows: verify.faulty_rows(),
                    },
                },
                tlb,
                passes,
                pass1_faulty_rows,
                operations,
            };
        }
        // Iterated variant: recapture the still-failing rows (their
        // spares were faulty, or they are newly exposed rows).
        if let Err(e) = capture_rows(&mut tlb, &verify.faulty_rows()) {
            return RepairReport {
                outcome: RepairOutcome::Unsuccessful { reason: e },
                tlb,
                passes,
                pass1_faulty_rows,
                operations,
            };
        }
    }

    // Only reachable with `max_passes == 1`: capture ran but no verify
    // pass was allowed, so the pass-1 rows count as unverified survivors.
    RepairReport {
        outcome: RepairOutcome::Unsuccessful {
            reason: UnrepairableReason::FaultsPersist {
                surviving_rows: pass1_faulty_rows.clone(),
            },
        },
        tlb,
        passes,
        pass1_faulty_rows,
        operations,
    }
}

fn capture_rows(tlb: &mut Tlb, rows: &[usize]) -> Result<(), UnrepairableReason> {
    for (i, &row) in rows.iter().enumerate() {
        if tlb.capture(row).is_err() {
            return Err(UnrepairableReason::OutOfSpares {
                unmapped_rows: rows.len() - i,
                surviving_rows: rows[i..].to_vec(),
            });
        }
    }
    Ok(())
}

/// Result of an [`incremental_repair`] call: a total accounting of what
/// happened to every requested row. There is no error type — the in-field
/// repair engine must keep running whatever the fault pattern, so every
/// outcome (mapped, spares exhausted, bogus address) is data, not a
/// panic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IncrementalRepair {
    /// `(logical_row, spare_index)` pairs successfully mapped this call,
    /// in request order.
    pub mapped: Vec<(usize, usize)>,
    /// Rows left unmapped because the spares ran out, in request order.
    pub unmapped: Vec<usize>,
    /// Rows rejected as not regular-array addresses (caller bug or
    /// corrupted detection bookkeeping), in request order.
    pub invalid: Vec<usize>,
    /// Words copied from old physical locations into the new spares.
    pub copied_words: usize,
}

impl IncrementalRepair {
    /// True when every valid requested row got a spare.
    pub fn fully_mapped(&self) -> bool {
        self.unmapped.is_empty()
    }
}

/// Maps freshly detected faulty rows onto spares *without* a full
/// test-and-repair session, preserving user data.
///
/// This is the in-field counterpart of [`self_test_and_repair`]: the
/// manufacturing flow may scramble contents because nothing is stored
/// yet, but a repair performed mid-lifetime must carry the live data
/// across. For each row, the words at its current physical location
/// (`tlb.map_row(row)` *before* the new capture — which may already be a
/// spare if this row was repaired once before) are copied into the newly
/// assigned spare, then the TLB entry is added so subsequent accesses
/// divert. Bits held by already-dead cells at the source are copied as
/// read — a row repair cannot resurrect data a hard fault has destroyed,
/// only stop the rot.
///
/// Rows that cannot be mapped are reported in the result rather than
/// aborting the run: `unmapped` when spares are exhausted (the memory
/// enters degraded mode but keeps serving its still-good rows) and
/// `invalid` for addresses outside the regular array.
pub fn incremental_repair(
    ram: &mut SramModel,
    tlb: &mut Tlb,
    faulty_rows: &[usize],
) -> IncrementalRepair {
    let org = *ram.org();
    let mut result = IncrementalRepair::default();
    for &row in faulty_rows {
        let source = tlb.map_row(row);
        match tlb.capture(row) {
            Ok(spare) => {
                let dest = tlb.spare_row(spare);
                for col in 0..org.bpc() {
                    let word = ram.read_word_at(source, col);
                    ram.write_word_at(dest, col, word);
                    result.copied_words += 1;
                }
                result.mapped.push((row, spare));
            }
            Err(crate::TlbError::Exhausted { .. }) => result.unmapped.push(row),
            Err(crate::TlbError::RowOutOfRange { .. }) => result.invalid.push(row),
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisram_bist::RowMap;
    use bisram_mem::{row_failure, ArrayOrg, Fault, FaultKind, Word};

    fn org(spares: usize) -> ArrayOrg {
        ArrayOrg::new(256, 8, 4, spares).unwrap()
    }

    #[test]
    fn clean_memory_is_already_good() {
        let mut ram = SramModel::new(org(4));
        let report = self_test_and_repair(&mut ram, &RepairSetup::default());
        assert_eq!(report.outcome, RepairOutcome::AlreadyGood);
        assert_eq!(report.passes, 1);
        assert!(report.pass1_faulty_rows.is_empty());
        assert!(report.operations > 0);
    }

    #[test]
    fn single_faulty_row_repaired_with_one_spare() {
        let o = org(4);
        let mut ram = SramModel::new(o);
        ram.inject_all(row_failure(&o, 9, true));
        let report = self_test_and_repair(&mut ram, &RepairSetup::default());
        assert_eq!(report.outcome, RepairOutcome::Repaired { spares_used: 1 });
        assert_eq!(report.pass1_faulty_rows, vec![9]);
        assert_eq!(report.tlb.map_row(9), o.rows());
        // The repaired memory now works through the map.
        let addr = o.join(9, 0);
        let phys = report.tlb.map_row(9);
        ram.write_word_at(phys, 0, Word::from_u64(0x5A, 8));
        assert_eq!(ram.read_word_at(phys, 0).to_u64(), 0x5A);
        let _ = addr;
    }

    #[test]
    fn repairs_up_to_spare_count_rows() {
        let o = org(4);
        let mut ram = SramModel::new(o);
        for row in [3, 17, 42, 63] {
            ram.inject(Fault::new(o.cell_at(row, 1, 2), FaultKind::StuckAt(true)));
        }
        let report = self_test_and_repair(&mut ram, &RepairSetup::default());
        assert_eq!(report.outcome, RepairOutcome::Repaired { spares_used: 4 });
        assert_eq!(report.pass1_faulty_rows.len(), 4);
    }

    #[test]
    fn too_many_faulty_rows_is_out_of_spares() {
        let o = org(2);
        let mut ram = SramModel::new(o);
        for row in [1, 2, 3] {
            ram.inject(Fault::new(o.cell_at(row, 0, 0), FaultKind::StuckAt(true)));
        }
        let report = self_test_and_repair(&mut ram, &RepairSetup::default());
        assert_eq!(
            report.outcome,
            RepairOutcome::Unsuccessful {
                reason: UnrepairableReason::OutOfSpares {
                    unmapped_rows: 1,
                    surviving_rows: vec![3],
                }
            }
        );
    }

    #[test]
    fn faulty_spare_fails_two_pass_but_iterated_repairs() {
        let o = org(4);
        let build = || {
            let mut ram = SramModel::new(o);
            // Row 5 faulty; spare 0 (the row it will map to) also faulty.
            ram.inject(Fault::new(o.cell_at(5, 0, 0), FaultKind::StuckAt(true)));
            ram.inject(Fault::new(
                o.cell_at(o.rows(), 0, 0),
                FaultKind::StuckAt(false),
            ));
            ram
        };

        // Base two-pass algorithm: Repair Unsuccessful (faulty spare).
        let mut ram = build();
        let two_pass = self_test_and_repair(&mut ram, &RepairSetup::default());
        assert_eq!(
            two_pass.outcome,
            RepairOutcome::Unsuccessful {
                reason: UnrepairableReason::FaultsPersist {
                    surviving_rows: vec![5],
                }
            }
        );

        // Iterated 2k-pass: row 5 is recaptured onto spare 1.
        let mut ram = build();
        let iterated = self_test_and_repair(&mut ram, &RepairSetup::iterated(4));
        assert_eq!(iterated.outcome, RepairOutcome::Repaired { spares_used: 2 });
        assert_eq!(iterated.tlb.map_row(5), o.rows() + 1);
    }

    #[test]
    fn spare_exhaustion_via_faulty_spares() {
        let o = org(2);
        let mut ram = SramModel::new(o);
        // One faulty row but both spares faulty: iterated repair burns
        // through them and runs out.
        ram.inject(Fault::new(o.cell_at(7, 0, 0), FaultKind::StuckAt(true)));
        ram.inject(Fault::new(
            o.cell_at(o.rows(), 0, 0),
            FaultKind::StuckAt(true),
        ));
        ram.inject(Fault::new(
            o.cell_at(o.rows() + 1, 0, 0),
            FaultKind::StuckAt(true),
        ));
        let report = self_test_and_repair(&mut ram, &RepairSetup::iterated(6));
        match report.outcome {
            RepairOutcome::Unsuccessful {
                reason: reason @ UnrepairableReason::OutOfSpares { .. },
            } => {
                // Row 7 is the survivor: both spares burned, still faulty.
                assert_eq!(reason.surviving_rows(), &[7]);
            }
            other => panic!("expected OutOfSpares, got {other:?}"),
        }
    }

    #[test]
    fn outcome_predicates() {
        assert!(RepairOutcome::AlreadyGood.is_usable());
        assert!(!RepairOutcome::AlreadyGood.is_repaired());
        assert!(RepairOutcome::Repaired { spares_used: 1 }.is_repaired());
        assert!(!RepairOutcome::Unsuccessful {
            reason: UnrepairableReason::FaultsPersist {
                surviving_rows: vec![0],
            }
        }
        .is_usable());
    }

    #[test]
    fn surviving_rows_accessor_covers_both_variants() {
        let oos = UnrepairableReason::OutOfSpares {
            unmapped_rows: 2,
            surviving_rows: vec![4, 9],
        };
        assert_eq!(oos.surviving_rows(), &[4, 9]);
        let fp = UnrepairableReason::FaultsPersist {
            surviving_rows: vec![1],
        };
        assert_eq!(fp.surviving_rows(), &[1]);
    }

    #[test]
    fn incremental_repair_preserves_user_data() {
        let o = org(4);
        let mut ram = SramModel::new(o);
        // Fill the regular array with a recognisable pattern.
        for row in 0..o.rows() {
            for col in 0..o.bpc() {
                let value = ((row * o.bpc() + col) & 0xFF) as u64;
                ram.write_word_at(row, col, Word::from_u64(value, o.bpw()));
            }
        }
        // Row 11 develops a stuck-at fault on one bit mid-life.
        ram.inject(Fault::new(o.cell_at(11, 2, 0), FaultKind::StuckAt(false)));

        let mut tlb = Tlb::new(o.rows(), o.spare_rows());
        let result = incremental_repair(&mut ram, &mut tlb, &[11]);
        assert_eq!(result.mapped, vec![(11, 0)]);
        assert!(result.fully_mapped());
        assert!(result.invalid.is_empty());
        assert_eq!(result.copied_words, o.bpc());

        // Every word of row 11 now reads back through the map with its
        // original value (the stuck bit happened to already match the
        // stored data pattern's 0 at that position or was copied as-is;
        // use a column whose data is unaffected to check preservation).
        let phys = tlb.map_row(11);
        assert_eq!(phys, o.rows(), "row must divert to spare 0");
        for col in 0..o.bpc() {
            let expect = ((11 * o.bpc() + col) & 0xFF) as u64;
            let got = ram.read_word_at(phys, col).to_u64();
            if col != 2 {
                assert_eq!(got, expect, "col {col} must survive the repair");
            }
        }
        // Other rows untouched.
        assert_eq!(ram.read_word_at(5, 1).to_u64(), (5 * o.bpc() + 1) as u64);
    }

    #[test]
    fn incremental_repair_chains_through_previous_spare() {
        // A row repaired once whose spare later dies must copy from the
        // spare (its live location), not from the long-dead regular row.
        let o = org(4);
        let mut ram = SramModel::new(o);
        let mut tlb = Tlb::new(o.rows(), o.spare_rows());

        let first = incremental_repair(&mut ram, &mut tlb, &[20]);
        assert_eq!(first.mapped, vec![(20, 0)]);
        // User writes new data through the map after the first repair.
        let phys0 = tlb.map_row(20);
        ram.write_word_at(phys0, 3, Word::from_u64(0xAB, o.bpw()));

        let second = incremental_repair(&mut ram, &mut tlb, &[20]);
        assert_eq!(second.mapped, vec![(20, 1)]);
        let phys1 = tlb.map_row(20);
        assert_eq!(phys1, o.rows() + 1);
        assert_eq!(
            ram.read_word_at(phys1, 3).to_u64(),
            0xAB,
            "post-repair writes must survive the second migration"
        );
    }

    #[test]
    fn incremental_repair_degrades_without_panicking() {
        let o = org(1);
        let mut ram = SramModel::new(o);
        let mut tlb = Tlb::new(o.rows(), o.spare_rows());
        // Two faulty rows, one spare, plus a bogus address: everything is
        // accounted for, nothing aborts.
        let result = incremental_repair(&mut ram, &mut tlb, &[8, 40, 9999]);
        assert_eq!(result.mapped, vec![(8, 0)]);
        assert_eq!(result.unmapped, vec![40]);
        assert_eq!(result.invalid, vec![9999]);
        assert!(!result.fully_mapped());
        // The memory still serves: mapped row diverted, unmapped row
        // passes through.
        assert_eq!(tlb.map_row(8), o.rows());
        assert_eq!(tlb.map_row(40), 40);
    }

    #[test]
    #[should_panic(expected = "capture + verify")]
    fn iterated_needs_two_passes() {
        let _ = RepairSetup::iterated(1);
    }
}
