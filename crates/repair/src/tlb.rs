//! The fault-address translation lookaside buffer.

use bisram_bist::RowMap;

/// Error raised by [`Tlb::capture`].
///
/// Capturing is the one TLB operation that can fail at run time, and an
/// in-field repair engine must survive both failure modes without
/// aborting: spare exhaustion is an expected end-of-life event, and a
/// row address outside the regular array is a caller bug that should be
/// reported, not turned into a panic mid-simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbError {
    /// Every spare row is already assigned.
    Exhausted {
        /// Number of spares the TLB manages (all in use).
        spares: usize,
    },
    /// The row address is not a regular-array row (spare-region and
    /// beyond-array addresses cannot be captured).
    RowOutOfRange {
        /// Offending row address.
        row: usize,
        /// Number of regular rows the TLB serves.
        regular_rows: usize,
    },
}

impl std::fmt::Display for TlbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TlbError::Exhausted { spares } => {
                write!(f, "all {spares} spare rows are already assigned")
            }
            TlbError::RowOutOfRange { row, regular_rows } => write!(
                f,
                "row {row} is outside the regular array (0..{regular_rows})"
            ),
        }
    }
}

impl std::error::Error for TlbError {}

/// The BISR TLB: a small CAM associating captured faulty row addresses
/// with spare rows in a predetermined, strictly increasing order.
///
/// * **Capture** (pass 1, and later passes for faulty spares): the next
///   free spare — always the lowest unassigned index — is bound to the
///   failing logical row. The spare sequence is therefore strictly
///   increasing in capture order, the invariant paper §VI relies on.
/// * **Lookup** (pass 2 and normal operation): the incoming row address
///   is compared *in parallel* with every stored address; among multiple
///   matches the most recently captured entry wins, so a row whose first
///   spare turned out faulty resolves to its replacement spare.
///
/// ```
/// use bisram_repair::Tlb;
/// use bisram_bist::RowMap;
///
/// let mut tlb = Tlb::new(1024, 4);
/// tlb.capture(17)?;          // row 17 -> spare 0 (physical row 1024)
/// tlb.capture(900)?;         // row 900 -> spare 1
/// assert_eq!(tlb.map_row(17), 1024);
/// assert_eq!(tlb.map_row(900), 1025);
/// assert_eq!(tlb.map_row(3), 3); // unmapped rows pass through
///
/// // Spare 0 turns out faulty: recapture row 17.
/// tlb.capture(17)?;          // row 17 -> spare 2; latest entry wins
/// assert_eq!(tlb.map_row(17), 1026);
/// # Ok::<(), bisram_repair::TlbError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tlb {
    regular_rows: usize,
    spares: usize,
    /// `entries[i]` = logical row mapped to spare `i`. Index order *is*
    /// capture order — the strictly increasing sequence.
    entries: Vec<usize>,
}

impl Tlb {
    /// Creates an empty TLB for an array with `regular_rows` rows and
    /// `spares` spare rows.
    pub fn new(regular_rows: usize, spares: usize) -> Self {
        Tlb {
            regular_rows,
            spares,
            entries: Vec::with_capacity(spares),
        }
    }

    /// Number of spare rows managed.
    pub fn spares(&self) -> usize {
        self.spares
    }

    /// Spares already assigned.
    pub fn used(&self) -> usize {
        self.entries.len()
    }

    /// Spares still free.
    pub fn free(&self) -> usize {
        self.spares - self.entries.len()
    }

    /// The capture log: `(logical_row, spare_index)` pairs in capture
    /// order.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.entries.iter().enumerate().map(|(i, &row)| (row, i))
    }

    /// Binds the next spare (strictly increasing) to `row`.
    ///
    /// Capturing the same row twice deliberately allocates a *new* spare:
    /// that is exactly the faulty-spare replacement path of the iterated
    /// repair.
    ///
    /// # Errors
    ///
    /// [`TlbError::Exhausted`] when every spare is already assigned;
    /// [`TlbError::RowOutOfRange`] when `row` is not a regular row
    /// address. Neither condition panics — a lifetime simulation feeding
    /// fuzzed fault patterns through the repair flow must be able to log
    /// the failure and continue.
    pub fn capture(&mut self, row: usize) -> Result<usize, TlbError> {
        if row >= self.regular_rows {
            return Err(TlbError::RowOutOfRange {
                row,
                regular_rows: self.regular_rows,
            });
        }
        if self.entries.len() >= self.spares {
            return Err(TlbError::Exhausted { spares: self.spares });
        }
        self.entries.push(row);
        Ok(self.entries.len() - 1)
    }

    /// Physical row of spare `i`.
    pub fn spare_row(&self, i: usize) -> usize {
        self.regular_rows + i
    }

    /// True when `row` currently diverts to a spare.
    pub fn is_mapped(&self, row: usize) -> bool {
        self.entries.contains(&row)
    }
}

impl RowMap for Tlb {
    /// The parallel CAM lookup: latest matching entry wins; unmatched
    /// rows pass through unchanged.
    fn map_row(&self, row: usize) -> usize {
        match self.entries.iter().rposition(|&r| r == row) {
            Some(i) => self.regular_rows + i,
            None => row,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisram_rng::rngs::StdRng;
    use bisram_rng::{Rng, SeedableRng};

    #[test]
    fn empty_tlb_is_identity() {
        let tlb = Tlb::new(64, 4);
        for row in 0..64 {
            assert_eq!(tlb.map_row(row), row);
        }
        assert_eq!(tlb.free(), 4);
    }

    #[test]
    fn capture_assigns_strictly_increasing_spares() {
        let mut tlb = Tlb::new(64, 4);
        let mut last = None;
        for row in [10, 3, 50] {
            let spare = tlb.capture(row).expect("spares available");
            if let Some(prev) = last {
                assert!(spare > prev, "spare sequence must strictly increase");
            }
            last = Some(spare);
        }
        assert_eq!(tlb.used(), 3);
        assert_eq!(tlb.map_row(3), 65);
    }

    #[test]
    fn exhaustion_reports_error() {
        let mut tlb = Tlb::new(64, 2);
        tlb.capture(1).expect("spare 0 free");
        tlb.capture(2).expect("spare 1 free");
        let err = tlb.capture(3).expect_err("no spares left");
        assert_eq!(err, TlbError::Exhausted { spares: 2 });
        assert!(err.to_string().contains('2'));
        // The failed capture changed nothing.
        assert_eq!(tlb.used(), 2);
        assert_eq!(tlb.map_row(3), 3);
    }

    #[test]
    fn out_of_range_capture_is_a_typed_error_not_a_panic() {
        let mut tlb = Tlb::new(64, 4);
        let err = tlb.capture(64).expect_err("row 64 is the first spare");
        assert_eq!(
            err,
            TlbError::RowOutOfRange {
                row: 64,
                regular_rows: 64
            }
        );
        assert!(err.to_string().contains("64"));
        // State untouched; in-range captures still work afterwards.
        assert_eq!(tlb.used(), 0);
        assert_eq!(tlb.capture(63), Ok(0));
    }

    #[test]
    fn out_of_range_beats_exhaustion_in_diagnosis() {
        // A full TLB fed a bad address reports the address problem, the
        // more specific diagnosis.
        let mut tlb = Tlb::new(4, 1);
        tlb.capture(0).expect("spare 0 free");
        assert!(matches!(
            tlb.capture(9),
            Err(TlbError::RowOutOfRange { row: 9, .. })
        ));
    }

    #[test]
    fn recapture_moves_row_forward() {
        let mut tlb = Tlb::new(64, 4);
        tlb.capture(7).expect("spare 0 free");
        assert_eq!(tlb.map_row(7), 64);
        tlb.capture(7).expect("spare 1 free");
        assert_eq!(tlb.map_row(7), 65, "latest entry must win");
        // The stale entry still occupies spare 0 (hardware does not
        // reclaim), so capacity shrinks accordingly.
        assert_eq!(tlb.free(), 2);
        assert!(tlb.is_mapped(7));
    }

    #[test]
    fn entries_report_capture_order() {
        let mut tlb = Tlb::new(64, 4);
        tlb.capture(9).expect("spare 0 free");
        tlb.capture(2).expect("spare 1 free");
        let log: Vec<_> = tlb.entries().collect();
        assert_eq!(log, vec![(9, 0), (2, 1)]);
    }

    // Deterministic seeded sweeps over random capture sequences
    // (duplicates allowed in the first, deduplicated in the second).

    #[test]
    fn mapped_rows_land_in_spare_region() {
        let mut rng = StdRng::seed_from_u64(0x71B_0001);
        for case in 0..256 {
            let rows: Vec<usize> = (0..rng.gen_range(1usize..8))
                .map(|_| rng.gen_range(0usize..100))
                .collect();
            let mut tlb = Tlb::new(100, 8);
            for &r in &rows {
                tlb.capture(r).expect("at most 7 captures into 8 spares");
            }
            for &r in &rows {
                let m = tlb.map_row(r);
                assert!(
                    (100..108).contains(&m),
                    "case {case}: rows={rows:?} row {r} mapped to {m}"
                );
            }
            // Unmapped rows are untouched.
            for r in 0..100 {
                if !rows.contains(&r) {
                    assert_eq!(tlb.map_row(r), r, "case {case}: rows={rows:?}");
                }
            }
        }
    }

    #[test]
    fn distinct_rows_get_distinct_spares() {
        let mut rng = StdRng::seed_from_u64(0x71B_0002);
        for case in 0..256 {
            let want = rng.gen_range(1usize..8);
            let mut rows = std::collections::HashSet::new();
            while rows.len() < want {
                rows.insert(rng.gen_range(0usize..100));
            }
            let mut tlb = Tlb::new(100, 8);
            for &r in &rows {
                tlb.capture(r).expect("at most 7 captures into 8 spares");
            }
            let mapped: std::collections::HashSet<_> =
                rows.iter().map(|&r| tlb.map_row(r)).collect();
            assert_eq!(mapped.len(), rows.len(), "case {case}: rows={rows:?}");
        }
    }

    #[test]
    fn fuzzed_capture_sequences_never_panic() {
        // The robustness contract behind the typed errors: ANY sequence
        // of capture calls — in-range, out-of-range, past exhaustion —
        // returns Ok or Err, never aborts, and leaves the map usable.
        let mut rng = StdRng::seed_from_u64(0x71B_0003);
        for _case in 0..256 {
            let mut tlb = Tlb::new(32, rng.gen_range(0usize..4));
            for _ in 0..rng.gen_range(0usize..12) {
                let row = rng.gen_range(0usize..64); // half out of range
                let _ = tlb.capture(row);
            }
            assert!(tlb.used() <= tlb.spares());
            for row in 0..32 {
                let m = tlb.map_row(row);
                assert!(m < 32 + tlb.spares());
            }
        }
    }
}
