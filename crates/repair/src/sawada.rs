//! The Sawada et al. (1989) baseline: address-comparison repair with a
//! single fail-address register.
//!
//! Paper §III: "This was a very simple scheme based upon the address
//! comparison method; that is, registering a failed address (in a fail
//! address register) during test mode and comparing this address with an
//! accessed address during normal mode ... This scheme was originally
//! designed to repair single address location faults, because only one
//! faulty address location could be registered."

use bisram_bist::engine::{run_march, MarchConfig};
use bisram_bist::march::MarchTest;
use bisram_mem::SramModel;

/// Result of applying the Sawada scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SawadaResult {
    /// The word address latched in the fail-address register (the first
    /// failure observed), if any.
    pub fail_address: Option<usize>,
    /// Distinct faulty word addresses the test observed in total.
    pub faulty_addresses: usize,
    /// Whether the scheme repairs this memory (at most one faulty word
    /// address, and the spare word is assumed good).
    pub repaired: bool,
}

/// Runs `test` and applies the single-register repair rule.
pub fn evaluate(ram: &mut SramModel, test: &MarchTest, march: &MarchConfig) -> SawadaResult {
    let outcome = run_march(test, ram, march, None);
    let mut addrs: Vec<usize> = outcome.fails().iter().map(|f| f.addr).collect();
    let fail_address = addrs.first().copied();
    addrs.sort_unstable();
    addrs.dedup();
    SawadaResult {
        fail_address,
        faulty_addresses: addrs.len(),
        repaired: addrs.len() <= 1,
    }
}

/// Normal-mode access translation: the registered address diverts to the
/// spare memory module; everything else passes through.
///
/// ```
/// use bisram_repair::sawada::translate;
/// assert_eq!(translate(Some(9), 9, 1000), 1000);
/// assert_eq!(translate(Some(9), 8, 1000), 8);
/// assert_eq!(translate(None, 9, 1000), 9);
/// ```
pub fn translate(fail_address: Option<usize>, addr: usize, spare_location: usize) -> usize {
    match fail_address {
        Some(f) if f == addr => spare_location,
        _ => addr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisram_bist::march;
    use bisram_mem::{ArrayOrg, Fault, FaultKind};

    fn ram() -> SramModel {
        SramModel::new(ArrayOrg::new(256, 8, 4, 0).unwrap())
    }

    #[test]
    fn clean_memory_needs_no_repair() {
        let mut m = ram();
        let r = evaluate(&mut m, &march::ifa9(), &MarchConfig::default());
        assert_eq!(r.fail_address, None);
        assert!(r.repaired);
        assert_eq!(r.faulty_addresses, 0);
    }

    #[test]
    fn single_fault_repaired() {
        let mut m = ram();
        let cell = m.org().cell_at(6, 2, 1);
        m.inject(Fault::new(cell, FaultKind::StuckAt(true)));
        let r = evaluate(&mut m, &march::ifa9(), &MarchConfig::default());
        assert_eq!(r.fail_address, Some(m.org().join(6, 2)));
        assert_eq!(r.faulty_addresses, 1);
        assert!(r.repaired);
    }

    #[test]
    fn two_faults_defeat_the_single_register() {
        let mut m = ram();
        m.inject(Fault::new(m.org().cell_at(1, 0, 0), FaultKind::StuckAt(true)));
        m.inject(Fault::new(m.org().cell_at(30, 3, 5), FaultKind::StuckAt(false)));
        let r = evaluate(&mut m, &march::ifa9(), &MarchConfig::default());
        assert_eq!(r.faulty_addresses, 2);
        assert!(!r.repaired, "Sawada repairs only single address faults");
    }

    #[test]
    fn translation_diverts_only_registered_address() {
        for a in 0..20 {
            let t = translate(Some(7), a, 999);
            if a == 7 {
                assert_eq!(t, 999);
            } else {
                assert_eq!(t, a);
            }
        }
    }
}
