//! Chip-level spare allocation under an area budget.
//!
//! A chip instantiates many heterogeneous bisram macros; each macro's
//! diagnosis produces a *demand* (how many faulty rows need replacing),
//! and the chip has a finite redundancy area budget to spend across all
//! of them. The allocator's objective is lexicographic:
//!
//! 1. maximize the total number of rows repaired chip-wide (every
//!    repaired row is a row that no longer produces field errors),
//! 2. among plans repairing that many rows, minimize area spent,
//! 3. break remaining ties deterministically (lowest macro index, then
//!    lowest ordinal) so reports are reproducible bit-for-bit.
//!
//! Because every row repair is one unit of value and costs a fixed
//! per-macro area, the greedy that grants unit row repairs in ascending
//! `(cost, macro, ordinal)` order is exactly optimal — the classical
//! exchange argument: any optimal plan that skips a cheapest affordable
//! unit can swap one of its units for it without losing value or gaining
//! cost. [`allocate_exact`] is the brute-force reference used by tests
//! to certify the greedy on every small case.

/// One macro's repair demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacroDemand {
    /// Index of the macro on the chip.
    pub macro_index: usize,
    /// Faulty rows diagnosis wants replaced.
    pub rows_needed: usize,
    /// Area cost of granting one spare row in this macro (its row pitch
    /// × width, in budget units).
    pub row_cost: u64,
    /// Spare rows physically available in this macro — grants beyond
    /// this are impossible no matter the budget.
    pub max_rows: usize,
}

impl MacroDemand {
    /// Rows that could possibly be granted: `min(rows_needed, max_rows)`.
    pub fn grantable(&self) -> usize {
        self.rows_needed.min(self.max_rows)
    }
}

/// Rows granted to one macro.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// Index of the macro on the chip.
    pub macro_index: usize,
    /// Rows granted (≤ the macro's grantable demand).
    pub rows: usize,
}

/// A complete allocation plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocationPlan {
    /// Per-macro grants, ascending by macro index, zero-row grants
    /// included for every demanding macro (explicit is auditable).
    pub grants: Vec<Grant>,
    /// Budget supplied.
    pub budget: u64,
    /// Budget actually spent.
    pub spent: u64,
    /// Total rows requested chip-wide (capped per macro at its spares).
    pub rows_requested: usize,
    /// Total rows granted chip-wide.
    pub rows_granted: usize,
}

impl AllocationPlan {
    /// True when every grantable row was granted.
    pub fn fully_granted(&self) -> bool {
        self.rows_granted == self.rows_requested
    }

    /// The grant for one macro (0 when the macro demanded nothing).
    pub fn rows_for(&self, macro_index: usize) -> usize {
        self.grants
            .iter()
            .find(|g| g.macro_index == macro_index)
            .map_or(0, |g| g.rows)
    }
}

/// Grants unit row repairs in ascending `(row_cost, macro_index,
/// ordinal)` order while the budget lasts. Optimal for the lexicographic
/// maximize-rows-then-minimize-cost objective (see module docs).
pub fn allocate_greedy(demands: &[MacroDemand], budget: u64) -> AllocationPlan {
    // Unit items, canonically ordered.
    let mut items: Vec<(u64, usize, usize)> = Vec::new();
    for d in demands {
        for ordinal in 0..d.grantable() {
            items.push((d.row_cost, d.macro_index, ordinal));
        }
    }
    items.sort_unstable();

    let mut grants: Vec<Grant> = demands
        .iter()
        .map(|d| Grant {
            macro_index: d.macro_index,
            rows: 0,
        })
        .collect();
    grants.sort_unstable_by_key(|g| g.macro_index);
    let mut spent = 0u64;
    let mut rows_granted = 0usize;
    for (cost, macro_index, _) in items {
        if spent + cost > budget {
            // Units are sorted by cost: a costlier later unit cannot fit
            // either, but an equal-cost one cannot fit *a fortiori* —
            // stopping at the first unaffordable unit is exact.
            break;
        }
        spent += cost;
        rows_granted += 1;
        if let Some(g) = grants.iter_mut().find(|g| g.macro_index == macro_index) {
            g.rows += 1;
        }
    }
    AllocationPlan {
        grants,
        budget,
        spent,
        rows_requested: demands.iter().map(|d| d.grantable()).sum(),
        rows_granted,
    }
}

/// Brute-force reference: enumerates every per-macro grant combination
/// and keeps the lexicographically best `(rows_granted, -spent,
/// grant-vector matching greedy's fill order)` plan. Exponential — test
/// use only, on small cases.
///
/// # Panics
///
/// Panics when the search space exceeds 2²⁰ combinations.
pub fn allocate_exact(demands: &[MacroDemand], budget: u64) -> AllocationPlan {
    let space: usize = demands.iter().map(|d| d.grantable() + 1).product();
    assert!(space <= 1 << 20, "exact reference is for small cases only");

    let mut sorted: Vec<&MacroDemand> = demands.iter().collect();
    sorted.sort_unstable_by_key(|d| (d.row_cost, d.macro_index));

    let mut best: Option<(usize, u64, Vec<usize>)> = None;
    let mut counters = vec![0usize; demands.len()];
    loop {
        let spent: u64 = counters
            .iter()
            .zip(sorted.iter())
            .map(|(&c, d)| c as u64 * d.row_cost)
            .sum();
        if spent <= budget {
            let rows: usize = counters.iter().sum();
            // Canonical tie-break: among equal (rows, spent), prefer the
            // plan that fills cheaper/lower-indexed macros first — i.e.
            // the lexicographically *largest* counter vector in the
            // (cost, macro_index)-sorted macro order.
            let candidate = (rows, spent, counters.clone());
            let better = match &best {
                None => true,
                Some((r, s, c)) => {
                    (rows, std::cmp::Reverse(spent), &counters) > (*r, std::cmp::Reverse(*s), c)
                }
            };
            if better {
                best = Some(candidate);
            }
        }
        // Odometer increment over 0..=grantable per macro.
        let mut i = 0;
        loop {
            if i == counters.len() {
                let (rows_granted, spent, counters) =
                    best.unwrap_or((0, 0, vec![0; demands.len()]));
                let mut grants: Vec<Grant> = sorted
                    .iter()
                    .zip(counters.iter())
                    .map(|(d, &rows)| Grant {
                        macro_index: d.macro_index,
                        rows,
                    })
                    .collect();
                grants.sort_unstable_by_key(|g| g.macro_index);
                return AllocationPlan {
                    grants,
                    budget,
                    spent,
                    rows_requested: demands.iter().map(|d| d.grantable()).sum(),
                    rows_granted,
                };
            }
            counters[i] += 1;
            if counters[i] <= sorted[i].grantable() {
                break;
            }
            counters[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(macro_index: usize, rows_needed: usize, row_cost: u64, max_rows: usize) -> MacroDemand {
        MacroDemand {
            macro_index,
            rows_needed,
            row_cost,
            max_rows,
        }
    }

    #[test]
    fn unlimited_budget_grants_everything() {
        let demands = [demand(0, 3, 10, 4), demand(1, 2, 25, 2), demand(2, 0, 5, 4)];
        let plan = allocate_greedy(&demands, u64::MAX);
        assert!(plan.fully_granted());
        assert_eq!(plan.rows_granted, 5);
        assert_eq!(plan.spent, 3 * 10 + 2 * 25);
        assert_eq!(plan.rows_for(0), 3);
        assert_eq!(plan.rows_for(1), 2);
        assert_eq!(plan.rows_for(2), 0);
    }

    #[test]
    fn demand_is_capped_by_physical_spares() {
        let demands = [demand(0, 10, 1, 4)];
        let plan = allocate_greedy(&demands, u64::MAX);
        assert_eq!(plan.rows_requested, 4);
        assert_eq!(plan.rows_granted, 4);
        assert!(plan.fully_granted(), "grantable demand fully met");
    }

    #[test]
    fn tight_budget_prefers_cheap_rows() {
        // Budget 30: three rows @10 beat one row @25.
        let demands = [demand(0, 1, 25, 2), demand(1, 3, 10, 4)];
        let plan = allocate_greedy(&demands, 30);
        assert_eq!(plan.rows_granted, 3);
        assert_eq!(plan.rows_for(1), 3);
        assert_eq!(plan.rows_for(0), 0);
        assert_eq!(plan.spent, 30);
    }

    #[test]
    fn zero_budget_grants_nothing() {
        let plan = allocate_greedy(&[demand(0, 2, 1, 2)], 0);
        assert_eq!(plan.rows_granted, 0);
        assert_eq!(plan.spent, 0);
        assert_eq!(plan.grants, vec![Grant { macro_index: 0, rows: 0 }]);
    }

    #[test]
    fn greedy_matches_exact_on_exhaustive_small_cases() {
        // Every budget from 0 to worst-case spend over a seeded sweep of
        // small demand sets: the greedy must equal the reference plan
        // exactly — same rows, same spend, same per-macro grants.
        use bisram_rng::rngs::StdRng;
        use bisram_rng::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xA110C);
        for case in 0..60 {
            let n = rng.gen_range(1..5usize);
            let demands: Vec<MacroDemand> = (0..n)
                .map(|i| {
                    demand(
                        i,
                        rng.gen_range(0..4usize),
                        rng.gen_range(1..6u64),
                        rng.gen_range(0..4usize),
                    )
                })
                .collect();
            let max_spend: u64 = demands
                .iter()
                .map(|d| d.grantable() as u64 * d.row_cost)
                .sum();
            for budget in 0..=max_spend + 1 {
                let greedy = allocate_greedy(&demands, budget);
                let exact = allocate_exact(&demands, budget);
                assert_eq!(
                    greedy, exact,
                    "case {case} budget {budget} demands {demands:?}"
                );
            }
        }
    }

    #[test]
    fn equal_cost_ties_break_by_macro_index() {
        let demands = [demand(1, 2, 10, 2), demand(0, 2, 10, 2)];
        let plan = allocate_greedy(&demands, 30);
        assert_eq!(plan.rows_granted, 3);
        assert_eq!(plan.rows_for(0), 2, "lower index fills first");
        assert_eq!(plan.rows_for(1), 1);
    }

    #[test]
    fn deterministic() {
        let demands = [demand(0, 3, 7, 3), demand(1, 1, 2, 1), demand(2, 5, 3, 4)];
        assert_eq!(allocate_greedy(&demands, 20), allocate_greedy(&demands, 20));
    }
}
