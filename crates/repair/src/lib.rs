//! Built-in self-repair for the BISRAMGEN reproduction.
//!
//! Paper §VI: faulty row addresses detected by BIST are stored in a
//! translation lookaside buffer (TLB) that "associates a sequence of
//! faulty addresses with a unique, *predetermined, strictly increasing*
//! sequence of redundant addresses ... In the second pass, the incoming
//! address is compared in parallel with all the stored addresses in the
//! TLB. If a match is found, an address diversion occurs to a redundant
//! location ... The strictly increasing sequence of redundant addresses
//! guarantees that, provided enough spares are available, any faulty
//! (nonspare or spare) row can be replaced."
//!
//! This crate implements:
//!
//! * [`Tlb`] — the fault-address CAM with the strictly-increasing spare
//!   assignment and latest-entry-wins lookup (which is what makes the
//!   iterated `2^k`-pass repair of faulty spares converge),
//! * [`flow`] — the two-pass self-test-and-repair controller flow,
//!   including the `Repair Unsuccessful` outcomes and the iterated
//!   variant,
//! * [`sawada`] — the 1989 Sawada et al. baseline (a single fail-address
//!   register),
//! * [`chen_sunada`] — the 1993 Chen–Sunada hierarchical baseline (two
//!   fault-capture blocks per subblock plus a top-level fault assembler),
//! * [`mod@column`] — column-failure detection through redundancy swamping,
//! * [`budget`] — chip-level spare allocation across many macros under
//!   an area budget (greedy, certified against an exact reference).
//!
//! # Examples
//!
//! ```
//! use bisram_mem::{ArrayOrg, SramModel, row_failure};
//! use bisram_repair::flow::{self, RepairSetup};
//!
//! let org = ArrayOrg::new(1024, 8, 4, 4)?;
//! let mut ram = SramModel::new(org);
//! ram.inject_all(row_failure(&org, 17, true));
//!
//! let report = flow::self_test_and_repair(&mut ram, &RepairSetup::default());
//! assert!(report.outcome.is_repaired());
//! # Ok::<(), bisram_mem::OrgError>(())
//! ```

// Library code must stay panic-free on its fallible paths: the in-field
// lifetime engine drives this crate with arbitrary fault patterns and
// has to keep running. Intentional invariants are documented `# Panics`
// sections; casual unwraps are lint errors under `-D warnings` in CI.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod budget;
pub mod chen_sunada;
pub mod column;
pub mod flow;
pub mod sawada;
mod tlb;

pub use tlb::{Tlb, TlbError};
