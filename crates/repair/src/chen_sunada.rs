//! The Chen–Sunada (1993) baseline: hierarchical self-repair with two
//! fault-capture blocks per subblock and a top-level fault assembler.
//!
//! Paper §III: "the entire system is composed of a number of subblocks
//! ... This circuit, which contains two fault capture blocks, is capable
//! of storing and repairing at most two faults at different address
//! locations [per subblock] ... Failure to repair a subblock results in
//! exclusion of the subblock from the system using fault-tolerant logic
//! (called fault assembler), implemented at the top level, to divert
//! accesses from dead blocks to functional blocks."
//!
//! The comparison points the paper makes (and which the repair-capacity
//! bench reproduces):
//!
//! 1. the sequential (not parallel) compare of the two fault-capture
//!    entries adds an access-time penalty,
//! 2. only two faulty addresses are repairable per subblock, against
//!    `bpc·s` word addresses for BISRAMGEN's row repair,
//! 3. the data generator applies a single background, weakening coverage
//!    of intra-word coupling (measured in `bisram_bist::coverage`).

use bisram_bist::engine::{run_march, MarchConfig};
use bisram_bist::march::MarchTest;
use bisram_mem::SramModel;

/// Configuration of the hierarchical scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChenSunadaConfig {
    /// Words per lowest-level subblock.
    pub words_per_subblock: usize,
    /// Fault-capture blocks (repairable addresses) per subblock — two in
    /// the published design.
    pub captures_per_subblock: usize,
    /// Spare subblocks available to the top-level fault assembler.
    pub spare_subblocks: usize,
}

impl ChenSunadaConfig {
    /// The published configuration for a memory of `words` words split
    /// into `subblocks` subblocks with `spare_subblocks` spares.
    ///
    /// # Panics
    ///
    /// Panics unless `words` divides evenly into `subblocks`.
    pub fn new(words: usize, subblocks: usize, spare_subblocks: usize) -> Self {
        assert!(
            subblocks > 0 && words.is_multiple_of(subblocks),
            "words must split evenly into subblocks"
        );
        ChenSunadaConfig {
            words_per_subblock: words / subblocks,
            captures_per_subblock: 2,
            spare_subblocks,
        }
    }

    /// Sequential compares on the normal-mode access path (one per fault
    /// capture block) — the delay-penalty point of the paper's critique.
    /// BISRAMGEN's TLB does one parallel compare instead.
    pub fn sequential_compares(&self) -> usize {
        self.captures_per_subblock
    }
}

/// Result of applying the hierarchical scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChenSunadaResult {
    /// Distinct faulty word addresses observed.
    pub faulty_addresses: usize,
    /// Subblocks whose fault count exceeded the capture capacity.
    pub dead_subblocks: Vec<usize>,
    /// Whether the memory is repaired: every overflowing subblock could
    /// be diverted to a (fault-free) spare subblock.
    pub repaired: bool,
}

/// Runs `test` and applies the subblock repair rule.
pub fn evaluate(
    ram: &mut SramModel,
    test: &MarchTest,
    march: &MarchConfig,
    cfg: &ChenSunadaConfig,
) -> ChenSunadaResult {
    let outcome = run_march(test, ram, march, None);
    let mut addrs: Vec<usize> = outcome.fails().iter().map(|f| f.addr).collect();
    addrs.sort_unstable();
    addrs.dedup();

    let mut per_block: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for &a in &addrs {
        *per_block.entry(a / cfg.words_per_subblock).or_default() += 1;
    }
    let mut dead: Vec<usize> = per_block
        .iter()
        .filter(|(_, &n)| n > cfg.captures_per_subblock)
        .map(|(&b, _)| b)
        .collect();
    dead.sort_unstable();
    let repaired = dead.len() <= cfg.spare_subblocks;
    ChenSunadaResult {
        faulty_addresses: addrs.len(),
        dead_subblocks: dead,
        repaired,
    }
}

/// Maximum faulty word addresses each scheme tolerates in one subblock of
/// `bpc`-way column-multiplexed rows: BISRAMGEN repairs whole rows, so
/// with `spares` spare rows it absorbs up to `bpc · spares` faulty words
/// (when they fall on few rows), against the fixed capture capacity here.
/// This is comparison point 3 of paper §III.
pub fn repair_capacity_comparison(bpc: usize, spares: usize) -> (usize, usize) {
    (bpc * spares, 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisram_bist::march;
    use bisram_mem::{ArrayOrg, Fault, FaultKind};

    fn ram() -> SramModel {
        SramModel::new(ArrayOrg::new(256, 8, 4, 0).unwrap())
    }

    fn cfg() -> ChenSunadaConfig {
        ChenSunadaConfig::new(256, 8, 1) // 32 words per subblock, 1 spare block
    }

    #[test]
    fn two_faults_in_one_subblock_are_repairable() {
        let mut m = ram();
        // Addresses 0 and 5 are in subblock 0.
        m.inject(Fault::new(m.org().cell_at(0, 0, 0), FaultKind::StuckAt(true)));
        m.inject(Fault::new(m.org().cell_at(1, 1, 2), FaultKind::StuckAt(true)));
        let r = evaluate(&mut m, &march::ifa9(), &MarchConfig::default(), &cfg());
        assert_eq!(r.faulty_addresses, 2);
        assert!(r.dead_subblocks.is_empty());
        assert!(r.repaired);
    }

    #[test]
    fn three_faults_kill_a_subblock_but_assembler_saves_it() {
        let mut m = ram();
        for (row, col) in [(0, 0), (1, 1), (2, 2)] {
            m.inject(Fault::new(
                m.org().cell_at(row, col, 0),
                FaultKind::StuckAt(true),
            ));
        }
        let r = evaluate(&mut m, &march::ifa9(), &MarchConfig::default(), &cfg());
        assert_eq!(r.dead_subblocks, vec![0]);
        assert!(r.repaired, "one dead block, one spare block");
    }

    #[test]
    fn two_dead_subblocks_exceed_one_spare_block() {
        let mut m = ram();
        // Three faults in subblock 0 (rows 0..8) and three in subblock 4
        // (rows 32..40).
        for row in [0, 1, 2, 32, 33, 34] {
            m.inject(Fault::new(
                m.org().cell_at(row, 0, 0),
                FaultKind::StuckAt(true),
            ));
        }
        let r = evaluate(&mut m, &march::ifa9(), &MarchConfig::default(), &cfg());
        assert_eq!(r.dead_subblocks.len(), 2);
        assert!(!r.repaired);
    }

    #[test]
    fn capacity_comparison_favours_row_repair() {
        let (bisramgen, chen) = repair_capacity_comparison(8, 4);
        assert_eq!(bisramgen, 32);
        assert_eq!(chen, 2);
        assert!(bisramgen > chen);
    }

    #[test]
    fn sequential_compare_count() {
        assert_eq!(cfg().sequential_compares(), 2);
    }

    #[test]
    #[should_panic(expected = "evenly")]
    fn ragged_subblocks_rejected() {
        ChenSunadaConfig::new(100, 3, 1);
    }
}
