//! Column-failure detection by redundancy swamping.
//!
//! Paper §VI: "If a column is faulty, the row redundancy will be quickly
//! swamped because every single word on a faulty column will be found to
//! be faulty. Also, in the second pass of our BIST approach, a 'Repair
//! Unsuccessful' signal will be produced ... Thus column failures can be
//! detected but not directly repaired in our approach." (The paper
//! deliberately omits column repair circuitry to keep the access path
//! untouched.)

use bisram_bist::engine::MarchOutcome;
use bisram_mem::ArrayOrg;

/// Diagnosis of a first-pass fail log for column-failure signatures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDiagnosis {
    /// True when the number of faulty rows exceeds the spare-row budget —
    /// the swamping symptom.
    pub redundancy_swamped: bool,
    /// Column-select values whose failures span at least half the rows —
    /// the signature of a broken bitline pair.
    pub suspect_column_selects: Vec<usize>,
}

impl ColumnDiagnosis {
    /// True when the fail pattern points at a column failure rather than
    /// scattered cell defects.
    pub fn is_column_failure(&self) -> bool {
        self.redundancy_swamped && !self.suspect_column_selects.is_empty()
    }
}

/// Diagnoses a pass-1 march outcome.
///
/// A full-column failure at column-select `c` makes every word address
/// congruent to `c` (mod `bpc`) fail — i.e. one failing word per row, all
/// sharing the column-select field. We flag a column-select as suspect
/// when at least half the rows fail at it.
pub fn diagnose(outcome: &MarchOutcome, org: &ArrayOrg) -> ColumnDiagnosis {
    let faulty_rows = outcome.faulty_rows();
    let redundancy_swamped = faulty_rows.len() > org.spare_rows();

    // Distinct failing rows per column-select.
    let mut rows_per_col: Vec<std::collections::HashSet<usize>> =
        vec![std::collections::HashSet::new(); org.bpc()];
    for f in outcome.fails() {
        rows_per_col[f.addr % org.bpc()].insert(f.row);
    }
    let threshold = org.rows().div_ceil(2);
    let suspect_column_selects: Vec<usize> = rows_per_col
        .iter()
        .enumerate()
        .filter(|(_, rows)| rows.len() >= threshold)
        .map(|(c, _)| c)
        .collect();

    ColumnDiagnosis {
        redundancy_swamped,
        suspect_column_selects,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisram_bist::engine::{run_march, MarchConfig};
    use bisram_bist::march;
    use bisram_mem::{column_failure, random_faults, FaultMix, SramModel};
    use bisram_rng::rngs::StdRng;
    use bisram_rng::SeedableRng;

    #[test]
    fn column_failure_is_diagnosed() {
        let org = ArrayOrg::new(256, 8, 4, 4).unwrap();
        let mut ram = SramModel::new(org);
        ram.inject_all(column_failure(&org, 3, 1, true));
        let out = run_march(&march::ifa9(), &mut ram, &MarchConfig::default(), None);
        let d = diagnose(&out, &org);
        assert!(d.redundancy_swamped, "64 faulty rows >> 4 spares");
        assert_eq!(d.suspect_column_selects, vec![1]);
        assert!(d.is_column_failure());
    }

    #[test]
    fn scattered_faults_do_not_trigger_column_diagnosis() {
        let org = ArrayOrg::new(256, 8, 4, 4).unwrap();
        let mut ram = SramModel::new(org);
        let mut rng = StdRng::seed_from_u64(5);
        ram.inject_all(random_faults(&mut rng, &org, 3, &FaultMix::stuck_at_only()));
        let out = run_march(&march::ifa9(), &mut ram, &MarchConfig::default(), None);
        let d = diagnose(&out, &org);
        assert!(!d.is_column_failure());
        assert!(d.suspect_column_selects.is_empty());
    }

    #[test]
    fn clean_memory_diagnoses_clean() {
        let org = ArrayOrg::new(64, 8, 4, 2).unwrap();
        let mut ram = SramModel::new(org);
        let out = run_march(&march::ifa9(), &mut ram, &MarchConfig::default(), None);
        let d = diagnose(&out, &org);
        assert!(!d.redundancy_swamped);
        assert!(!d.is_column_failure());
    }
}
