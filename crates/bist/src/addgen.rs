//! ADDGEN: the test address generator.
//!
//! Paper §V: "the test address generator ADDGEN needs to generate a
//! forward as well as a reverse addressing sequence. Consequently, it is
//! implemented as a binary up/down counter." This module models that
//! counter at the bit level — register bits plus a ripple carry/borrow
//! chain — so that the controller tests exercise the same terminal-count
//! conditions the hardware exposes.

/// A binary up/down counter of `width` bits with terminal-count outputs.
///
/// ```
/// use bisram_bist::addgen::UpDownCounter;
/// let mut c = UpDownCounter::new(4);
/// c.step_up();
/// c.step_up();
/// assert_eq!(c.value(), 2);
/// c.load_max();
/// assert!(c.at_max());
/// c.step_down();
/// assert_eq!(c.value(), 14);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpDownCounter {
    bits: Vec<bool>,
}

impl UpDownCounter {
    /// Creates a counter of `width` bits, cleared to zero.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or above 64.
    pub fn new(width: u32) -> Self {
        assert!((1..=64).contains(&width), "counter width out of range");
        UpDownCounter {
            bits: vec![false; width as usize],
        }
    }

    /// Counter width in bits.
    pub fn width(&self) -> u32 {
        self.bits.len() as u32
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.bits
            .iter()
            .enumerate()
            .fold(0, |acc, (i, b)| acc | ((*b as u64) << i))
    }

    /// Loads zero (the up-sweep start address).
    pub fn load_zero(&mut self) {
        self.bits.fill(false);
    }

    /// Loads the all-ones terminal value (the down-sweep start address).
    pub fn load_max(&mut self) {
        self.bits.fill(true);
    }

    /// True at the all-ones value (up-sweep terminal count).
    pub fn at_max(&self) -> bool {
        self.bits.iter().all(|b| *b)
    }

    /// True at zero (down-sweep terminal count).
    pub fn at_zero(&self) -> bool {
        self.bits.iter().all(|b| !*b)
    }

    /// Increments with a ripple carry (wraps at the top).
    pub fn step_up(&mut self) {
        let mut carry = true;
        for b in &mut self.bits {
            let sum = *b != carry;
            carry = *b && carry;
            *b = sum;
        }
    }

    /// Decrements with a ripple borrow (wraps at zero).
    pub fn step_down(&mut self) {
        let mut borrow = true;
        for b in &mut self.bits {
            let diff = *b != borrow;
            borrow = !*b && borrow;
            *b = diff;
        }
    }
}

impl std::fmt::Display for UpDownCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ADDGEN[{}]={}", self.width(), self.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisram_rng::rngs::StdRng;
    use bisram_rng::{Rng, SeedableRng};

    #[test]
    fn counts_up_through_full_range() {
        let mut c = UpDownCounter::new(4);
        for expect in 0..16u64 {
            assert_eq!(c.value(), expect);
            assert_eq!(c.at_max(), expect == 15);
            c.step_up();
        }
        // Wraps.
        assert_eq!(c.value(), 0);
        assert!(c.at_zero());
    }

    #[test]
    fn counts_down_through_full_range() {
        let mut c = UpDownCounter::new(4);
        c.load_max();
        for expect in (0..16u64).rev() {
            assert_eq!(c.value(), expect);
            assert_eq!(c.at_zero(), expect == 0);
            c.step_down();
        }
        assert_eq!(c.value(), 15);
    }

    #[test]
    fn loads() {
        let mut c = UpDownCounter::new(10);
        c.load_max();
        assert_eq!(c.value(), 1023);
        c.load_zero();
        assert_eq!(c.value(), 0);
    }

    #[test]
    #[should_panic(expected = "width out of range")]
    fn zero_width_rejected() {
        UpDownCounter::new(0);
    }

    // Deterministic seeded sweeps against the arithmetic reference model.

    #[test]
    fn matches_arithmetic() {
        let mut rng = StdRng::seed_from_u64(0xADD_0001);
        for case in 0..256 {
            let width = rng.gen_range(1u32..16);
            let mut c = UpDownCounter::new(width);
            let modulus = 1u64 << width;
            let mut reference: u64 = 0;
            let steps = rng.gen_range(0usize..200);
            for step in 0..steps {
                let up: bool = rng.gen();
                if up {
                    c.step_up();
                    reference = (reference + 1) % modulus;
                } else {
                    c.step_down();
                    reference = (reference + modulus - 1) % modulus;
                }
                assert_eq!(
                    c.value(),
                    reference,
                    "case {case}: width={width} step={step} up={up}"
                );
            }
        }
    }

    #[test]
    fn up_then_down_is_identity() {
        let mut rng = StdRng::seed_from_u64(0xADD_0002);
        for case in 0..256 {
            let width = rng.gen_range(1u32..16);
            let n = rng.gen_range(0u64..100);
            let mut c = UpDownCounter::new(width);
            for _ in 0..n {
                c.step_up();
            }
            for _ in 0..n {
                c.step_down();
            }
            assert!(c.at_zero(), "case {case}: width={width} n={n}");
        }
    }
}
