//! March-test execution against the behavioural memory.
//!
//! The engine walks a [`MarchTest`] over an [`SramModel`], applying the
//! DATAGEN background schedule and recording every comparator mismatch.
//! All accesses go through an optional [`RowMap`] translation, which is
//! where the BISR TLB plugs in for the second test pass and for normal
//! operation.

use crate::datagen::{self, mismatch};
use crate::march::{MarchElement, MarchOp, MarchTest};
use crate::RowMap;
use bisram_mem::{SramModel, Word};

/// How the engine schedules data backgrounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackgroundSchedule {
    /// The full DATAGEN Johnson-counter schedule (`bpw/2 + 2` patterns).
    Johnson,
    /// A single all-zeros background (the Chen–Sunada baseline).
    Single,
    /// An explicit list.
    Explicit(Vec<Word>),
}

/// Engine configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarchConfig {
    /// Background schedule.
    pub schedule: BackgroundSchedule,
    /// Stop at the first mismatch (cheap detection checks) instead of
    /// logging all failures (repair needs the full log).
    pub stop_at_first: bool,
}

impl Default for MarchConfig {
    fn default() -> Self {
        MarchConfig {
            schedule: BackgroundSchedule::Johnson,
            stop_at_first: false,
        }
    }
}

impl MarchConfig {
    /// Detection-only configuration (single background, stop early) —
    /// what a quick screen uses.
    pub fn quick() -> Self {
        MarchConfig {
            schedule: BackgroundSchedule::Single,
            stop_at_first: true,
        }
    }
}

/// One comparator mismatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailEvent {
    /// Logical word address at which the mismatch was observed.
    pub addr: usize,
    /// Logical row of that address.
    pub row: usize,
    /// Index of the march element.
    pub element: usize,
    /// Index of the operation inside the element.
    pub op: usize,
    /// Index of the data background in force.
    pub background: usize,
}

/// One fully-attributed comparator mismatch: a [`FailEvent`] plus the
/// per-bit fail bitmap (`read XOR expected`). This is the raw material
/// of fault *diagnosis* — which element, which address, which bits —
/// and what the shared BIST transport ships off-macro.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailRecord {
    /// Logical word address at which the mismatch was observed.
    pub addr: usize,
    /// Logical row of that address.
    pub row: usize,
    /// Column-select of that address.
    pub col: usize,
    /// Index of the march element.
    pub element: usize,
    /// Index of the operation inside the element.
    pub op: usize,
    /// Index of the data background in force.
    pub background: usize,
    /// Bit positions that mismatched (`read XOR expected`), LSB = bit 0.
    pub fail_bits: Word,
}

impl FailRecord {
    /// Iterates the failing bit positions, ascending.
    pub fn failing_bits(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.fail_bits.len()).filter(move |&b| self.fail_bits.get(b))
    }
}

/// The complete failure signature of one march run: every mismatch with
/// its per-element / per-address / per-bit attribution, in occurrence
/// order. Equality is exact — two signatures are the same if and only
/// if the memory failed in the identical way, which is what makes the
/// fault-dictionary diagnosis of `bisram-diag` sound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarchSignature {
    /// Name of the march test that produced the signature.
    pub test: String,
    /// Addressable words of the array under test.
    pub words: usize,
    /// Bits per word.
    pub bpw: usize,
    /// Number of data backgrounds applied.
    pub backgrounds_run: usize,
    /// Every mismatch, in occurrence order.
    pub records: Vec<FailRecord>,
}

impl MarchSignature {
    /// True when at least one mismatch occurred.
    pub fn detected(&self) -> bool {
        !self.records.is_empty()
    }

    /// Distinct logical rows that produced mismatches, ascending.
    pub fn faulty_rows(&self) -> Vec<usize> {
        let mut rows: Vec<usize> = self.records.iter().map(|r| r.row).collect();
        rows.sort_unstable();
        rows.dedup();
        rows
    }

    /// Distinct `(addr, bit)` positions that ever mismatched, ascending —
    /// the suspect list a diagnosis engine starts from.
    pub fn suspects(&self) -> Vec<(usize, usize)> {
        let mut out: Vec<(usize, usize)> = self
            .records
            .iter()
            .flat_map(|r| r.failing_bits().map(move |b| (r.addr, b)))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The records in which `(addr, bit)` failed, as
    /// `(background, element, op)` triples in occurrence order — the
    /// per-cell signature key the fault dictionary matches on.
    pub fn cell_key(&self, addr: usize, bit: usize) -> Vec<(usize, usize, usize)> {
        self.records
            .iter()
            .filter(|r| r.addr == addr && r.fail_bits.get(bit))
            .map(|r| (r.background, r.element, r.op))
            .collect()
    }
}

/// The outcome of one march run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarchOutcome {
    fails: Vec<FailEvent>,
    reads: u64,
    writes: u64,
    backgrounds_run: usize,
}

impl MarchOutcome {
    /// True when at least one mismatch occurred.
    pub fn detected(&self) -> bool {
        !self.fails.is_empty()
    }

    /// All mismatches, in occurrence order.
    pub fn fails(&self) -> &[FailEvent] {
        &self.fails
    }

    /// Distinct logical rows that produced mismatches, ascending — the
    /// input to row repair.
    pub fn faulty_rows(&self) -> Vec<usize> {
        let mut rows: Vec<usize> = self.fails.iter().map(|f| f.row).collect();
        rows.sort_unstable();
        rows.dedup();
        rows
    }

    /// Reads performed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Writes performed.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Number of data backgrounds applied.
    pub fn backgrounds_run(&self) -> usize {
        self.backgrounds_run
    }
}

/// Runs `test` over the memory with the given configuration, translating
/// every row through `map` when provided.
///
/// The march convention: `w0`/`r0` refer to the current background
/// pattern, `w1`/`r1` to its complement. `Delay` elements trigger the
/// memory's retention pause.
pub fn run_march(
    test: &MarchTest,
    ram: &mut SramModel,
    config: &MarchConfig,
    map: Option<&dyn RowMap>,
) -> MarchOutcome {
    let bpw = ram.org().bpw();
    let words = ram.org().words();
    let backgrounds = match &config.schedule {
        BackgroundSchedule::Johnson => datagen::backgrounds(bpw),
        BackgroundSchedule::Single => datagen::single_background(bpw),
        BackgroundSchedule::Explicit(v) => v.clone(),
    };

    let mut outcome = MarchOutcome {
        fails: Vec::new(),
        reads: 0,
        writes: 0,
        backgrounds_run: 0,
    };

    'backgrounds: for (bg_idx, bg) in backgrounds.iter().enumerate() {
        outcome.backgrounds_run = bg_idx + 1;
        let inv = !bg.clone();
        for (el_idx, element) in test.elements().iter().enumerate() {
            match element {
                MarchElement::Delay => ram.retention_pause(),
                MarchElement::Sweep { order, ops } => {
                    let sweep: Box<dyn Iterator<Item = usize>> = if order.effective_up() {
                        Box::new(0..words)
                    } else {
                        Box::new((0..words).rev())
                    };
                    for addr in sweep {
                        let (row, col) = ram.org().split(addr);
                        let phys_row = map.map_or(row, |m| m.map_row(row));
                        for (op_idx, op) in ops.iter().enumerate() {
                            let data = if op.is_inverse() { &inv } else { bg };
                            match op {
                                MarchOp::W0 | MarchOp::W1 => {
                                    outcome.writes += 1;
                                    ram.write_word_at(phys_row, col, data.clone());
                                }
                                MarchOp::R0 | MarchOp::R1 => {
                                    outcome.reads += 1;
                                    let read = ram.read_word_at(phys_row, col);
                                    if mismatch(&read, data) {
                                        outcome.fails.push(FailEvent {
                                            addr,
                                            row,
                                            element: el_idx,
                                            op: op_idx,
                                            background: bg_idx,
                                        });
                                        if config.stop_at_first {
                                            break 'backgrounds;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    outcome
}

/// Runs `test` in full-diagnosis mode: every mismatch is logged with its
/// per-bit fail bitmap (`read XOR expected`), and the run never stops
/// early — a diagnosis signature must be complete to be matchable
/// against a fault dictionary. The background schedule of `config` is
/// honoured; `stop_at_first` is ignored.
pub fn run_march_diagnose(
    test: &MarchTest,
    ram: &mut SramModel,
    config: &MarchConfig,
    map: Option<&dyn RowMap>,
) -> MarchSignature {
    let bpw = ram.org().bpw();
    let words = ram.org().words();
    let backgrounds = match &config.schedule {
        BackgroundSchedule::Johnson => datagen::backgrounds(bpw),
        BackgroundSchedule::Single => datagen::single_background(bpw),
        BackgroundSchedule::Explicit(v) => v.clone(),
    };

    let mut sig = MarchSignature {
        test: test.name().to_owned(),
        words,
        bpw,
        backgrounds_run: 0,
        records: Vec::new(),
    };

    for (bg_idx, bg) in backgrounds.iter().enumerate() {
        sig.backgrounds_run = bg_idx + 1;
        let inv = !bg.clone();
        for (el_idx, element) in test.elements().iter().enumerate() {
            match element {
                MarchElement::Delay => ram.retention_pause(),
                MarchElement::Sweep { order, ops } => {
                    let sweep: Box<dyn Iterator<Item = usize>> = if order.effective_up() {
                        Box::new(0..words)
                    } else {
                        Box::new((0..words).rev())
                    };
                    for addr in sweep {
                        let (row, col) = ram.org().split(addr);
                        let phys_row = map.map_or(row, |m| m.map_row(row));
                        for (op_idx, op) in ops.iter().enumerate() {
                            let data = if op.is_inverse() { &inv } else { bg };
                            match op {
                                MarchOp::W0 | MarchOp::W1 => {
                                    ram.write_word_at(phys_row, col, data.clone());
                                }
                                MarchOp::R0 | MarchOp::R1 => {
                                    let read = ram.read_word_at(phys_row, col);
                                    if mismatch(&read, data) {
                                        sig.records.push(FailRecord {
                                            addr,
                                            row,
                                            col,
                                            element: el_idx,
                                            op: op_idx,
                                            background: bg_idx,
                                            fail_bits: &read ^ data,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    sig
}

/// Runs `test` over the *spare rows only* (physical rows
/// `rows()..total_rows()`), used by the repair flow to verify that spares
/// themselves are fault-free before relying on them, and by the second
/// pass to test mapped redundant locations. Returns the physical spare
/// rows that failed.
pub fn test_spare_rows(test: &MarchTest, ram: &mut SramModel, config: &MarchConfig) -> Vec<usize> {
    let rows: Vec<usize> = (ram.org().rows()..ram.org().total_rows()).collect();
    test_physical_rows(test, ram, config, &rows)
}

/// Runs `test` destructively over an explicit set of physical rows,
/// returning the ones that failed (sorted, deduplicated).
///
/// This is the row-subset variant the in-field engine needs: periodic
/// spare-region checks must cover only the *unassigned* spares, because
/// assigned spares hold live user data (those are screened transparently
/// through the TLB instead). Out-of-range rows are ignored rather than
/// panicking — the caller's bookkeeping may lag the hardware, and a
/// field check must not abort on a stale address.
pub fn test_physical_rows(
    test: &MarchTest,
    ram: &mut SramModel,
    config: &MarchConfig,
    rows: &[usize],
) -> Vec<usize> {
    let bpw = ram.org().bpw();
    let backgrounds = match &config.schedule {
        BackgroundSchedule::Johnson => datagen::backgrounds(bpw),
        BackgroundSchedule::Single => datagen::single_background(bpw),
        BackgroundSchedule::Explicit(v) => v.clone(),
    };
    let total = ram.org().total_rows();
    let bpc = ram.org().bpc();
    let positions_up: Vec<(usize, usize)> = rows
        .iter()
        .filter(|&&r| r < total)
        .flat_map(|&r| (0..bpc).map(move |c| (r, c)))
        .collect();
    let mut failed: Vec<usize> = Vec::new();

    for bg in &backgrounds {
        let inv = !bg.clone();
        for element in test.elements() {
            match element {
                MarchElement::Delay => ram.retention_pause(),
                MarchElement::Sweep { order, ops } => {
                    let positions: Box<dyn Iterator<Item = &(usize, usize)>> =
                        if order.effective_up() {
                            Box::new(positions_up.iter())
                        } else {
                            Box::new(positions_up.iter().rev())
                        };
                    for &(row, col) in positions {
                        for op in ops {
                            let data = if op.is_inverse() { &inv } else { bg };
                            match op {
                                MarchOp::W0 | MarchOp::W1 => {
                                    ram.write_word_at(row, col, data.clone())
                                }
                                MarchOp::R0 | MarchOp::R1 => {
                                    let read = ram.read_word_at(row, col);
                                    if mismatch(&read, data) {
                                        failed.push(row);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    failed.sort_unstable();
    failed.dedup();
    failed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::march;
    use bisram_mem::{ArrayOrg, Fault, FaultKind};

    fn ram(spares: usize) -> SramModel {
        SramModel::new(ArrayOrg::new(256, 8, 4, spares).unwrap())
    }

    #[test]
    fn fault_free_memory_passes_every_test() {
        for test in march::library() {
            let mut m = ram(0);
            let out = run_march(&test, &mut m, &MarchConfig::default(), None);
            assert!(!out.detected(), "{} false-alarmed", test.name());
            assert!(out.reads() > 0 && out.writes() > 0);
        }
    }

    #[test]
    fn stuck_at_detected_and_localized() {
        let mut m = ram(0);
        let cell = m.org().cell_at(5, 2, 3);
        m.inject(Fault::new(cell, FaultKind::StuckAt(true)));
        let out = run_march(&march::ifa9(), &mut m, &MarchConfig::default(), None);
        assert!(out.detected());
        assert_eq!(out.faulty_rows(), vec![5]);
        // Every fail event points at the faulty word address.
        let addr = m.org().join(5, 2);
        assert!(out.fails().iter().all(|f| f.addr == addr));
    }

    #[test]
    fn quick_config_stops_early() {
        let mut m = ram(0);
        m.inject(Fault::new(0, FaultKind::StuckAt(true)));
        m.inject(Fault::new(
            m.org().cell_at(10, 0, 0),
            FaultKind::StuckAt(true),
        ));
        let out = run_march(&march::ifa9(), &mut m, &MarchConfig::quick(), None);
        assert!(out.detected());
        assert_eq!(out.fails().len(), 1);
        assert_eq!(out.backgrounds_run(), 1);
    }

    #[test]
    fn retention_fault_needs_delay_elements() {
        // MATS+ has no delay: misses the DRF. IFA-9 has two: catches it.
        for (test, expect) in [(march::mats_plus(), false), (march::ifa9(), true)] {
            let mut m = ram(0);
            let cell = m.org().cell_at(3, 1, 0);
            m.inject(Fault::new(cell, FaultKind::Retention { leaks_to: false }));
            let out = run_march(&test, &mut m, &MarchConfig::default(), None);
            assert_eq!(out.detected(), expect, "{}", test.name());
        }
    }

    #[test]
    fn intra_word_state_coupling_needs_multiple_backgrounds() {
        // Aggressor and victim in the same word, with the forced value
        // equal to the sensitizing state: under all-zeros/all-ones data
        // the victim is only ever forced to the value it already holds,
        // so a single background is blind to the fault; the Johnson
        // schedule separates the two bits and exposes it.
        let build = || {
            let mut m = ram(0);
            let aggressor = m.org().cell_at(7, 1, 2);
            let victim = m.org().cell_at(7, 1, 5);
            m.inject(Fault::new(
                victim,
                FaultKind::StateCoupling {
                    aggressor,
                    state: true,
                    forced: true,
                },
            ));
            m
        };
        let single = run_march(
            &march::ifa9(),
            &mut build(),
            &MarchConfig {
                schedule: BackgroundSchedule::Single,
                stop_at_first: false,
            },
            None,
        );
        let johnson = run_march(&march::ifa9(), &mut build(), &MarchConfig::default(), None);
        assert!(
            !single.detected(),
            "single background should miss the intra-word CFst"
        );
        assert!(johnson.detected(), "johnson backgrounds must catch it");
    }

    #[test]
    fn row_map_translation_redirects_accesses() {
        struct SwapMap;
        impl RowMap for SwapMap {
            fn map_row(&self, row: usize) -> usize {
                // Swap rows 0 and 1.
                match row {
                    0 => 1,
                    1 => 0,
                    r => r,
                }
            }
        }
        // Fault in physical row 0; with the swap map logical row 1
        // touches it, logical row 0 does not.
        let mut m = ram(0);
        m.inject(Fault::new(
            m.org().cell_at(0, 0, 0),
            FaultKind::StuckAt(true),
        ));
        let out = run_march(&march::ifa9(), &mut m, &MarchConfig::default(), Some(&SwapMap));
        assert!(out.detected());
        assert_eq!(out.faulty_rows(), vec![1], "fault shows up at logical row 1");
    }

    #[test]
    fn spare_row_testing_flags_faulty_spares_only() {
        let mut m = ram(4);
        let first_spare = m.org().rows();
        // Fault in the second spare row.
        m.inject(Fault::new(
            m.org().cell_at(first_spare + 1, 0, 0),
            FaultKind::StuckAt(false),
        ));
        let failed = test_spare_rows(&march::ifa9(), &mut m, &MarchConfig::default());
        assert_eq!(failed, vec![first_spare + 1]);
        // Regular-array faults don't affect spare testing.
        let mut m2 = ram(4);
        m2.inject(Fault::new(0, FaultKind::StuckAt(true)));
        assert!(test_spare_rows(&march::ifa9(), &mut m2, &MarchConfig::default()).is_empty());
    }

    #[test]
    fn physical_row_subset_testing_covers_only_requested_rows() {
        let mut m = ram(4);
        let first_spare = m.org().rows();
        // Faults in two spares; ask about only one of them.
        m.inject(Fault::new(
            m.org().cell_at(first_spare, 0, 0),
            FaultKind::StuckAt(true),
        ));
        m.inject(Fault::new(
            m.org().cell_at(first_spare + 2, 0, 0),
            FaultKind::StuckAt(true),
        ));
        let failed = test_physical_rows(
            &march::ifa9(),
            &mut m,
            &MarchConfig::default(),
            &[first_spare + 1, first_spare + 2],
        );
        assert_eq!(failed, vec![first_spare + 2]);
        // The untested faulty spare's cells were never touched.
        assert_eq!(m.read_word_at(first_spare, 0).to_u64() & 1, 1);
        // Out-of-range rows are ignored, not a panic.
        let total = m.org().total_rows();
        let failed = test_physical_rows(
            &march::ifa9(),
            &mut m,
            &MarchConfig::default(),
            &[total, total + 7],
        );
        assert!(failed.is_empty());
    }

    #[test]
    fn diagnose_signature_attributes_every_failing_bit() {
        let mut m = ram(0);
        let org = *m.org();
        let c1 = org.cell_at(5, 2, 3);
        let c2 = org.cell_at(5, 2, 6);
        m.inject(Fault::new(c1, FaultKind::StuckAt(true)));
        m.inject(Fault::new(c2, FaultKind::StuckAt(true)));
        let sig = run_march_diagnose(&march::ifa9(), &mut m, &MarchConfig::default(), None);
        assert!(sig.detected());
        assert_eq!(sig.faulty_rows(), vec![5]);
        let addr = org.join(5, 2);
        // Both stuck bits appear in the suspect list, nothing else.
        assert_eq!(sig.suspects(), vec![(addr, 3), (addr, 6)]);
        // Records carry split coordinates and only the failing bits.
        for r in &sig.records {
            assert_eq!((r.addr, r.row, r.col), (addr, 5, 2));
            let bits: Vec<usize> = r.failing_bits().collect();
            assert!(!bits.is_empty());
            assert!(bits.iter().all(|&b| b == 3 || b == 6));
        }
        // Per-cell keys are non-empty, and the Johnson backgrounds give
        // the two bits *different* data — so their keys differ, which is
        // exactly the per-bit attribution diagnosis relies on.
        let k1 = sig.cell_key(addr, 3);
        let k2 = sig.cell_key(addr, 6);
        assert!(!k1.is_empty() && !k2.is_empty());
        assert_ne!(k1, k2);
    }

    #[test]
    fn diagnose_never_stops_early_and_matches_run_march() {
        let mut m = ram(0);
        m.inject(Fault::new(m.org().cell_at(0, 0, 0), FaultKind::StuckAt(true)));
        m.inject(Fault::new(
            m.org().cell_at(10, 1, 2),
            FaultKind::StuckAt(false),
        ));
        // Even with a quick() config the diagnosis run logs everything.
        let sig = run_march_diagnose(&march::ifa9(), &mut m, &MarchConfig::quick(), None);
        assert!(sig.records.len() > 1);

        // Same schedule => the signature's (addr, element, op, background)
        // stream equals run_march's fail stream.
        let rebuild = || {
            let mut m = ram(0);
            m.inject(Fault::new(m.org().cell_at(0, 0, 0), FaultKind::StuckAt(true)));
            m.inject(Fault::new(
                m.org().cell_at(10, 1, 2),
                FaultKind::StuckAt(false),
            ));
            m
        };
        let cfg = MarchConfig::default();
        let sig = run_march_diagnose(&march::ifa13(), &mut rebuild(), &cfg, None);
        let out = run_march(&march::ifa13(), &mut rebuild(), &cfg, None);
        let from_sig: Vec<FailEvent> = sig
            .records
            .iter()
            .map(|r| FailEvent {
                addr: r.addr,
                row: r.row,
                element: r.element,
                op: r.op,
                background: r.background,
            })
            .collect();
        assert_eq!(from_sig, out.fails());
        assert_eq!(sig.backgrounds_run, out.backgrounds_run());
    }

    #[test]
    fn operation_counts_match_formula() {
        let mut m = ram(0);
        let out = run_march(&march::mats_plus(), &mut m, &MarchConfig::quick(), None);
        // MATS+ = 5N with 2 reads and 3 writes per address over 1
        // background (quick).
        assert_eq!(out.reads() + out.writes(), 5 * 256);
        assert_eq!(out.reads(), 2 * 256);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::march::{AddrOrder, MarchElement, MarchOp, MarchTest};
    use bisram_mem::{ArrayOrg, Fault, FaultKind, SramModel};
    use bisram_rng::rngs::StdRng;
    use bisram_rng::{Rng, SeedableRng};

    const CASES: usize = 48;

    fn arb_op(rng: &mut StdRng) -> MarchOp {
        // Indexing a const array with a bounded draw cannot fail, unlike
        // `choose` whose Option would need unwrapping.
        const OPS: [MarchOp; 4] = [MarchOp::R0, MarchOp::R1, MarchOp::W0, MarchOp::W1];
        OPS[rng.gen_range(0..OPS.len())]
    }

    fn arb_order(rng: &mut StdRng) -> AddrOrder {
        const ORDERS: [AddrOrder; 3] = [AddrOrder::Up, AddrOrder::Down, AddrOrder::Either];
        ORDERS[rng.gen_range(0..ORDERS.len())]
    }

    fn arb_element(rng: &mut StdRng) -> MarchElement {
        let order = arb_order(rng);
        let ops = (0..rng.gen_range(1..5usize)).map(|_| arb_op(rng)).collect();
        MarchElement::Sweep { order, ops }
    }

    /// Random *well-formed* march: starts with an initializing write
    /// element and every element's first read matches the data state the
    /// previous element leaves behind. Simplification: we force each
    /// element to begin with a write, which makes any op sequence
    /// self-consistent for a fault-free memory. The stored state ("0" =
    /// background, "1" = inverse) is tracked and reads rewritten to
    /// expect it, producing a march clean by construction.
    fn arb_march(rng: &mut StdRng) -> MarchTest {
        let mut elements = Vec::new();
        for _ in 0..rng.gen_range(1..6usize) {
            let order = arb_order(rng);
            let first_write = if rng.gen_bool(0.5) {
                MarchOp::W0
            } else {
                MarchOp::W1
            };
            let mut state = !matches!(first_write, MarchOp::W0);
            let mut ops = vec![first_write];
            for _ in 0..rng.gen_range(0..4usize) {
                let fixed = match arb_op(rng) {
                    MarchOp::W0 => {
                        state = false;
                        MarchOp::W0
                    }
                    MarchOp::W1 => {
                        state = true;
                        MarchOp::W1
                    }
                    MarchOp::R0 | MarchOp::R1 => {
                        if state {
                            MarchOp::R1
                        } else {
                            MarchOp::R0
                        }
                    }
                };
                ops.push(fixed);
            }
            elements.push(MarchElement::Sweep { order, ops });
        }
        MarchTest::new("random", elements)
    }

    #[test]
    fn fault_free_memory_never_fails_a_wellformed_march() {
        let mut rng = StdRng::seed_from_u64(0xE61_0001);
        for case in 0..CASES {
            let test = arb_march(&mut rng);
            let org = ArrayOrg::new(64, 8, 4, 0).unwrap();
            let mut ram = SramModel::new(org);
            let out = run_march(&test, &mut ram, &MarchConfig::default(), None);
            assert!(!out.detected(), "case {case}: false alarm on {test}");
        }
    }

    #[test]
    fn operation_counts_match_the_formula() {
        let mut rng = StdRng::seed_from_u64(0xE61_0002);
        for case in 0..CASES {
            let test = arb_march(&mut rng);
            let org = ArrayOrg::new(64, 8, 4, 0).unwrap();
            let mut ram = SramModel::new(org);
            let out = run_march(&test, &mut ram, &MarchConfig::quick(), None);
            // quick() stops early only on detection; fault-free runs all.
            assert_eq!(
                out.reads() + out.writes(),
                test.operation_count(64),
                "case {case}: {test}"
            );
        }
    }

    #[test]
    fn engine_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(0xE61_0003);
        for case in 0..CASES {
            let element = arb_element(&mut rng);
            let test = MarchTest::new(
                "det",
                vec![MarchElement::either(&[MarchOp::W0]), element],
            );
            let org = ArrayOrg::new(64, 8, 4, 0).unwrap();
            let run = |seed_cell: usize| {
                let mut ram = SramModel::new(org);
                ram.inject(Fault::new(seed_cell, FaultKind::StuckAt(true)));
                run_march(&test, &mut ram, &MarchConfig::default(), None)
            };
            assert_eq!(run(100), run(100), "case {case}: {test}");
        }
    }

    #[test]
    fn any_wellformed_march_with_a_read_detects_a_stuck_pair() {
        let mut rng = StdRng::seed_from_u64(0xE61_0004);
        let mut checked = 0;
        for case in 0..CASES * 2 {
            // A cell stuck at 0 AND its word-mate stuck at 1 guarantee a
            // mismatch on every read of that word, whatever the data.
            let test = arb_march(&mut rng);
            let has_read = test
                .elements()
                .iter()
                .any(|e| matches!(e, MarchElement::Sweep { ops, .. }
                    if ops.iter().any(|o| o.is_read())));
            if !has_read {
                continue; // the seeded analogue of prop_assume!
            }
            checked += 1;
            let org = ArrayOrg::new(64, 8, 4, 0).unwrap();
            let mut ram = SramModel::new(org);
            ram.inject(Fault::new(org.cell_at(3, 1, 0), FaultKind::StuckAt(false)));
            ram.inject(Fault::new(org.cell_at(3, 1, 1), FaultKind::StuckAt(true)));
            let out = run_march(&test, &mut ram, &MarchConfig::default(), None);
            assert!(out.detected(), "case {case}: {test}");
        }
        assert!(checked >= CASES / 2, "only {checked} marches had a read");
    }
}
