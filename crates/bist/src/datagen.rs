//! DATAGEN: the test data background generator and comparator.
//!
//! Paper §V: "the test data generator DATAGEN is a Johnson counter that
//! can generate data backgrounds for a bpw-bit RAM word ... all-0,
//! 0101…, 0011…, …, all-1. The generation of ~bpw/2 background patterns
//! requires less hardware than that of log-many patterns, and is thereby
//! preferable, even though it causes a greater test application time."
//! DATAGEN also compares read data with expected values using
//! exclusive-OR gates and a wide OR gate.
//!
//! The background *schedule* here is the stripe family — all-zeros, then
//! stripes of run length 1, 2, …, bpw/2, then all-ones — which is the set
//! the paper lists and which provably distinguishes every pair of bit
//! positions in the word (see `backgrounds_distinguish_all_pairs` in the
//! tests; this is the property the thesis (paper ref. \[2\]) proves for the Johnson
//! construction).

use bisram_mem::Word;

/// A twisted-ring (Johnson) counter of `stages` flip-flops, the hardware
/// core of DATAGEN.
///
/// An `m`-stage Johnson counter cycles through `2m` states: the all-zero
/// state, the rising thermometer codes, the all-one state and the falling
/// thermometer codes.
///
/// ```
/// use bisram_bist::datagen::JohnsonCounter;
/// let mut j = JohnsonCounter::new(3);
/// let states: Vec<u64> = (0..6).map(|_| { let s = j.state(); j.step(); s }).collect();
/// assert_eq!(states, vec![0b000, 0b001, 0b011, 0b111, 0b110, 0b100]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JohnsonCounter {
    bits: Vec<bool>,
}

impl JohnsonCounter {
    /// Creates a cleared counter of `stages` flip-flops.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is zero or above 64.
    pub fn new(stages: usize) -> Self {
        assert!((1..=64).contains(&stages), "stage count out of range");
        JohnsonCounter {
            bits: vec![false; stages],
        }
    }

    /// Number of flip-flops.
    pub fn stages(&self) -> usize {
        self.bits.len()
    }

    /// Cycle length (`2 · stages`).
    pub fn period(&self) -> usize {
        2 * self.bits.len()
    }

    /// Current state as an integer (stage 0 is bit 0).
    pub fn state(&self) -> u64 {
        self.bits
            .iter()
            .enumerate()
            .fold(0, |acc, (i, b)| acc | ((*b as u64) << i))
    }

    /// Advances one clock: shift toward the MSB, feeding back the
    /// complement of the last stage.
    pub fn step(&mut self) {
        // `new` rejects zero stages, so the register is never empty.
        let feedback = !self.bits[self.bits.len() - 1];
        for i in (1..self.bits.len()).rev() {
            self.bits[i] = self.bits[i - 1];
        }
        self.bits[0] = feedback;
    }

    /// Resets to all-zero.
    pub fn reset(&mut self) {
        self.bits.fill(false);
    }
}

/// The data-background schedule for a `bpw`-bit word: all-zeros, stripe
/// patterns with run lengths `1, 2, …, bpw/2`, and all-ones. For
/// single-bit words only the two trivial backgrounds exist.
///
/// The count is `bpw/2 + 2` backgrounds (the paper quotes `bpw/2 + 1`;
/// our set carries the all-ones background explicitly, one extra apply,
/// so that the pairwise-distinction property below holds for every word
/// width under the stripe construction — see DESIGN.md).
///
/// ```
/// use bisram_bist::datagen::backgrounds;
/// let bgs = backgrounds(8);
/// assert_eq!(bgs.len(), 6);
/// assert_eq!(bgs[0].to_u64(), 0x00);
/// assert_eq!(bgs[1].to_u64(), 0b1010_1010);
/// assert_eq!(bgs.last().unwrap().to_u64(), 0xFF);
/// ```
pub fn backgrounds(bpw: usize) -> Vec<Word> {
    assert!((1..=Word::MAX_BITS).contains(&bpw), "word width out of range");
    let mut out = vec![Word::zeros(bpw)];
    for run in 1..=(bpw / 2) {
        out.push(Word::background(bpw, run, false));
    }
    out.push(Word::ones_word(bpw));
    out
}

/// The single background a scheme without a Johnson counter applies
/// (Chen–Sunada's data generator applies "a single data pattern or its
/// complement", paper §III item 4).
pub fn single_background(bpw: usize) -> Vec<Word> {
    vec![Word::zeros(bpw)]
}

/// The DATAGEN comparator: XOR gates per bit plus a wide OR — returns
/// true when `read` mismatches `expected` in any bit position.
pub fn mismatch(read: &Word, expected: &Word) -> bool {
    (read ^ expected).ones() > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn johnson_counter_cycle_structure() {
        for stages in 1..=8 {
            let mut j = JohnsonCounter::new(stages);
            let start = j.state();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..j.period() {
                assert!(seen.insert(j.state()), "state repeated early");
                j.step();
            }
            assert_eq!(j.state(), start, "period must close the cycle");
            assert_eq!(seen.len(), 2 * stages);
        }
    }

    #[test]
    fn johnson_states_are_thermometer_codes() {
        let mut j = JohnsonCounter::new(4);
        for _ in 0..j.period() {
            let s = j.state();
            // A Johnson state is a cyclic run of ones: s and its
            // complement within 4 bits are both "contiguous" patterns.
            let bits: Vec<bool> = (0..4).map(|i| (s >> i) & 1 == 1).collect();
            let transitions = (0..4)
                .filter(|&i| bits[i] != bits[(i + 1) % 4])
                .count();
            assert!(transitions <= 2, "state {s:04b} is not a ring run");
            j.step();
        }
    }

    #[test]
    fn reset_returns_to_zero() {
        let mut j = JohnsonCounter::new(5);
        j.step();
        j.step();
        assert_ne!(j.state(), 0);
        j.reset();
        assert_eq!(j.state(), 0);
    }

    #[test]
    fn background_schedule_matches_paper_list() {
        let bgs = backgrounds(8);
        let expect: Vec<u64> = vec![
            0b0000_0000, // all-0
            0b1010_1010, // 0101... (LSB first: bit0=0)
            0b1100_1100, // 0011...
            0b0011_1000, // run-3 stripes
            0b1111_0000, // 00001111
            0b1111_1111, // all-1
        ];
        assert_eq!(bgs.len(), 6);
        for (i, e) in expect.iter().enumerate() {
            assert_eq!(bgs[i].to_u64(), *e, "background {i}");
        }
    }

    #[test]
    fn background_count_is_half_word_plus_two() {
        for bpw in [2usize, 4, 8, 16, 32, 64, 128, 256] {
            assert_eq!(backgrounds(bpw).len(), bpw / 2 + 2, "bpw={bpw}");
        }
        // Degenerate single-bit word: all-0 and all-1 only.
        assert_eq!(backgrounds(1).len(), 2);
    }

    #[test]
    fn backgrounds_distinguish_all_pairs() {
        // The key property (thesis [2]): for every pair of distinct bit
        // positions there is a background in which they differ — this is
        // what lets the march, which writes each background and its
        // complement, expose intra-word coupling faults.
        for bpw in [2usize, 4, 8, 16, 32, 64] {
            let bgs = backgrounds(bpw);
            for i in 0..bpw {
                for j in (i + 1)..bpw {
                    let distinguished = bgs.iter().any(|b| b.get(i) != b.get(j));
                    assert!(distinguished, "bpw={bpw}: pair ({i},{j}) never differs");
                }
            }
        }
    }

    #[test]
    fn single_background_does_not_distinguish_pairs() {
        // The Chen–Sunada comparison point: one background (plus its
        // complement) never separates any bit pair.
        let bgs = single_background(8);
        for b in &bgs {
            for i in 0..8 {
                for j in 0..8 {
                    assert_eq!(b.get(i), b.get(j));
                }
            }
        }
    }

    #[test]
    fn comparator_detects_any_bit_flip() {
        let a = Word::from_u64(0b1010, 4);
        assert!(!mismatch(&a, &a));
        for bit in 0..4 {
            let mut b = a.clone();
            b.set(bit, !b.get(bit));
            assert!(mismatch(&a, &b));
        }
    }
}
