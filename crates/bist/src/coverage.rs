//! Fault-coverage measurement campaigns.
//!
//! Paper §V claims IFA-9 "detects a wide range of functional faults
//! caused by layout defects; for example, stuck-at and stuck-open faults,
//! transition faults and state coupling faults", with the Johnson-counter
//! data backgrounds needed for "pairwise couplings between cells of the
//! same word". This module measures those claims empirically: inject one
//! fault of a class into a fresh memory, run the test, record detection.

use crate::engine::{run_march, BackgroundSchedule, MarchConfig};
use crate::march::MarchTest;
use bisram_mem::{ArrayOrg, Fault, FaultClass, FaultKind, SramModel};
use bisram_rng::Rng;

/// Coverage of one fault class under one test.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassCoverage {
    /// The fault class measured.
    pub class: FaultClass,
    /// Faults injected.
    pub injected: usize,
    /// Faults detected.
    pub detected: usize,
}

impl ClassCoverage {
    /// Detection fraction in 0..=1.
    pub fn fraction(&self) -> f64 {
        if self.injected == 0 {
            1.0
        } else {
            self.detected as f64 / self.injected as f64
        }
    }
}

/// A full campaign result: per-class coverage for one march test.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    /// Name of the march test measured.
    pub test: String,
    /// Whether the Johnson background schedule was used.
    pub johnson: bool,
    /// Per-class results.
    pub classes: Vec<ClassCoverage>,
}

impl CoverageReport {
    /// Coverage of one fault class.
    pub fn class(&self, class: FaultClass) -> Option<&ClassCoverage> {
        self.classes.iter().find(|c| c.class == class)
    }

    /// Overall coverage across all classes.
    pub fn overall(&self) -> f64 {
        let injected: usize = self.classes.iter().map(|c| c.injected).sum();
        let detected: usize = self.classes.iter().map(|c| c.detected).sum();
        if injected == 0 {
            1.0
        } else {
            detected as f64 / injected as f64
        }
    }
}

/// Draws one random fault of each supported class, `per_class` times,
/// runs `test` on a fresh memory per fault, and tallies detection.
///
/// With `intra_word_coupling` the coupling faults are constrained to
/// aggressor/victim pairs inside the *same word* — the case that
/// separates the Johnson schedule from the single-background baseline.
pub fn measure<R: Rng + ?Sized>(
    rng: &mut R,
    org: ArrayOrg,
    test: &MarchTest,
    johnson: bool,
    per_class: usize,
    intra_word_coupling: bool,
) -> CoverageReport {
    let schedule = if johnson {
        BackgroundSchedule::Johnson
    } else {
        BackgroundSchedule::Single
    };
    let config = MarchConfig {
        schedule,
        stop_at_first: true,
    };

    type FaultGen<'a, R> = Box<dyn Fn(&mut R) -> Fault + 'a>;
    let classes: Vec<(FaultClass, FaultGen<R>)> = vec![
        (
            FaultClass::Saf,
            Box::new(move |rng: &mut R| {
                Fault::new(random_regular_cell(rng, &org), FaultKind::StuckAt(rng.gen()))
            }),
        ),
        (
            FaultClass::Tf,
            Box::new(move |rng: &mut R| {
                let kind = if rng.gen() {
                    FaultKind::TransitionUp
                } else {
                    FaultKind::TransitionDown
                };
                Fault::new(random_regular_cell(rng, &org), kind)
            }),
        ),
        (
            FaultClass::Sof,
            Box::new(move |rng: &mut R| {
                Fault::new(random_regular_cell(rng, &org), FaultKind::StuckOpen)
            }),
        ),
        (
            FaultClass::CfIn,
            Box::new(move |rng: &mut R| {
                let (victim, aggressor) = coupling_pair(rng, &org, intra_word_coupling);
                Fault::new(
                    victim,
                    FaultKind::CouplingInv {
                        aggressor,
                        rising: rng.gen(),
                    },
                )
            }),
        ),
        (
            FaultClass::CfId,
            Box::new(move |rng: &mut R| {
                let (victim, aggressor) = coupling_pair(rng, &org, intra_word_coupling);
                Fault::new(
                    victim,
                    FaultKind::CouplingIdem {
                        aggressor,
                        rising: rng.gen(),
                        forced: rng.gen(),
                    },
                )
            }),
        ),
        (
            FaultClass::CfSt,
            Box::new(move |rng: &mut R| {
                let (victim, aggressor) = coupling_pair(rng, &org, intra_word_coupling);
                Fault::new(
                    victim,
                    FaultKind::StateCoupling {
                        aggressor,
                        state: rng.gen(),
                        forced: rng.gen(),
                    },
                )
            }),
        ),
        (
            FaultClass::Drf,
            Box::new(move |rng: &mut R| {
                Fault::new(
                    random_regular_cell(rng, &org),
                    FaultKind::Retention { leaks_to: rng.gen() },
                )
            }),
        ),
    ];

    let mut out = Vec::new();
    for (name, gen) in classes {
        let mut detected = 0;
        for _ in 0..per_class {
            let mut ram = SramModel::new(org);
            ram.inject(gen(rng));
            if run_march(test, &mut ram, &config, None).detected() {
                detected += 1;
            }
        }
        out.push(ClassCoverage {
            class: name,
            injected: per_class,
            detected,
        });
    }
    CoverageReport {
        test: test.name().to_owned(),
        johnson,
        classes: out,
    }
}

fn random_regular_cell<R: Rng + ?Sized>(rng: &mut R, org: &ArrayOrg) -> usize {
    let row = rng.gen_range(0..org.rows());
    let col = rng.gen_range(0..org.bpc());
    let bit = rng.gen_range(0..org.bpw());
    org.cell_at(row, col, bit)
}

fn coupling_pair<R: Rng + ?Sized>(
    rng: &mut R,
    org: &ArrayOrg,
    intra_word: bool,
) -> (usize, usize) {
    let regular = org.rows() * org.bpc() * org.bpw();
    assert!(regular > 1, "coupling faults need at least two regular cells");
    if intra_word && org.bpw() > 1 {
        let row = rng.gen_range(0..org.rows());
        let col = rng.gen_range(0..org.bpc());
        let vbit = rng.gen_range(0..org.bpw());
        // Distinct bit by offset, not rejection: a 1-bit word would spin
        // the old `b != vbit` loop forever, and even bpw == 2 wastes
        // draws.
        let abit = (vbit + rng.gen_range(1..org.bpw())) % org.bpw();
        (org.cell_at(row, col, vbit), org.cell_at(row, col, abit))
    } else if intra_word && org.bpc() > 1 {
        // One-bit words have no intra-word mate; fall back to a
        // cross-column aggressor in the same physical row — the nearest
        // layout neighbour a real defect would bridge to.
        let row = rng.gen_range(0..org.rows());
        let vcol = rng.gen_range(0..org.bpc());
        let acol = (vcol + rng.gen_range(1..org.bpc())) % org.bpc();
        (org.cell_at(row, vcol, 0), org.cell_at(row, acol, 0))
    } else {
        // Inter-word (or a degenerate single-column organisation): two
        // distinct regular cells by ordinal offset, which terminates for
        // every array with at least two cells.
        let victim = rng.gen_range(0..regular);
        let aggressor = (victim + rng.gen_range(1..regular)) % regular;
        (regular_cell_at(org, victim), regular_cell_at(org, aggressor))
    }
}

/// Maps an ordinal in `0..rows*bpc*bpw` to the cell index of a regular
/// (non-spare) cell.
fn regular_cell_at(org: &ArrayOrg, ord: usize) -> usize {
    let bit = ord % org.bpw();
    let col = (ord / org.bpw()) % org.bpc();
    let row = ord / (org.bpw() * org.bpc());
    org.cell_at(row, col, bit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::march;
    use bisram_rng::rngs::StdRng;
    use bisram_rng::SeedableRng;

    fn org() -> ArrayOrg {
        ArrayOrg::new(128, 8, 4, 0).unwrap()
    }

    #[test]
    fn ifa9_covers_saf_tf_cf_drf_fully_with_johnson_backgrounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let report = measure(&mut rng, org(), &march::ifa9(), true, 25, true);
        for c in &report.classes {
            if c.class == FaultClass::Sof {
                continue; // see ifa13_needed_for_stuck_open below
            }
            assert_eq!(
                c.fraction(),
                1.0,
                "IFA-9/Johnson must detect every {} fault; got {}/{}",
                c.class,
                c.detected,
                c.injected
            );
        }
    }

    #[test]
    fn ifa13_needed_for_stuck_open() {
        // The classical IFA result: the 9N test lacks the read-after-
        // write needed to observe a stuck-open cell echoing the sense
        // amplifier, while IFA-13's `⇑(r0,w1,r1)` elements catch it.
        // (The paper's §V claim that IFA-9 detects stuck-open faults only
        // holds for the boundary cases; see EXPERIMENTS.md.)
        let mut rng = StdRng::seed_from_u64(19);
        let ifa9 = measure(&mut rng, org(), &march::ifa9(), true, 25, false);
        let mut rng = StdRng::seed_from_u64(19);
        let ifa13 = measure(&mut rng, org(), &march::ifa13(), true, 25, false);
        assert_eq!(ifa13.class(FaultClass::Sof).unwrap().fraction(), 1.0);
        assert!(ifa9.class(FaultClass::Sof).unwrap().fraction() < 0.5);
    }

    #[test]
    fn single_background_misses_intra_word_couplings() {
        // Random intra-word state couplings: the cases where the forced
        // value equals the sensitizing state are invisible under uniform
        // data, so a single background hovers near half coverage while
        // the Johnson schedule reaches 100%.
        let mut rng = StdRng::seed_from_u64(13);
        let single = measure(&mut rng, org(), &march::ifa9(), false, 40, true);
        let mut rng = StdRng::seed_from_u64(13);
        let johnson = measure(&mut rng, org(), &march::ifa9(), true, 40, true);
        let s = single.class(FaultClass::CfSt).unwrap().fraction();
        let j = johnson.class(FaultClass::CfSt).unwrap().fraction();
        assert_eq!(j, 1.0, "johnson CFst coverage");
        assert!(s < 0.9, "single-background CFst coverage suspiciously high: {s}");
        assert!(j > s);
        // Stuck-at coverage is unaffected by the background schedule.
        assert_eq!(single.class(FaultClass::Saf).unwrap().fraction(), 1.0);
    }

    #[test]
    fn mats_plus_misses_retention_faults() {
        let mut rng = StdRng::seed_from_u64(17);
        let report = measure(&mut rng, org(), &march::mats_plus(), true, 20, false);
        assert_eq!(report.class(FaultClass::Drf).unwrap().fraction(), 0.0);
        assert_eq!(report.class(FaultClass::Saf).unwrap().fraction(), 1.0);
    }

    #[test]
    fn coupling_pair_terminates_for_one_bit_words() {
        // Regression: bpw == 1 sent the intra-word aggressor loop into
        // `b != vbit` with a single candidate — it could never exit. The
        // fallback must produce a distinct cross-column aggressor.
        let org = ArrayOrg::new(64, 1, 4, 0).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        for case in 0..200 {
            let (v, a) = coupling_pair(&mut rng, &org, true);
            assert_ne!(v, a, "case {case}: victim {v} == aggressor {a}");
            assert_eq!(
                org.cell_coords(v).0,
                org.cell_coords(a).0,
                "case {case}: cross-column fallback must stay in the victim row"
            );
        }
    }

    #[test]
    fn coupling_pair_terminates_for_single_column_arrays() {
        // bpw == 1 and bpc == 1: the only distinct aggressor lives in
        // another row; the inter-word path must find it without spinning.
        let org = ArrayOrg::new(16, 1, 1, 0).unwrap();
        let mut rng = StdRng::seed_from_u64(29);
        for case in 0..200 {
            for intra in [false, true] {
                let (v, a) = coupling_pair(&mut rng, &org, intra);
                assert_ne!(v, a, "case {case} intra={intra}");
                assert!(v < org.total_cells() && a < org.total_cells());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two regular cells")]
    fn coupling_pair_rejects_one_cell_arrays() {
        let org = ArrayOrg::new(1, 1, 1, 0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let _ = coupling_pair(&mut rng, &org, false);
    }

    #[test]
    fn report_accessors() {
        let r = CoverageReport {
            test: "t".into(),
            johnson: true,
            classes: vec![
                ClassCoverage {
                    class: FaultClass::Saf,
                    injected: 10,
                    detected: 9,
                },
                ClassCoverage {
                    class: FaultClass::Tf,
                    injected: 0,
                    detected: 0,
                },
            ],
        };
        assert!((r.class(FaultClass::Saf).unwrap().fraction() - 0.9).abs() < 1e-12);
        assert_eq!(r.class(FaultClass::Tf).unwrap().fraction(), 1.0);
        assert!(r.class(FaultClass::Drf).is_none());
        assert!((r.overall() - 0.9).abs() < 1e-12);
    }
}
