//! TRPLA: the microprogrammed Test and Repair Controller.
//!
//! Paper §V: "the microprogrammed control unit is called Test and Repair
//! Controller PLA (TRPLA) ... implemented as a pseudo-NMOS NOR-NOR PLA
//! loaded with the control code. During layout synthesis the control code
//! is read in at runtime by BISRAMGEN from two input files (one for the
//! AND plane, the other for the OR plane). Changing these files to
//! implement a different test algorithm is a simple and straightforward
//! matter."
//!
//! This module contains the full path:
//!
//! 1. [`assemble`] compiles a [`MarchTest`] into a two-pass control
//!    program (pass 1 captures faulty rows, pass 2 re-tests through the
//!    repair mapping and raises *Repair Unsuccessful* on any mismatch),
//! 2. [`ControlProgram::synthesize_pla`] lowers the program onto PLA
//!    personality matrices (the NOR–NOR planes, logically AND–OR),
//! 3. [`Pla::export_planes`] / [`Pla::import_planes`] are the two-file
//!    interchange format,
//! 4. [`PlaFsm`] is the flip-flop + PLA hardware model, proven equivalent
//!    to the microinstruction interpreter in the test suite,
//! 5. [`ControllerSim`] executes the program cycle by cycle against a
//!    [`bisram_mem::SramModel`].

use crate::datagen;
use crate::march::{MarchElement, MarchTest};
use crate::RowMap;
use bisram_mem::{SramModel, Word};

/// The control signals a TRPLA state asserts (the OR-plane outputs other
/// than the next-state field).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlWord {
    /// Perform a read this cycle.
    pub read: bool,
    /// Perform a write this cycle.
    pub write: bool,
    /// The data for the access is the complemented background.
    pub invert: bool,
    /// Advance the address counter (gated: only asserted on the
    /// loop-back product term, i.e. when the terminal count is false).
    pub count_en: bool,
    /// Count direction is down.
    pub count_down: bool,
    /// Load the address counter with zero.
    pub addr_load_zero: bool,
    /// Load the address counter with the terminal (all-ones) address.
    pub addr_load_max: bool,
    /// Step the DATAGEN Johnson counter to the next background.
    pub bg_step: bool,
    /// Reset DATAGEN to the first background.
    pub bg_reset: bool,
    /// Pass-1 mismatch action: capture the failing row into the TLB.
    pub capture: bool,
    /// Pass-2 mismatch action: raise the Repair Unsuccessful status.
    pub flag_unrepairable: bool,
    /// Request the processor-mediated retention pause.
    pub request_delay: bool,
    /// Route accesses through the repair mapping (pass 2 onward).
    pub enable_mapping: bool,
    /// Self-test complete, repair (if any) successful.
    pub done: bool,
    /// Terminal failure state (Repair Unsuccessful).
    pub fail: bool,
}

/// Number of control-signal outputs in the OR plane.
pub const CONTROL_BITS: usize = 15;

impl ControlWord {
    /// Encodes the word as OR-plane output bits (fixed order).
    pub fn to_bits(self) -> [bool; CONTROL_BITS] {
        [
            self.read,
            self.write,
            self.invert,
            self.count_en,
            self.count_down,
            self.addr_load_zero,
            self.addr_load_max,
            self.bg_step,
            self.bg_reset,
            self.capture,
            self.flag_unrepairable,
            self.request_delay,
            self.enable_mapping,
            self.done,
            self.fail,
        ]
    }

    /// Decodes OR-plane output bits.
    ///
    /// # Panics
    ///
    /// Panics if fewer than [`CONTROL_BITS`] bits are supplied.
    pub fn from_bits(bits: &[bool]) -> Self {
        assert!(bits.len() >= CONTROL_BITS, "not enough control bits");
        ControlWord {
            read: bits[0],
            write: bits[1],
            invert: bits[2],
            count_en: bits[3],
            count_down: bits[4],
            addr_load_zero: bits[5],
            addr_load_max: bits[6],
            bg_step: bits[7],
            bg_reset: bits[8],
            capture: bits[9],
            flag_unrepairable: bits[10],
            request_delay: bits[11],
            enable_mapping: bits[12],
            done: bits[13],
            fail: bits[14],
        }
    }
}

/// Next-state selection of a microinstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Next {
    /// Unconditional successor.
    Step(usize),
    /// Branch on the address counter's terminal count. The loop-back
    /// (`else_`) edge is the one that counts.
    IfAddrTc {
        /// Successor when the terminal count is reached.
        then: usize,
        /// Successor (loop) otherwise.
        else_: usize,
    },
    /// Branch on the background schedule being exhausted.
    IfBgLast {
        /// Successor when the last background has been applied.
        then: usize,
        /// Successor (loop to re-run the march) otherwise.
        else_: usize,
    },
}

/// One microinstruction: the asserted control word plus sequencing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroInstr {
    /// Control outputs.
    pub ctrl: ControlWord,
    /// Next-state selection.
    pub next: Next,
}

/// A complete control program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlProgram {
    name: String,
    instrs: Vec<MicroInstr>,
}

impl ControlProgram {
    /// Program name (derives from the march test).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The microinstructions; state `i` is `instrs[i]`, reset state is 0.
    pub fn instrs(&self) -> &[MicroInstr] {
        &self.instrs
    }

    /// Number of controller states.
    pub fn state_count(&self) -> usize {
        self.instrs.len()
    }

    /// Flip-flops needed to encode the states.
    pub fn flip_flops(&self) -> u32 {
        (usize::BITS - (self.state_count() - 1).leading_zeros()).max(1)
    }

    /// Lowers the program to PLA personality matrices.
    ///
    /// Inputs: the state register bits, then `addr_tc`, then `bg_last`.
    /// Outputs: the [`CONTROL_BITS`] control signals, then the next-state
    /// bits. Each state contributes one product term (two for branches).
    pub fn synthesize_pla(&self) -> Pla {
        let sbits = self.flip_flops() as usize;
        let inputs = sbits + 2; // + addr_tc + bg_last
        let outputs = CONTROL_BITS + sbits;
        let mut and_plane: Vec<Vec<Tri>> = Vec::new();
        let mut or_plane: Vec<Vec<bool>> = Vec::new();

        let mut push_term =
            |state: usize, addr_tc: Tri, bg_last: Tri, ctrl: ControlWord, next: usize| {
                let mut term = Vec::with_capacity(inputs);
                for b in 0..sbits {
                    term.push(if (state >> b) & 1 == 1 { Tri::One } else { Tri::Zero });
                }
                term.push(addr_tc);
                term.push(bg_last);
                and_plane.push(term);
                let mut out = ctrl.to_bits().to_vec();
                for b in 0..sbits {
                    out.push((next >> b) & 1 == 1);
                }
                or_plane.push(out);
            };

        for (state, mi) in self.instrs.iter().enumerate() {
            match mi.next {
                Next::Step(next) => {
                    push_term(state, Tri::DontCare, Tri::DontCare, mi.ctrl, next);
                }
                Next::IfAddrTc { then, else_ } => {
                    // The loop-back edge counts; the exit edge does not.
                    let mut exit_ctrl = mi.ctrl;
                    exit_ctrl.count_en = false;
                    push_term(state, Tri::One, Tri::DontCare, exit_ctrl, then);
                    push_term(state, Tri::Zero, Tri::DontCare, mi.ctrl, else_);
                }
                Next::IfBgLast { then, else_ } => {
                    // Only the loop-back edge steps the background.
                    let mut exit_ctrl = mi.ctrl;
                    exit_ctrl.bg_step = false;
                    push_term(state, Tri::DontCare, Tri::One, exit_ctrl, then);
                    push_term(state, Tri::DontCare, Tri::Zero, mi.ctrl, else_);
                }
            }
        }
        Pla {
            inputs,
            outputs,
            and_plane,
            or_plane,
        }
    }
}

/// Assembles a march test into the two-pass test-and-repair control
/// program of paper §V/§VI:
///
/// * **Pass 1** runs the march over the regular array; every read
///   mismatch asserts `capture`, registering the failing row in the TLB.
/// * **Pass 2** re-runs the march with `enable_mapping` asserted, so
///   faulty rows divert to their spares; any mismatch asserts
///   `flag_unrepairable` (too many faults, or faulty spares).
///
/// The resulting program ends in a `done` state (repair successful) and
/// contains a `fail` sink reachable from pass 2.
pub fn assemble(test: &MarchTest) -> ControlProgram {
    let mut instrs: Vec<MicroInstr> = Vec::new();
    // Forward references are resolved by construction: we lay out states
    // sequentially and know each block's successor as we emit it.

    // State 0: global init.
    instrs.push(MicroInstr {
        ctrl: ControlWord {
            bg_reset: true,
            addr_load_zero: true,
            ..ControlWord::default()
        },
        next: Next::Step(1),
    });

    let pass1_start = instrs.len();
    emit_pass(&mut instrs, test, Pass::Capture);
    // Background check for pass 1 was emitted by emit_pass pointing at
    // instrs.len() as its exit — which is the pass-2 entry we emit now.
    let pass2_entry = instrs.len();
    debug_assert_eq!(pass2_entry, pass1_start + pass_len(test));
    instrs.push(MicroInstr {
        ctrl: ControlWord {
            bg_reset: true,
            addr_load_zero: true,
            enable_mapping: true,
            ..ControlWord::default()
        },
        next: Next::Step(pass2_entry + 1),
    });
    emit_pass(&mut instrs, test, Pass::Verify);
    // Done state.
    let done = instrs.len();
    instrs.push(MicroInstr {
        ctrl: ControlWord {
            done: true,
            enable_mapping: true,
            ..ControlWord::default()
        },
        next: Next::Step(done),
    });
    // Fail sink (Repair Unsuccessful). The mismatch signal routes here in
    // hardware; in the program it is a self-looping terminal state.
    let fail = instrs.len();
    instrs.push(MicroInstr {
        ctrl: ControlWord {
            fail: true,
            ..ControlWord::default()
        },
        next: Next::Step(fail),
    });

    ControlProgram {
        name: format!("TRPLA({})", test.name()),
        instrs,
    }
}

/// Which pass a block of states belongs to.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Pass {
    Capture,
    Verify,
}

/// Number of states one pass occupies (setup/ops/delay states + the
/// background-check state).
fn pass_len(test: &MarchTest) -> usize {
    let mut n = 0;
    for e in test.elements() {
        n += match e {
            MarchElement::Sweep { ops, .. } => 1 + ops.len(),
            MarchElement::Delay => 1,
        };
    }
    n + 1 // background check
}

fn emit_pass(instrs: &mut Vec<MicroInstr>, test: &MarchTest, pass: Pass) {
    let mapping = pass == Pass::Verify;
    let base = instrs.len();
    let first_element = base;
    // Pre-compute element entry offsets.
    let mut entries = Vec::new();
    let mut cursor = base;
    for e in test.elements() {
        entries.push(cursor);
        cursor += match e {
            MarchElement::Sweep { ops, .. } => 1 + ops.len(),
            MarchElement::Delay => 1,
        };
    }
    let bg_check = cursor;
    let pass_exit = bg_check + 1; // next block after this pass

    for (i, e) in test.elements().iter().enumerate() {
        let next_entry = if i + 1 < entries.len() {
            entries[i + 1]
        } else {
            bg_check
        };
        match e {
            MarchElement::Delay => {
                instrs.push(MicroInstr {
                    ctrl: ControlWord {
                        request_delay: true,
                        enable_mapping: mapping,
                        ..ControlWord::default()
                    },
                    next: Next::Step(next_entry),
                });
            }
            MarchElement::Sweep { order, ops } => {
                let down = !order.effective_up();
                // Setup state: load the start address.
                instrs.push(MicroInstr {
                    ctrl: ControlWord {
                        addr_load_zero: !down,
                        addr_load_max: down,
                        enable_mapping: mapping,
                        ..ControlWord::default()
                    },
                    next: Next::Step(instrs.len() + 1 - base + base),
                });
                let first_op = instrs.len();
                for (j, op) in ops.iter().enumerate() {
                    let is_last = j + 1 == ops.len();
                    let ctrl = ControlWord {
                        read: op.is_read(),
                        write: !op.is_read(),
                        invert: op.is_inverse(),
                        capture: op.is_read() && pass == Pass::Capture,
                        flag_unrepairable: op.is_read() && pass == Pass::Verify,
                        enable_mapping: mapping,
                        count_en: is_last,
                        count_down: is_last && down,
                        ..ControlWord::default()
                    };
                    let next = if is_last {
                        Next::IfAddrTc {
                            then: next_entry,
                            else_: first_op,
                        }
                    } else {
                        Next::Step(instrs.len() + 1)
                    };
                    instrs.push(MicroInstr { ctrl, next });
                }
            }
        }
    }
    // Background check: exhausted → leave the pass, otherwise step the
    // background and re-run the march from the first element.
    debug_assert_eq!(instrs.len(), bg_check);
    instrs.push(MicroInstr {
        ctrl: ControlWord {
            bg_step: true,
            addr_load_zero: true,
            enable_mapping: mapping,
            ..ControlWord::default()
        },
        next: Next::IfBgLast {
            then: pass_exit,
            else_: first_element,
        },
    });
}

/// Ternary AND-plane entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tri {
    /// Input must be 1.
    One,
    /// Input must be 0.
    Zero,
    /// Input ignored.
    DontCare,
}

/// Errors from [`Pla::import_planes`] — the two-file control-code
/// interchange is the one externally-writable input of the compiler, so
/// its failures are typed rather than stringly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaneParseError {
    /// A character outside the plane alphabet (`1`/`0`/`-` for the AND
    /// plane, `1`/`0` for the OR plane).
    BadChar {
        /// Which plane file (`"AND"` or `"OR"`).
        plane: &'static str,
        /// 1-based line number.
        line: usize,
        /// The offending character.
        ch: char,
    },
    /// The two files disagree on the number of product terms.
    TermCountMismatch {
        /// Rows in the AND plane.
        and_terms: usize,
        /// Rows in the OR plane.
        or_terms: usize,
    },
    /// Rows within one plane have differing widths.
    Ragged {
        /// Which plane file (`"AND"` or `"OR"`).
        plane: &'static str,
    },
}

impl std::fmt::Display for PlaneParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaneParseError::BadChar { plane, line, ch } => {
                write!(f, "{plane} plane line {line}: bad char {ch:?}")
            }
            PlaneParseError::TermCountMismatch {
                and_terms,
                or_terms,
            } => write!(
                f,
                "term count mismatch: {and_terms} AND rows vs {or_terms} OR rows"
            ),
            PlaneParseError::Ragged { plane } => write!(f, "ragged {plane} plane"),
        }
    }
}

impl std::error::Error for PlaneParseError {}

/// A two-level PLA: personality matrices for the AND and OR planes.
///
/// Electrically a pseudo-NMOS NOR–NOR structure; logically, each product
/// term is the AND of its care inputs and each output is the OR of its
/// connected product terms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pla {
    /// Number of PLA inputs (state bits + condition bits).
    pub inputs: usize,
    /// Number of PLA outputs (control bits + next-state bits).
    pub outputs: usize,
    /// `and_plane[t][i]` — term `t`'s requirement on input `i`.
    pub and_plane: Vec<Vec<Tri>>,
    /// `or_plane[t][o]` — whether term `t` drives output `o`.
    pub or_plane: Vec<Vec<bool>>,
}

impl Pla {
    /// Number of product terms.
    pub fn terms(&self) -> usize {
        self.and_plane.len()
    }

    /// Evaluates the PLA.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has the wrong length.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.inputs, "PLA input width mismatch");
        let mut out = vec![false; self.outputs];
        for (term, outs) in self.and_plane.iter().zip(self.or_plane.iter()) {
            let active = term.iter().zip(inputs.iter()).all(|(t, &v)| match t {
                Tri::One => v,
                Tri::Zero => !v,
                Tri::DontCare => true,
            });
            if active {
                for (o, drive) in out.iter_mut().zip(outs.iter()) {
                    *o |= drive;
                }
            }
        }
        out
    }

    /// Exports the personality as the paper's two control-code files:
    /// `(and_plane, or_plane)`. AND-plane rows use `1`/`0`/`-` per input;
    /// OR-plane rows use `1`/`0` per output.
    pub fn export_planes(&self) -> (String, String) {
        let mut and_s = String::new();
        for term in &self.and_plane {
            for t in term {
                and_s.push(match t {
                    Tri::One => '1',
                    Tri::Zero => '0',
                    Tri::DontCare => '-',
                });
            }
            and_s.push('\n');
        }
        let mut or_s = String::new();
        for outs in &self.or_plane {
            for &b in outs {
                or_s.push(if b { '1' } else { '0' });
            }
            or_s.push('\n');
        }
        (and_s, or_s)
    }

    /// Imports a personality from the two-file format.
    ///
    /// # Errors
    ///
    /// Returns a [`PlaneParseError`] when the files are malformed
    /// (ragged rows, unknown characters, mismatched term counts).
    pub fn import_planes(and_plane: &str, or_plane: &str) -> Result<Pla, PlaneParseError> {
        let mut and_rows: Vec<Vec<Tri>> = Vec::new();
        for (ln, line) in and_plane.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let mut row = Vec::new();
            for ch in line.chars() {
                row.push(match ch {
                    '1' => Tri::One,
                    '0' => Tri::Zero,
                    '-' => Tri::DontCare,
                    c => {
                        return Err(PlaneParseError::BadChar {
                            plane: "AND",
                            line: ln + 1,
                            ch: c,
                        })
                    }
                });
            }
            and_rows.push(row);
        }
        let mut or_rows: Vec<Vec<bool>> = Vec::new();
        for (ln, line) in or_plane.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let mut row = Vec::new();
            for ch in line.chars() {
                row.push(match ch {
                    '1' => true,
                    '0' => false,
                    c => {
                        return Err(PlaneParseError::BadChar {
                            plane: "OR",
                            line: ln + 1,
                            ch: c,
                        })
                    }
                });
            }
            or_rows.push(row);
        }
        if and_rows.len() != or_rows.len() {
            return Err(PlaneParseError::TermCountMismatch {
                and_terms: and_rows.len(),
                or_terms: or_rows.len(),
            });
        }
        let inputs = and_rows.first().map_or(0, |r| r.len());
        let outputs = or_rows.first().map_or(0, |r| r.len());
        if and_rows.iter().any(|r| r.len() != inputs) {
            return Err(PlaneParseError::Ragged { plane: "AND" });
        }
        if or_rows.iter().any(|r| r.len() != outputs) {
            return Err(PlaneParseError::Ragged { plane: "OR" });
        }
        Ok(Pla {
            inputs,
            outputs,
            and_plane: and_rows,
            or_plane: or_rows,
        })
    }
}

/// The hardware FSM: a state register of [`ControlProgram::flip_flops`]
/// bits clocked from the PLA's next-state outputs.
#[derive(Debug, Clone)]
pub struct PlaFsm {
    pla: Pla,
    state_bits: usize,
    state: usize,
}

impl PlaFsm {
    /// Builds the FSM from a synthesized PLA.
    pub fn new(pla: Pla, state_bits: usize) -> Self {
        PlaFsm {
            pla,
            state_bits,
            state: 0,
        }
    }

    /// Current state code.
    pub fn state(&self) -> usize {
        self.state
    }

    /// One clock: evaluates the PLA at the current state with the given
    /// condition inputs, latches the next state, and returns the control
    /// word asserted *this* cycle.
    pub fn step(&mut self, addr_tc: bool, bg_last: bool) -> ControlWord {
        let mut inputs = Vec::with_capacity(self.pla.inputs);
        for b in 0..self.state_bits {
            inputs.push((self.state >> b) & 1 == 1);
        }
        inputs.push(addr_tc);
        inputs.push(bg_last);
        let out = self.pla.eval(&inputs);
        let ctrl = ControlWord::from_bits(&out);
        let mut next = 0usize;
        for b in 0..self.state_bits {
            if out[CONTROL_BITS + b] {
                next |= 1 << b;
            }
        }
        self.state = next;
        ctrl
    }
}

/// Outcome of a full controller-driven self-test/self-repair session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControllerOutcome {
    /// Rows captured during pass 1, in capture order (deduplicated).
    pub captured_rows: Vec<usize>,
    /// True when pass 2 saw any mismatch — Repair Unsuccessful.
    pub repair_unsuccessful: bool,
    /// Clock cycles consumed.
    pub cycles: u64,
}

/// Cycle-level execution of a control program against a memory.
///
/// The datapath around the controller — ADDGEN, DATAGEN, the comparator
/// and the capture register — is modelled here; the row mapping for pass
/// 2 is provided by the caller (the repair crate's TLB implements
/// [`RowMap`]).
#[derive(Debug)]
pub struct ControllerSim<'a> {
    program: &'a ControlProgram,
    backgrounds: Vec<Word>,
}

impl<'a> ControllerSim<'a> {
    /// Prepares a simulation for a memory of the given word width.
    pub fn new(program: &'a ControlProgram, bpw: usize) -> Self {
        ControllerSim {
            program,
            backgrounds: datagen::backgrounds(bpw),
        }
    }

    /// Runs the program to its `done`/`fail` state. `map` translates rows
    /// while the controller asserts `enable_mapping`; `on_capture` is
    /// invoked for each captured failing row (the TLB load path).
    ///
    /// # Panics
    ///
    /// Panics if the program exceeds a generous cycle budget (runaway
    /// microcode — indicates an assembler bug, only reachable through
    /// internal errors).
    pub fn run(
        &self,
        ram: &mut SramModel,
        map: &dyn RowMap,
        mut on_capture: impl FnMut(usize),
    ) -> ControllerOutcome {
        let words = ram.org().words();
        let bpc = ram.org().bpc();
        let mut addr: usize = 0;
        let mut bg_idx: usize = 0;
        let mut captured: Vec<usize> = Vec::new();
        let mut unrepairable = false;
        let mut cycles: u64 = 0;
        let mut state = 0usize;
        // Generous budget: ops/address × words × backgrounds × passes ×
        // slack.
        let budget: u64 = 64 * (words as u64) * (self.backgrounds.len() as u64) * 2 + 4096;

        loop {
            cycles += 1;
            assert!(cycles < budget, "runaway microprogram");
            let mi = &self.program.instrs()[state];
            let ctrl = mi.ctrl;

            // Datapath actions.
            if ctrl.bg_reset {
                bg_idx = 0;
            }
            if ctrl.addr_load_zero {
                addr = 0;
            }
            if ctrl.addr_load_max {
                addr = words - 1;
            }
            if ctrl.request_delay {
                ram.retention_pause();
            }
            let bg = &self.backgrounds[bg_idx];
            let data = if ctrl.invert { !bg.clone() } else { bg.clone() };
            let row = addr / bpc;
            let col = addr % bpc;
            let phys_row = if ctrl.enable_mapping {
                map.map_row(row)
            } else {
                row
            };
            if ctrl.write {
                ram.write_word_at(phys_row, col, data.clone());
            }
            if ctrl.read {
                let got = ram.read_word_at(phys_row, col);
                if datagen::mismatch(&got, &data) {
                    if ctrl.capture && !captured.contains(&row) {
                        captured.push(row);
                        on_capture(row);
                    }
                    if ctrl.flag_unrepairable {
                        unrepairable = true;
                    }
                }
            }

            // Sequencing.
            let addr_tc = if ctrl.count_down { addr == 0 } else { addr == words - 1 };
            let bg_last = bg_idx + 1 >= self.backgrounds.len();
            let next = match mi.next {
                Next::Step(n) => n,
                Next::IfAddrTc { then, else_ } => {
                    if addr_tc {
                        then
                    } else {
                        // The loop-back edge counts.
                        if ctrl.count_en {
                            if ctrl.count_down {
                                addr -= 1;
                            } else {
                                addr += 1;
                            }
                        }
                        else_
                    }
                }
                Next::IfBgLast { then, else_ } => {
                    if bg_last {
                        then
                    } else {
                        if ctrl.bg_step {
                            bg_idx += 1;
                        }
                        else_
                    }
                }
            };
            if ctrl.done || ctrl.fail {
                return ControllerOutcome {
                    captured_rows: captured,
                    repair_unsuccessful: unrepairable || ctrl.fail,
                    cycles,
                };
            }
            state = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::march;
    use crate::IdentityMap;
    use bisram_mem::{ArrayOrg, Fault, FaultKind};

    #[test]
    fn assembled_program_shape() {
        let p = assemble(&march::ifa9());
        // IFA-9: init + 2 passes × (7 setups + 12 ops + 2 delays + 1 bg
        // check) + pass-2 entry + done + fail = 1 + 44 + 3 = 48.
        assert_eq!(p.state_count(), 48);
        assert_eq!(p.flip_flops(), 6, "fits the paper's 6 flip-flops");
        assert!(p.name().contains("IFA-9"));
    }

    #[test]
    fn pla_synthesis_term_count() {
        let p = assemble(&march::ifa9());
        let pla = p.synthesize_pla();
        // One term per Step state, two per branch state.
        let branches = p
            .instrs()
            .iter()
            .filter(|i| !matches!(i.next, Next::Step(_)))
            .count();
        assert_eq!(pla.terms(), p.state_count() + branches);
        assert_eq!(pla.inputs, 6 + 2);
        assert_eq!(pla.outputs, CONTROL_BITS + 6);
    }

    #[test]
    fn pla_fsm_is_equivalent_to_microcode() {
        let p = assemble(&march::ifa9());
        let pla = p.synthesize_pla();
        let sbits = p.flip_flops() as usize;
        // For every state and condition combination the PLA must produce
        // the interpreter's control word (with the documented gating) and
        // next state.
        for (s, mi) in p.instrs().iter().enumerate() {
            for addr_tc in [false, true] {
                for bg_last in [false, true] {
                    let mut fsm = PlaFsm::new(pla.clone(), sbits);
                    // Force the FSM into state s.
                    fsm.state = s;
                    let ctrl = fsm.step(addr_tc, bg_last);
                    let (expect_ctrl, expect_next) = match mi.next {
                        Next::Step(n) => (mi.ctrl, n),
                        Next::IfAddrTc { then, else_ } => {
                            let mut c = mi.ctrl;
                            if addr_tc {
                                c.count_en = false;
                                (c, then)
                            } else {
                                (c, else_)
                            }
                        }
                        Next::IfBgLast { then, else_ } => {
                            let mut c = mi.ctrl;
                            if bg_last {
                                c.bg_step = false;
                                (c, then)
                            } else {
                                (c, else_)
                            }
                        }
                    };
                    assert_eq!(ctrl, expect_ctrl, "state {s} tc={addr_tc} bg={bg_last}");
                    assert_eq!(fsm.state(), expect_next, "state {s} next");
                }
            }
        }
    }

    #[test]
    fn plane_files_roundtrip() {
        let p = assemble(&march::mats_plus());
        let pla = p.synthesize_pla();
        let (and_s, or_s) = pla.export_planes();
        let back = Pla::import_planes(&and_s, &or_s).expect("roundtrip parses");
        assert_eq!(back, pla);
    }

    #[test]
    fn plane_import_rejects_garbage() {
        assert!(Pla::import_planes("10x\n", "11\n").is_err());
        assert!(Pla::import_planes("10-\n", "1x\n").is_err());
        assert!(Pla::import_planes("10-\n10-\n", "11\n").is_err());
        assert!(Pla::import_planes("10-\n1-\n", "11\n11\n").is_err());
    }

    #[test]
    fn controller_passes_clean_memory() {
        let org = ArrayOrg::new(64, 8, 4, 2).unwrap();
        let mut ram = SramModel::new(org);
        let p = assemble(&march::ifa9());
        let sim = ControllerSim::new(&p, 8);
        let out = sim.run(&mut ram, &IdentityMap, |_| {});
        assert!(!out.repair_unsuccessful);
        assert!(out.captured_rows.is_empty());
        assert!(out.cycles > 0);
    }

    #[test]
    fn controller_captures_faulty_row_in_pass1() {
        let org = ArrayOrg::new(64, 8, 4, 2).unwrap();
        let mut ram = SramModel::new(org);
        ram.inject(Fault::new(org.cell_at(3, 1, 0), FaultKind::StuckAt(true)));
        let p = assemble(&march::ifa9());
        let sim = ControllerSim::new(&p, 8);
        let mut captured_cb = Vec::new();
        let out = sim.run(&mut ram, &IdentityMap, |r| captured_cb.push(r));
        assert_eq!(out.captured_rows, vec![3]);
        assert_eq!(captured_cb, vec![3]);
        // No mapping supplied → pass 2 sees the same fault: unrepaired.
        assert!(out.repair_unsuccessful);
    }

    #[test]
    fn controller_agrees_with_functional_engine() {
        use crate::engine::{run_march, MarchConfig};
        let org = ArrayOrg::new(64, 8, 4, 0).unwrap();
        let fault = Fault::new(org.cell_at(9, 2, 4), FaultKind::TransitionUp);

        let mut m1 = SramModel::new(org);
        m1.inject(fault);
        let functional = run_march(&march::ifa9(), &mut m1, &MarchConfig::default(), None);

        let mut m2 = SramModel::new(org);
        m2.inject(fault);
        let p = assemble(&march::ifa9());
        let out = ControllerSim::new(&p, 8).run(&mut m2, &IdentityMap, |_| {});

        assert_eq!(functional.faulty_rows(), out.captured_rows);
    }

    #[test]
    fn control_word_bits_roundtrip() {
        let c = ControlWord {
            read: true,
            capture: true,
            done: true,
            ..Default::default()
        };
        let bits = c.to_bits();
        assert_eq!(ControlWord::from_bits(&bits), c);
    }
}
