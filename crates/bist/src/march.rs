//! March-test notation and the built-in test library.
//!
//! A march test is a sequence of *march elements*; each element walks the
//! address space in a direction (⇑ ascending, ⇓ descending, ⇕ either) and
//! applies a fixed sequence of operations at every address before moving
//! on. `r0`/`r1` read and expect the current data background (or its
//! complement); `w0`/`w1` write it. A `Delay` element is the retention
//! pause of the IFA tests.

/// One memory operation inside a march element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MarchOp {
    /// Read, expect the background pattern ("0").
    R0,
    /// Read, expect the complemented background ("1").
    R1,
    /// Write the background pattern ("0").
    W0,
    /// Write the complemented background ("1").
    W1,
}

impl MarchOp {
    /// True for reads.
    pub fn is_read(self) -> bool {
        matches!(self, MarchOp::R0 | MarchOp::R1)
    }

    /// True when the op refers to the complemented background.
    pub fn is_inverse(self) -> bool {
        matches!(self, MarchOp::R1 | MarchOp::W1)
    }
}

impl std::fmt::Display for MarchOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MarchOp::R0 => "r0",
            MarchOp::R1 => "r1",
            MarchOp::W0 => "w0",
            MarchOp::W1 => "w1",
        };
        f.write_str(s)
    }
}

/// Address sweep direction of a march element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrOrder {
    /// Ascending (`⇑`).
    Up,
    /// Descending (`⇓`).
    Down,
    /// Direction irrelevant (`⇕`); executed ascending.
    Either,
}

impl AddrOrder {
    /// The concrete direction used during execution.
    pub fn effective_up(self) -> bool {
        !matches!(self, AddrOrder::Down)
    }
}

/// A march element or a retention delay.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MarchElement {
    /// Sweep all addresses applying `ops` at each.
    Sweep {
        /// Address order.
        order: AddrOrder,
        /// Operations applied per address.
        ops: Vec<MarchOp>,
    },
    /// Retention pause (the processor tristates the array for ~100 ms).
    Delay,
}

impl MarchElement {
    /// Ascending sweep.
    pub fn up(ops: &[MarchOp]) -> Self {
        MarchElement::Sweep {
            order: AddrOrder::Up,
            ops: ops.to_vec(),
        }
    }

    /// Descending sweep.
    pub fn down(ops: &[MarchOp]) -> Self {
        MarchElement::Sweep {
            order: AddrOrder::Down,
            ops: ops.to_vec(),
        }
    }

    /// Direction-independent sweep.
    pub fn either(ops: &[MarchOp]) -> Self {
        MarchElement::Sweep {
            order: AddrOrder::Either,
            ops: ops.to_vec(),
        }
    }

    /// Operations per address (0 for `Delay`).
    pub fn ops_per_address(&self) -> usize {
        match self {
            MarchElement::Sweep { ops, .. } => ops.len(),
            MarchElement::Delay => 0,
        }
    }
}

impl std::fmt::Display for MarchElement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MarchElement::Sweep { order, ops } => {
                let arrow = match order {
                    AddrOrder::Up => "^",
                    AddrOrder::Down => "v",
                    AddrOrder::Either => "$",
                };
                let body: Vec<String> = ops.iter().map(|o| o.to_string()).collect();
                write!(f, "{arrow}({})", body.join(","))
            }
            MarchElement::Delay => f.write_str("Delay"),
        }
    }
}

/// A complete march test.
///
/// ```
/// use bisram_bist::march;
/// let t = march::ifa9();
/// assert_eq!(t.name(), "IFA-9");
/// // IFA-9 is a 12N test (plus two delays).
/// assert_eq!(t.ops_per_address(), 12);
/// assert_eq!(t.delay_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarchTest {
    name: String,
    elements: Vec<MarchElement>,
}

impl MarchTest {
    /// Creates a march test from elements.
    ///
    /// # Panics
    ///
    /// Panics if `elements` is empty or any sweep has no operations.
    pub fn new(name: impl Into<String>, elements: Vec<MarchElement>) -> Self {
        assert!(!elements.is_empty(), "march test needs at least one element");
        for e in &elements {
            if let MarchElement::Sweep { ops, .. } = e {
                assert!(!ops.is_empty(), "march element needs at least one op");
            }
        }
        MarchTest {
            name: name.into(),
            elements,
        }
    }

    /// Test name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The elements.
    pub fn elements(&self) -> &[MarchElement] {
        &self.elements
    }

    /// Total operations applied per address over the whole test (the `N`
    /// multiplier in the usual `kN` complexity notation).
    pub fn ops_per_address(&self) -> usize {
        self.elements.iter().map(|e| e.ops_per_address()).sum()
    }

    /// Number of retention delays.
    pub fn delay_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, MarchElement::Delay))
            .count()
    }

    /// Total memory operations when run over `words` addresses with one
    /// data background.
    pub fn operation_count(&self, words: usize) -> u64 {
        self.ops_per_address() as u64 * words as u64
    }
}

impl std::fmt::Display for MarchTest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let parts: Vec<String> = self.elements.iter().map(|e| e.to_string()).collect();
        write!(f, "{}: {}", self.name, parts.join("; "))
    }
}

use MarchOp::{R0, R1, W0, W1};

/// IFA-9 (Dekker et al., via inductive fault analysis, paper ref. \[18\]) — the test
/// BISRAMGEN microprograms into the TRPLA. March notation (paper §V):
/// `⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); Delay; ⇕(r0,w1);
/// Delay; ⇕(r1)`.
pub fn ifa9() -> MarchTest {
    MarchTest::new(
        "IFA-9",
        vec![
            MarchElement::either(&[W0]),
            MarchElement::up(&[R0, W1]),
            MarchElement::up(&[R1, W0]),
            MarchElement::down(&[R0, W1]),
            MarchElement::down(&[R1, W0]),
            MarchElement::Delay,
            MarchElement::either(&[R0, W1]),
            MarchElement::Delay,
            MarchElement::either(&[R1]),
        ],
    )
}

/// IFA-13: the extended IFA test with read-after-write verification used
/// by Chen and Sunada's scheme (paper §III).
pub fn ifa13() -> MarchTest {
    MarchTest::new(
        "IFA-13",
        vec![
            MarchElement::either(&[W0]),
            MarchElement::up(&[R0, W1, R1]),
            MarchElement::up(&[R1, W0, R0]),
            MarchElement::down(&[R0, W1, R1]),
            MarchElement::down(&[R1, W0, R0]),
            MarchElement::Delay,
            MarchElement::either(&[R0, W1]),
            MarchElement::Delay,
            MarchElement::either(&[R1]),
        ],
    )
}

/// MATS+ — the minimal test detecting all stuck-at and address-decoder
/// faults; used as the cheap baseline in the coverage study.
pub fn mats_plus() -> MarchTest {
    MarchTest::new(
        "MATS+",
        vec![
            MarchElement::either(&[W0]),
            MarchElement::up(&[R0, W1]),
            MarchElement::down(&[R1, W0]),
        ],
    )
}

/// March C- — the classic 10N coupling-fault test.
pub fn march_c_minus() -> MarchTest {
    MarchTest::new(
        "March C-",
        vec![
            MarchElement::either(&[W0]),
            MarchElement::up(&[R0, W1]),
            MarchElement::up(&[R1, W0]),
            MarchElement::down(&[R0, W1]),
            MarchElement::down(&[R1, W0]),
            MarchElement::either(&[R0]),
        ],
    )
}

/// March B — 17N, strong on linked coupling and transition faults.
pub fn march_b() -> MarchTest {
    MarchTest::new(
        "March B",
        vec![
            MarchElement::either(&[W0]),
            MarchElement::up(&[R0, W1, R1, W0, R0, W1]),
            MarchElement::up(&[R1, W0, W1]),
            MarchElement::down(&[R1, W0, W1, W0]),
            MarchElement::down(&[R0, W1, W0]),
        ],
    )
}

/// March LR — 14N, designed for linked (overlapping) faults and
/// realistic address-decoder fault combinations.
pub fn march_lr() -> MarchTest {
    MarchTest::new(
        "March LR",
        vec![
            MarchElement::either(&[W0]),
            MarchElement::down(&[R0, W1]),
            MarchElement::up(&[R1, W0, R0, W1]),
            MarchElement::up(&[R1, W0]),
            MarchElement::up(&[R0, W1, R1, W0]),
            MarchElement::up(&[R0]),
        ],
    )
}

/// PMOVI (the DELTA test) — 13N with a read verifying every write,
/// strong on transition faults in both sweeps.
pub fn pmovi() -> MarchTest {
    MarchTest::new(
        "PMOVI",
        vec![
            MarchElement::down(&[W0]),
            MarchElement::up(&[R0, W1, R1]),
            MarchElement::up(&[R1, W0, R0]),
            MarchElement::down(&[R0, W1, R1]),
            MarchElement::down(&[R1, W0, R0]),
        ],
    )
}

/// All built-in tests.
pub fn library() -> Vec<MarchTest> {
    vec![
        ifa9(),
        ifa13(),
        mats_plus(),
        march_c_minus(),
        march_b(),
        march_lr(),
        pmovi(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_properties() {
        assert!(R0.is_read() && R1.is_read());
        assert!(!W0.is_read());
        assert!(R1.is_inverse() && W1.is_inverse());
        assert!(!R0.is_inverse() && !W0.is_inverse());
    }

    #[test]
    fn complexity_multipliers_match_names() {
        assert_eq!(ifa9().ops_per_address(), 12);
        assert_eq!(ifa13().ops_per_address(), 16);
        assert_eq!(mats_plus().ops_per_address(), 5);
        assert_eq!(march_c_minus().ops_per_address(), 10);
        assert_eq!(march_b().ops_per_address(), 17);
        assert_eq!(march_lr().ops_per_address(), 14);
        assert_eq!(pmovi().ops_per_address(), 13);
    }

    #[test]
    fn ifa_tests_contain_retention_delays() {
        assert_eq!(ifa9().delay_count(), 2);
        assert_eq!(ifa13().delay_count(), 2);
        assert_eq!(mats_plus().delay_count(), 0);
    }

    #[test]
    fn display_notation() {
        let s = ifa9().to_string();
        assert!(s.starts_with("IFA-9: $(w0); ^(r0,w1)"), "{s}");
        assert!(s.contains("Delay"));
        assert!(s.contains("v(r1,w0)"));
    }

    #[test]
    fn operation_count_scales_with_words() {
        assert_eq!(ifa9().operation_count(1024), 12 * 1024);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn empty_test_rejected() {
        MarchTest::new("empty", vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one op")]
    fn empty_element_rejected() {
        MarchTest::new("bad", vec![MarchElement::up(&[])]);
    }

    #[test]
    fn library_names_unique() {
        let names: std::collections::HashSet<_> =
            library().into_iter().map(|t| t.name().to_owned()).collect();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn effective_direction() {
        assert!(AddrOrder::Up.effective_up());
        assert!(AddrOrder::Either.effective_up());
        assert!(!AddrOrder::Down.effective_up());
    }
}
