//! Lane-packed march and MISR evaluation: one array walk, 64 devices.
//!
//! The scalar engines in [`crate::engine`] and [`crate::transparent`]
//! drive one [`bisram_mem::SramModel`]; this module drives a
//! [`LaneSram`] — 64 independent device instances packed one lane per
//! bit — through the *same* op sequences, producing per-lane results as
//! bitmasks. It exists for the fleet lifetime simulator: the in-field
//! fault population is per-cell stuck-at only, which is exactly the
//! regime where a packed walk is bit-exact against the scalar engines
//! (see the `bisram_mem::lane` module docs for the argument).
//!
//! Three pieces:
//!
//! * [`MisrBank`] — 64 copies of the scalar [`crate::Misr`] advanced in
//!   bit-sliced form: a ring buffer of lane masks where logical
//!   signature bit `j` lives at `ring[(head + j) % 64]`, so one clock is
//!   a head decrement plus four tap XORs — for all 64 lanes at once.
//! * [`LaneRowMap`] — the per-lane generalization of [`crate::RowMap`]:
//!   each lane may divert a logical row to a different physical row
//!   (its own repair TLB), so a packed access to a mapped row becomes a
//!   gather/scatter over the handful of distinct physical targets.
//! * [`run_transparent_lanes`] / [`march_row_lanes`] — the packed
//!   counterparts of the transparent session and of marching a single
//!   (spare) physical row destructively.
//!
//! [`run_transparent_lanes`] folds the scalar field controller's whole
//! screen → retry → diagnose ladder into ONE walk: because a
//! transparent run leaves a stuck-at-only memory unchanged, re-running
//! it cannot change any lane's outcome, so the packed run computes the
//! signatures *and* the word-exact per-row mismatch masks in the same
//! pass and lets the caller classify per lane.

use crate::march::{MarchElement, MarchTest};
use crate::transparent::transparent_elements;
use bisram_mem::{LaneSram, ALL_LANES};
use std::collections::HashMap;

/// 64 MISR instances in bit-sliced form.
///
/// Logical signature bit `j` of every lane is stored at
/// `ring[(head + j) % 64]`; bit `l` of that word belongs to lane `l`.
/// Clocking the LFSR is then a rotation of `head` instead of 64 per-lane
/// shifts, and the Galois feedback is four XORs of the carry mask into
/// the tap positions of `x⁶⁴ + x⁴ + x³ + x + 1` — the same polynomial as
/// the scalar [`crate::Misr`], verified bit-exact in this module's
/// tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MisrBank {
    ring: [u64; 64],
    head: usize,
    clocks: u64,
}

impl MisrBank {
    /// Tap bit positions of the feedback polynomial (`POLY = 0x1B`).
    const TAPS: [usize; 4] = [0, 1, 3, 4];

    /// 64 cleared signature registers.
    pub fn new() -> Self {
        MisrBank {
            ring: [0; 64],
            head: 0,
            clocks: 0,
        }
    }

    /// Clocks every lane's MISR once; bit `l` of `input` is the data bit
    /// entering lane `l`'s register.
    #[inline]
    pub fn absorb_bit(&mut self, input: u64) {
        // One logical left shift = move head back one slot; the slot we
        // land on held logical bit 63 (the carry) and becomes logical
        // bit 0 (the shifted-in data, folded with the x⁰ tap below).
        let next = (self.head + 63) % 64;
        let carry = self.ring[next];
        self.head = next;
        self.ring[next] = input;
        for t in Self::TAPS {
            self.ring[(next + t) % 64] ^= carry;
        }
        self.clocks += 1;
    }

    /// XORs `lanes` into logical signature bit `bit` — the packed form of
    /// a transient upset flipping one signature bit in selected lanes.
    ///
    /// # Panics
    ///
    /// Panics when `bit >= 64`.
    #[inline]
    pub fn flip_signature_bit(&mut self, bit: usize, lanes: u64) {
        assert!(bit < 64, "signature bit out of range");
        self.ring[(self.head + bit) % 64] ^= lanes;
    }

    /// Lanes whose signatures differ between the two banks — the packed
    /// `predicted != observed` detection test.
    ///
    /// Only meaningful between banks clocked the same number of times
    /// (the heads then coincide, so slots compare directly); asserted.
    pub fn diff_lanes(&self, other: &MisrBank) -> u64 {
        assert_eq!(
            self.clocks, other.clocks,
            "comparing banks with different clock counts"
        );
        let mut diff = 0u64;
        for i in 0..64 {
            diff |= self.ring[i] ^ other.ring[i];
        }
        diff
    }

    /// Extracts lane `l`'s 64-bit signature, for cross-checks against
    /// the scalar [`crate::Misr`].
    ///
    /// # Panics
    ///
    /// Panics when `lane >= 64`.
    pub fn signature_of_lane(&self, lane: usize) -> u64 {
        assert!(lane < 64, "lane out of range");
        let mut sig = 0u64;
        for j in 0..64 {
            sig |= (self.ring[(self.head + j) % 64] >> lane & 1) << j;
        }
        sig
    }

    /// Clocks absorbed so far (same for every lane).
    pub fn clocks(&self) -> u64 {
        self.clocks
    }
}

impl Default for MisrBank {
    fn default() -> Self {
        MisrBank::new()
    }
}

/// Physical targets of one logical row, split by lane.
struct RowGroups {
    /// Union of the lanes diverted away from the identity mapping.
    union: u64,
    /// Distinct physical rows and the lanes mapped onto each.
    groups: Vec<(usize, u64)>,
}

/// A per-lane row mapping: each lane carries its own repair TLB, so one
/// logical row may resolve to different physical rows in different
/// lanes. Rows with no recorded override resolve to themselves in every
/// lane (identity), so the map stays O(mapped rows) regardless of array
/// size.
pub struct LaneRowMap {
    overrides: HashMap<usize, RowGroups>,
}

impl LaneRowMap {
    /// The identity mapping for every lane.
    pub fn identity() -> Self {
        LaneRowMap {
            overrides: HashMap::new(),
        }
    }

    /// Records that the selected lanes resolve logical `row` to physical
    /// row `phys`. Lanes never recorded for a row keep the identity
    /// mapping.
    pub fn map_lane(&mut self, row: usize, phys: usize, lanes: u64) {
        let entry = self.overrides.entry(row).or_insert(RowGroups {
            union: 0,
            groups: Vec::new(),
        });
        entry.union |= lanes;
        if let Some(g) = entry.groups.iter_mut().find(|g| g.0 == phys) {
            g.1 |= lanes;
        } else {
            entry.groups.push((phys, lanes));
        }
    }

    /// Packed mapped read of one cell: each lane reads through its own
    /// row mapping. Lanes without an override read the identity row.
    #[inline]
    pub fn read_cell(&self, sram: &LaneSram, row: usize, col: usize, bit: usize) -> u64 {
        let base = sram.org().cell_at(row, col, bit);
        match self.overrides.get(&row) {
            None => sram.read_bit(base),
            Some(g) => {
                let mut v = sram.read_bit(base) & !g.union;
                for &(phys, m) in &g.groups {
                    v |= sram.read_bit(sram.org().cell_at(phys, col, bit)) & m;
                }
                v
            }
        }
    }

    /// Packed mapped write of one cell in the selected lanes, each lane
    /// writing through its own row mapping.
    #[inline]
    pub fn write_cell(
        &self,
        sram: &mut LaneSram,
        row: usize,
        col: usize,
        bit: usize,
        values: u64,
        lanes: u64,
    ) {
        let org = *sram.org();
        match self.overrides.get(&row) {
            None => sram.write_bit(org.cell_at(row, col, bit), values, lanes),
            Some(g) => {
                sram.write_bit(org.cell_at(row, col, bit), values, lanes & !g.union);
                for &(phys, m) in &g.groups {
                    sram.write_bit(org.cell_at(phys, col, bit), values, lanes & m);
                }
            }
        }
    }
}

/// Outcome of one packed transparent session.
///
/// Everything the field controller's screen/retry/diagnose ladder can
/// ask is derivable from this single pass (see module docs): signature
/// detection per lane from the two banks, word-exact faulty rows per
/// lane from `row_faults`.
pub struct LaneTransparent {
    /// Per-lane signature bank predicted from the initial contents.
    pub predicted: MisrBank,
    /// Per-lane signature bank observed during the test phase.
    pub observed: MisrBank,
    /// Per *logical* row: lanes with at least one word-exact mismatching
    /// read of that row, restricted to the active lanes.
    pub row_faults: Vec<u64>,
    /// Read operations (words) compressed into each lane's signatures.
    pub reads: u64,
}

impl LaneTransparent {
    /// Lanes whose observed signature differs from the prediction,
    /// restricted to `active` — garbage accumulates in inactive lanes
    /// (their writes were masked out), so callers must mask.
    pub fn detected_lanes(&self, active: u64) -> u64 {
        self.predicted.diff_lanes(&self.observed) & active
    }
}

/// Runs the transparent version of `test` over all lanes at once,
/// through per-lane row mappings, mutating only the `active` lanes.
///
/// Executes exactly the scalar element list
/// (`transparent_elements`): content-relative writes against the
/// per-lane initial snapshot, predicted and observed read streams
/// compressed into per-lane MISR banks, and — in the same pass — the
/// word-exact mismatch bookkeeping of a diagnosing run. `Delay`
/// elements are no-ops: the packed fault model has no retention decay.
///
/// Inactive lanes' cells are never written; their slots in the returned
/// banks and masks are meaningless and must be masked off by the
/// caller.
pub fn run_transparent_lanes(
    test: &MarchTest,
    sram: &mut LaneSram,
    map: &LaneRowMap,
    active: u64,
) -> LaneTransparent {
    let org = *sram.org();
    let words = org.words();
    let bpw = org.bpw();

    // Phase 0: snapshot the initial contents through each lane's map.
    let mut initial: Vec<u64> = Vec::with_capacity(words * bpw);
    for addr in 0..words {
        let (row, col) = org.split(addr);
        for bit in 0..bpw {
            initial.push(map.read_cell(sram, row, col, bit));
        }
    }

    let elements = transparent_elements(test);
    let mut predicted = MisrBank::new();
    let mut observed = MisrBank::new();
    let mut row_faults = vec![0u64; org.rows()];
    let mut reads = 0u64;
    // Per-address phase tracker: false = holds c, true = holds ~c. The
    // prediction and the test walk in lockstep, so one tracker serves
    // both (this is what lets prediction and execution share the pass).
    let mut virt = vec![false; words];

    for element in &elements {
        let MarchElement::Sweep { order, ops } = element else {
            continue; // Delay: no retention decay in the packed model
        };
        let sweep: Box<dyn Iterator<Item = usize>> = if order.effective_up() {
            Box::new(0..words)
        } else {
            Box::new((0..words).rev())
        };
        for addr in sweep {
            let (row, col) = org.split(addr);
            for op in ops {
                if op.is_read() {
                    let inv = virt[addr];
                    let mut diff = 0u64;
                    for bit in 0..bpw {
                        let mut exp = initial[addr * bpw + bit];
                        if inv {
                            exp = !exp;
                        }
                        let got = map.read_cell(sram, row, col, bit);
                        predicted.absorb_bit(exp);
                        observed.absorb_bit(got);
                        diff |= (exp ^ got) & active;
                    }
                    row_faults[row] |= diff;
                    reads += 1;
                } else {
                    let inv = op.is_inverse();
                    for bit in 0..bpw {
                        let mut v = initial[addr * bpw + bit];
                        if inv {
                            v = !v;
                        }
                        map.write_cell(sram, row, col, bit, v, active);
                    }
                    virt[addr] = inv;
                }
            }
        }
    }

    LaneTransparent {
        predicted,
        observed,
        row_faults,
        reads,
    }
}

/// Destructively marches one physical row in the selected lanes with a
/// solid-zero background (the `MarchConfig::quick()` schedule the field
/// controller uses to screen unused spare rows), returning the lanes in
/// which any read mismatched.
///
/// Per-lane equivalence with `test_physical_rows` over that row holds
/// because, under per-cell stuck-at faults, each cell's pass/fail and
/// final contents depend only on the op sequence applied to that cell —
/// which is identical whether rows are marched together or one at a
/// time. `Delay` elements are no-ops (no retention faults in the packed
/// model).
pub fn march_row_lanes(test: &MarchTest, sram: &mut LaneSram, row: usize, active: u64) -> u64 {
    let org = *sram.org();
    let mut failed = 0u64;
    for element in test.elements() {
        let MarchElement::Sweep { order, ops } = element else {
            continue;
        };
        let cols: Box<dyn Iterator<Item = usize>> = if order.effective_up() {
            Box::new(0..org.bpc())
        } else {
            Box::new((0..org.bpc()).rev())
        };
        for col in cols {
            for op in ops {
                let target = if op.is_inverse() { ALL_LANES } else { 0 };
                if op.is_read() {
                    for bit in 0..org.bpw() {
                        let got = sram.read_bit(org.cell_at(row, col, bit));
                        failed |= (got ^ target) & active;
                    }
                } else {
                    for bit in 0..org.bpw() {
                        sram.write_bit(org.cell_at(row, col, bit), target, active);
                    }
                }
            }
        }
    }
    failed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{test_physical_rows, MarchConfig};
    use crate::transparent::{run_transparent, run_transparent_diagnose, Misr};
    use crate::{march, RowMap};
    use bisram_mem::{ArrayOrg, Fault, FaultKind, SramModel, Word, LANE_WIDTH};
    use bisram_rng::rngs::StdRng;
    use bisram_rng::{Rng, SeedableRng};

    #[test]
    fn misr_bank_matches_scalar_misr_bit_for_bit() {
        // Feed 64 scalar MISRs independent random streams and the bank
        // the packed transpose of the same streams: every lane signature
        // must match after every clock batch.
        let mut rng = StdRng::seed_from_u64(0x4D49_5352);
        let mut scalars: Vec<Misr> = (0..LANE_WIDTH).map(|_| Misr::new()).collect();
        let mut bank = MisrBank::new();
        for round in 0..200 {
            let input: u64 = rng.gen();
            bank.absorb_bit(input);
            for (l, m) in scalars.iter_mut().enumerate() {
                m.absorb(&Word::from_u64(input >> l & 1, 1));
            }
            if round % 37 == 0 {
                for l in [0, 13, 63] {
                    assert_eq!(
                        bank.signature_of_lane(l),
                        scalars[l].signature(),
                        "lane {l} diverged at round {round}"
                    );
                }
            }
        }
        for (l, m) in scalars.iter().enumerate() {
            assert_eq!(bank.signature_of_lane(l), m.signature(), "lane {l}");
        }
        assert_eq!(bank.clocks(), 200);
    }

    #[test]
    fn diff_lanes_flags_exactly_the_differing_lanes() {
        let mut a = MisrBank::new();
        let mut b = MisrBank::new();
        let mut rng = StdRng::seed_from_u64(7);
        let corrupt = 0x8000_0000_0000_0401u64; // lanes 0, 10, 63
        for _ in 0..100 {
            let input: u64 = rng.gen();
            a.absorb_bit(input);
            b.absorb_bit(input ^ (rng.gen::<u64>() & corrupt));
        }
        // Every corrupted lane must differ (single-bit errors never alias
        // in a primitive-polynomial MISR); clean lanes must agree.
        assert_eq!(a.diff_lanes(&b) & !corrupt, 0, "clean lanes diverged");
        assert_ne!(a.diff_lanes(&b) & corrupt, 0, "no corruption landed");
    }

    #[test]
    fn flip_signature_bit_is_a_per_lane_signature_xor() {
        let mut bank = MisrBank::new();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            bank.absorb_bit(rng.gen());
        }
        let before: Vec<u64> = (0..64).map(|l| bank.signature_of_lane(l)).collect();
        bank.flip_signature_bit(17, (1 << 3) | (1 << 40));
        for (l, &b) in before.iter().enumerate() {
            let want = if l == 3 || l == 40 { b ^ (1 << 17) } else { b };
            assert_eq!(bank.signature_of_lane(l), want, "lane {l}");
        }
    }

    #[test]
    #[should_panic(expected = "different clock counts")]
    fn diff_of_unequal_clock_counts_is_rejected() {
        let mut a = MisrBank::new();
        a.absorb_bit(1);
        let _ = a.diff_lanes(&MisrBank::new());
    }

    fn org() -> ArrayOrg {
        ArrayOrg::new(64, 8, 4, 2).unwrap()
    }

    /// A lane-uniform data load plus per-lane stuck-at faults: the packed
    /// model and one scalar model per listed lane, in the same state.
    fn paired_setup(faults: &[(usize, Vec<(usize, bool)>)]) -> (LaneSram, Vec<SramModel>) {
        let o = org();
        let mut packed = LaneSram::new(o);
        let mut scalars: Vec<SramModel> = (0..LANE_WIDTH).map(|_| SramModel::new(o)).collect();
        for addr in 0..o.words() {
            let (r, c) = o.split(addr);
            let data = (addr as u64).wrapping_mul(37) & 0xFF;
            packed.write_word_uniform(r, c, data);
            for s in scalars.iter_mut() {
                s.write_word_at(r, c, Word::from_u64(data, o.bpw()));
            }
        }
        for &(lane, ref cells) in faults {
            for &(cell, v) in cells {
                packed.inject_stuck(cell, if v { ALL_LANES } else { 0 }, 1 << lane);
                scalars[lane].inject(Fault::new(cell, FaultKind::StuckAt(v)));
            }
        }
        (packed, scalars)
    }

    #[test]
    fn packed_transparent_matches_scalar_signatures_and_rows() {
        let o = org();
        let faults = vec![
            (0, vec![(o.cell_at(3, 1, 2), true)]),
            (9, vec![(o.cell_at(10, 0, 0), false), (o.cell_at(12, 3, 7), true)]),
            (63, vec![(o.cell_at(3, 1, 2), false)]),
        ];
        let (packed, scalars) = paired_setup(&faults);
        for test in [march::mats_plus(), march::ifa9()] {
            let mut p = packed.clone();
            let res = run_transparent_lanes(&test, &mut p, &LaneRowMap::identity(), ALL_LANES);
            for (lane, scalar) in scalars.iter().enumerate() {
                let mut screen_ram = scalar.clone();
                let screen = run_transparent(&test, &mut screen_ram, None);
                assert_eq!(
                    res.predicted.signature_of_lane(lane),
                    screen.predicted,
                    "{}: lane {lane} predicted signature",
                    test.name()
                );
                assert_eq!(
                    res.observed.signature_of_lane(lane),
                    screen.observed,
                    "{}: lane {lane} observed signature",
                    test.name()
                );
                assert_eq!(res.reads, screen.reads, "{}: read count", test.name());
                let mut diag_ram = scalar.clone();
                let diag = run_transparent_diagnose(&test, &mut diag_ram, None);
                let rows: Vec<usize> = (0..o.rows())
                    .filter(|&r| res.row_faults[r] >> lane & 1 == 1)
                    .collect();
                assert_eq!(rows, diag.faulty_rows, "{}: lane {lane} rows", test.name());
                // And the packed run preserves contents exactly like the
                // scalar transparent run does.
                for addr in 0..o.words() {
                    let (r, c) = o.split(addr);
                    assert_eq!(
                        p.word_of_lane(r, c, lane),
                        diag_ram.read_word_at(r, c).to_u64(),
                        "{}: lane {lane} contents at {addr}",
                        test.name()
                    );
                }
            }
        }
    }

    #[test]
    fn inactive_lanes_are_never_written() {
        let (mut packed, _) = paired_setup(&[]);
        let before = packed.clone();
        let active = (1 << 5) | (1 << 6);
        let _ = run_transparent_lanes(
            &march::ifa9(),
            &mut packed,
            &LaneRowMap::identity(),
            active,
        );
        for addr in 0..before.org().words() {
            let (r, c) = before.org().split(addr);
            for lane in [0, 4, 7, 63] {
                assert_eq!(
                    packed.word_of_lane(r, c, lane),
                    before.word_of_lane(r, c, lane),
                    "inactive lane {lane} mutated at addr {addr}"
                );
            }
        }
    }

    #[test]
    fn lane_row_map_gathers_and_scatters_per_lane() {
        struct Divert(usize, usize);
        impl RowMap for Divert {
            fn map_row(&self, row: usize) -> usize {
                if row == self.0 {
                    self.1
                } else {
                    row
                }
            }
        }
        let o = org();
        let spare = o.rows(); // first spare row
        // Lanes 2 and 40 divert row 1 to the spare; a fault sits in the
        // spare, so exactly those lanes must report logical row 1.
        let faults = vec![
            (2, vec![(o.cell_at(spare, 0, 0), true)]),
            (40, vec![(o.cell_at(spare, 0, 0), true)]),
            (5, vec![(o.cell_at(spare, 0, 0), true)]), // not diverted: invisible
        ];
        let (mut packed, scalars) = paired_setup(&faults);
        let mut map = LaneRowMap::identity();
        map.map_lane(1, spare, (1 << 2) | (1 << 40));
        let res = run_transparent_lanes(&march::ifa9(), &mut packed, &map, ALL_LANES);
        for (lane, diverted) in [(2usize, true), (40, true), (5, false), (0, false)] {
            let mut ram = scalars[lane].clone();
            let diag = if diverted {
                run_transparent_diagnose(&march::ifa9(), &mut ram, Some(&Divert(1, spare)))
            } else {
                run_transparent_diagnose(&march::ifa9(), &mut ram, None)
            };
            let rows: Vec<usize> = (0..o.rows())
                .filter(|&r| res.row_faults[r] >> lane & 1 == 1)
                .collect();
            assert_eq!(rows, diag.faulty_rows, "lane {lane}");
            if diverted {
                assert_eq!(rows, vec![1], "diverted lane sees the spare fault");
            } else {
                assert!(rows.is_empty(), "undiverted lane must not see row 1");
            }
        }
    }

    #[test]
    fn march_row_lanes_matches_scalar_spare_screen() {
        let o = org();
        let spare = o.rows() + 1;
        let faults = vec![
            (7, vec![(o.cell_at(spare, 2, 3), true)]),
            (31, vec![(o.cell_at(spare, 0, 0), false)]),
            (8, vec![(o.cell_at(o.rows(), 1, 1), true)]), // other spare: invisible
        ];
        let (mut packed, scalars) = paired_setup(&faults);
        let test = march::ifa9();
        let failed = march_row_lanes(&test, &mut packed, spare, ALL_LANES);
        for (lane, scalar) in scalars.iter().enumerate() {
            let mut ram = scalar.clone();
            let scalar_failed =
                test_physical_rows(&test, &mut ram, &MarchConfig::quick(), &[spare]);
            assert_eq!(
                failed >> lane & 1 == 1,
                !scalar_failed.is_empty(),
                "lane {lane} verdict"
            );
            // Final contents of the marched row agree cell for cell.
            for col in 0..o.bpc() {
                assert_eq!(
                    packed.word_of_lane(spare, col, lane),
                    ram.read_word_at(spare, col).to_u64(),
                    "lane {lane} col {col} contents"
                );
            }
        }
        assert_eq!(failed, (1 << 7) | (1 << 31));
    }

    #[test]
    fn march_row_lanes_respects_the_active_mask() {
        let o = org();
        let spare = o.rows();
        let (mut packed, _) = paired_setup(&[(4, vec![(o.cell_at(spare, 0, 0), true)])]);
        let before = packed.clone();
        let failed = march_row_lanes(&march::mats_plus(), &mut packed, spare, 1 << 9);
        assert_eq!(failed, 0, "lane 4's fault is outside the active set");
        // Lane 4's cells in the marched row are untouched.
        for col in 0..o.bpc() {
            assert_eq!(
                packed.word_of_lane(spare, col, 4),
                before.word_of_lane(spare, col, 4)
            );
        }
    }
}
