//! Transparent BIST — the Kebichi–Nicolaidis technique of paper §III.
//!
//! "A RAM generator was described by Kebichi and Nicolaidis for RAMs
//! equipped with BIST and *transparent* BIST, i.e., BIST techniques that
//! result in the normal-mode contents of the RAM to remain unmodified at
//! the end of the self-test." BISRAMGEN's destructive IFA-9 is fine at
//! manufacturing time; for periodic *field* self-test of an embedded
//! cache, a transparent variant is the natural extension, so this module
//! implements the classical transformation:
//!
//! * data becomes content-relative — a `w0`/`r0` refers to each word's
//!   *initial* content `c`, a `w1`/`r1` to its complement `~c`;
//! * a **prediction phase** simulates the read sequence against the
//!   initial contents and compresses the expected read stream into a
//!   MISR signature;
//! * the **test phase** executes the march for real, compressing actual
//!   read data into a second signature; any mismatch signals a fault;
//! * if the march leaves the complement in memory, a restoring write
//!   element is appended so the contents end unmodified.
//!
//! The classical caveat applies: a fault that already corrupted the
//! initial contents consistently (e.g. a stuck-at cell already holding
//! its stuck value with matching writes) is invisible to a transparent
//! test, because "initial content" is read through the fault.

use crate::march::{MarchElement, MarchOp, MarchTest};
use crate::RowMap;
use bisram_mem::{SramModel, Word};

/// A signature register compressing the read stream.
///
/// A 64-stage Galois LFSR with the primitive feedback polynomial
/// `x⁶⁴ + x⁴ + x³ + x + 1`, clocked once per data bit (the
/// serial-equivalent of a hardware MISR). A corrupted stream aliases
/// only when its error polynomial is divisible by the feedback
/// polynomial; with a primitive polynomial that requires error-bit
/// spacings on the order of `2⁶⁴` clocks, so every one- or two-bit
/// corruption a march session can produce is guaranteed to change the
/// signature, and larger error patterns alias with probability `≈2⁻⁶⁴`.
///
/// (An earlier rotate-and-xor compactor turned out to cancel pairs of
/// identical bit flips seven rotations apart — a structural aliasing the
/// seeded sweep in this module's tests now guards against.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Misr {
    state: u64,
}

impl Misr {
    /// Feedback taps of `x⁶⁴ + x⁴ + x³ + x + 1` (the `x⁶⁴` term is the
    /// implicit shift-out).
    const POLY: u64 = 0x1B;

    /// A cleared signature register.
    pub fn new() -> Self {
        Misr { state: 0 }
    }

    /// Absorbs one read word, LSB first.
    pub fn absorb(&mut self, word: &Word) {
        for bit in word.iter() {
            let carry = self.state >> 63;
            self.state = (self.state << 1) ^ u64::from(bit);
            if carry == 1 {
                self.state ^= Self::POLY;
            }
        }
    }

    /// The current signature.
    pub fn signature(&self) -> u64 {
        self.state
    }
}

impl Default for Misr {
    fn default() -> Self {
        Misr::new()
    }
}

/// Outcome of a transparent self-test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransparentOutcome {
    /// Signature predicted from the initial contents.
    pub predicted: u64,
    /// Signature observed during the test phase.
    pub observed: u64,
    /// Reads compressed into each signature.
    pub reads: u64,
}

impl TransparentOutcome {
    /// True when the signatures disagree — a fault was exposed.
    pub fn detected(&self) -> bool {
        self.predicted != self.observed
    }
}

/// One word-level mismatch found by [`run_transparent_diagnose`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransparentMismatch {
    /// Logical word address of the failing read.
    pub addr: usize,
    /// Logical row of that address — the unit of repair.
    pub row: usize,
    /// What the prediction phase said the read should return.
    pub expected: Word,
    /// What the memory actually returned.
    pub got: Word,
}

/// Outcome of a diagnosing transparent run: word-exact comparison
/// instead of signature compaction, so there is no aliasing and the
/// failing rows are known — the bookkeeping an in-field repair session
/// needs after a signature-only screen has raised the alarm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransparentDiagnosis {
    /// Distinct logical rows with at least one mismatching read,
    /// ascending.
    pub faulty_rows: Vec<usize>,
    /// Every mismatching read, in occurrence order.
    pub mismatches: Vec<TransparentMismatch>,
    /// Reads performed in the test phase.
    pub reads: u64,
}

impl TransparentDiagnosis {
    /// True when at least one read disagreed with its prediction.
    pub fn detected(&self) -> bool {
        !self.mismatches.is_empty()
    }
}

/// The effective element list of a transparent run: the test itself
/// plus a restoring write when its net effect leaves the complement
/// stored. Shared with the lane-packed engine ([`crate::lane`]) so both
/// execute the identical element sequence.
pub(crate) fn transparent_elements(test: &MarchTest) -> Vec<MarchElement> {
    let mut elements: Vec<MarchElement> = test.elements().to_vec();
    if last_write_is_inverse(test) {
        elements.push(MarchElement::either(&[MarchOp::W0]));
    }
    elements
}

/// Phase 0: fetch the initial contents (real reads; a transparent test's
/// notion of "0" is whatever is stored right now).
fn read_initial(ram: &mut SramModel, map: Option<&dyn RowMap>) -> Vec<Word> {
    let org = *ram.org();
    let mut initial: Vec<Word> = Vec::with_capacity(org.words());
    for addr in 0..org.words() {
        let (row, col) = org.split(addr);
        let prow = map.map_or(row, |m| m.map_row(row));
        initial.push(ram.read_word_at(prow, col));
    }
    initial
}

/// Phase 1: prediction — simulate the march against a virtual copy of
/// the initial contents and emit the expected word of every read, in
/// read order (the exact order phase 2 performs them).
fn predicted_reads(elements: &[MarchElement], initial: &[Word]) -> Vec<(usize, Word)> {
    let words = initial.len();
    let mut expected: Vec<(usize, Word)> = Vec::new();
    let mut virt: Vec<bool> = vec![false; words]; // false = holds c, true = holds ~c
    for element in elements {
        let MarchElement::Sweep { order, ops } = element else {
            continue; // delays do not touch data
        };
        let sweep: Box<dyn Iterator<Item = usize>> = if order.effective_up() {
            Box::new(0..words)
        } else {
            Box::new((0..words).rev())
        };
        for addr in sweep {
            for op in ops {
                match op {
                    MarchOp::W0 => virt[addr] = false,
                    MarchOp::W1 => virt[addr] = true,
                    MarchOp::R0 | MarchOp::R1 => {
                        let w = if virt[addr] {
                            !initial[addr].clone()
                        } else {
                            initial[addr].clone()
                        };
                        expected.push((addr, w));
                    }
                }
            }
        }
    }
    expected
}

/// Phase 2: the real test with content-relative data. Every read is
/// handed to `on_read(addr, got)` in the same order the prediction phase
/// emitted its expectations.
fn execute_test_phase(
    elements: &[MarchElement],
    initial: &[Word],
    ram: &mut SramModel,
    map: Option<&dyn RowMap>,
    mut on_read: impl FnMut(usize, Word),
) {
    let org = *ram.org();
    let words = org.words();
    for element in elements {
        match element {
            MarchElement::Delay => ram.retention_pause(),
            MarchElement::Sweep { order, ops } => {
                let sweep: Box<dyn Iterator<Item = usize>> = if order.effective_up() {
                    Box::new(0..words)
                } else {
                    Box::new((0..words).rev())
                };
                for addr in sweep {
                    let (row, col) = org.split(addr);
                    let prow = map.map_or(row, |m| m.map_row(row));
                    for op in ops {
                        match op {
                            MarchOp::W0 => ram.write_word_at(prow, col, initial[addr].clone()),
                            MarchOp::W1 => {
                                ram.write_word_at(prow, col, !initial[addr].clone())
                            }
                            MarchOp::R0 | MarchOp::R1 => {
                                let got = ram.read_word_at(prow, col);
                                on_read(addr, got);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Runs the transparent version of `test` over the memory, through the
/// optional row mapping.
///
/// The memory's normal-mode contents are unmodified afterwards
/// (fault-free hardware; fault sites may of course end corrupted —
/// that is what the signature flags).
pub fn run_transparent(
    test: &MarchTest,
    ram: &mut SramModel,
    map: Option<&dyn RowMap>,
) -> TransparentOutcome {
    let initial = read_initial(ram, map);
    let elements = transparent_elements(test);

    let expected = predicted_reads(&elements, &initial);
    let mut predictor = Misr::new();
    for (_, w) in &expected {
        predictor.absorb(w);
    }

    let mut observer = Misr::new();
    execute_test_phase(&elements, &initial, ram, map, |_, got| {
        observer.absorb(&got);
    });

    TransparentOutcome {
        predicted: predictor.signature(),
        observed: observer.signature(),
        reads: expected.len() as u64,
    }
}

/// Runs the transparent test in *diagnosis* mode: instead of compacting
/// the read streams into signatures, every real read is compared against
/// its predicted word directly, producing the failing addresses and rows.
///
/// This is what a field repair controller runs after a signature
/// mismatch: the cheap MISR screen says *something* is wrong, the
/// diagnosing re-run says *where*, and the row list feeds incremental
/// repair. Contents are preserved exactly as in [`run_transparent`].
pub fn run_transparent_diagnose(
    test: &MarchTest,
    ram: &mut SramModel,
    map: Option<&dyn RowMap>,
) -> TransparentDiagnosis {
    let org = *ram.org();
    let initial = read_initial(ram, map);
    let elements = transparent_elements(test);
    let expected = predicted_reads(&elements, &initial);

    let mut mismatches: Vec<TransparentMismatch> = Vec::new();
    let mut idx = 0usize;
    execute_test_phase(&elements, &initial, ram, map, |addr, got| {
        // Reads arrive in the exact order the prediction emitted them;
        // both phases walk the same element list over the same geometry.
        if let Some((exp_addr, exp)) = expected.get(idx) {
            debug_assert_eq!(*exp_addr, addr, "phase read-order divergence");
            if *exp != got {
                mismatches.push(TransparentMismatch {
                    addr,
                    row: org.split(addr).0,
                    expected: exp.clone(),
                    got,
                });
            }
        }
        idx += 1;
    });

    let mut faulty_rows: Vec<usize> = mismatches.iter().map(|m| m.row).collect();
    faulty_rows.sort_unstable();
    faulty_rows.dedup();
    TransparentDiagnosis {
        faulty_rows,
        mismatches,
        reads: idx as u64,
    }
}

/// True when the last write of the march stores the complement — i.e.
/// the transparent run must append a restoring element.
fn last_write_is_inverse(test: &MarchTest) -> bool {
    for element in test.elements().iter().rev() {
        if let MarchElement::Sweep { ops, .. } = element {
            for op in ops.iter().rev() {
                match op {
                    MarchOp::W0 => return false,
                    MarchOp::W1 => return true,
                    _ => {}
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::march;
    use bisram_mem::{ArrayOrg, Fault, FaultKind};
    use bisram_rng::rngs::StdRng;
    use bisram_rng::{Rng, SeedableRng};

    fn loaded_ram() -> (SramModel, Vec<Word>) {
        let org = ArrayOrg::new(128, 8, 4, 0).unwrap();
        let mut ram = SramModel::new(org);
        let mut rng = StdRng::seed_from_u64(5);
        let mut contents = Vec::new();
        for addr in 0..org.words() {
            let w = Word::from_u64(rng.gen::<u64>() & 0xFF, 8);
            ram.write_word(addr, w.clone());
            contents.push(w);
        }
        (ram, contents)
    }

    #[test]
    fn fault_free_run_preserves_contents_and_signature() {
        for test in [march::ifa9(), march::march_c_minus(), march::mats_plus()] {
            let (mut ram, contents) = loaded_ram();
            let outcome = run_transparent(&test, &mut ram, None);
            assert!(!outcome.detected(), "{} false alarm", test.name());
            assert!(outcome.reads > 0);
            for (addr, expect) in contents.iter().enumerate() {
                assert_eq!(
                    &ram.read_word(addr),
                    expect,
                    "{}: contents clobbered at {addr}",
                    test.name()
                );
            }
        }
    }

    #[test]
    fn destructive_test_clobbers_what_transparent_preserves() {
        use crate::engine::{run_march, MarchConfig};
        let (mut ram, contents) = loaded_ram();
        let _ = run_march(&march::ifa9(), &mut ram, &MarchConfig::quick(), None);
        let clobbered = (0..contents.len())
            .filter(|&a| ram.read_word(a) != contents[a])
            .count();
        assert!(
            clobbered > contents.len() / 2,
            "the destructive run should wipe most contents"
        );
    }

    #[test]
    fn transition_fault_detected_transparently() {
        let (mut ram, _) = loaded_ram();
        let cell = ram.org().cell_at(9, 2, 3);
        ram.inject(Fault::new(cell, FaultKind::TransitionUp));
        let outcome = run_transparent(&march::ifa9(), &mut ram, None);
        assert!(outcome.detected());
    }

    #[test]
    fn coupling_fault_detected_and_distant_contents_survive() {
        let (mut ram, contents) = loaded_ram();
        let aggressor = ram.org().cell_at(3, 0, 0);
        let victim = ram.org().cell_at(20, 1, 5);
        ram.inject(Fault::new(
            victim,
            FaultKind::CouplingInv {
                aggressor,
                rising: true,
            },
        ));
        let outcome = run_transparent(&march::ifa9(), &mut ram, None);
        assert!(outcome.detected());
        // Words untouched by the fault pair keep their data.
        let safe_addr = ram.org().join(25, 2);
        assert_eq!(ram.read_word(safe_addr), contents[safe_addr]);
    }

    #[test]
    fn known_stuck_at_limitation_is_documented_behaviour() {
        // A stuck-at-1 cell whose initial content bit is read as 1: the
        // transparent test sees a consistent world on the r0 ops, but
        // the complement writes expose it, so IFA-9 still detects. The
        // truly invisible case is a memory whose faulty cell is never
        // driven to the opposite value — a single w0-only element.
        let org = ArrayOrg::new(64, 8, 4, 0).unwrap();
        let mut ram = SramModel::new(org);
        ram.inject(Fault::new(org.cell_at(2, 0, 0), FaultKind::StuckAt(true)));
        let blind = MarchTest::new(
            "blind",
            vec![MarchElement::up(&[MarchOp::R0])],
        );
        let outcome = run_transparent(&blind, &mut ram, None);
        assert!(
            !outcome.detected(),
            "a read-only transparent pass cannot see a settled stuck-at"
        );
        // The full IFA-9 does.
        let outcome = run_transparent(&march::ifa9(), &mut ram, None);
        assert!(outcome.detected());
    }

    #[test]
    fn restore_element_logic() {
        assert!(last_write_is_inverse(&MarchTest::new(
            "t",
            vec![MarchElement::up(&[MarchOp::W1]), MarchElement::up(&[MarchOp::R1])],
        )));
        assert!(!last_write_is_inverse(&march::march_c_minus()));
        assert!(last_write_is_inverse(&march::ifa9()));
        assert!(!last_write_is_inverse(&MarchTest::new(
            "reads",
            vec![MarchElement::up(&[MarchOp::R0])],
        )));
    }

    #[test]
    fn misr_distinguishes_streams() {
        let mut a = Misr::new();
        let mut b = Misr::new();
        for i in 0..50u64 {
            a.absorb(&Word::from_u64(i, 8));
            // One bit differs in one word.
            b.absorb(&Word::from_u64(if i == 20 { i ^ 4 } else { i }, 8));
        }
        assert_ne!(a.signature(), b.signature());
        // Identical streams agree.
        let mut c = Misr::new();
        for i in 0..50u64 {
            c.absorb(&Word::from_u64(i, 8));
        }
        assert_eq!(a.signature(), c.signature());
    }

    #[test]
    fn order_sensitivity_of_the_misr() {
        // Swapped words must change the signature (rotation makes the
        // compactor order-sensitive).
        let mut a = Misr::new();
        a.absorb(&Word::from_u64(1, 8));
        a.absorb(&Word::from_u64(2, 8));
        let mut b = Misr::new();
        b.absorb(&Word::from_u64(2, 8));
        b.absorb(&Word::from_u64(1, 8));
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn misr_aliasing_probability_sweep() {
        // Empirical aliasing estimate: corrupt a random read stream in
        // 1..=4 random positions and count signature collisions with the
        // clean stream. For a sound 64-bit compactor the aliasing
        // probability is ~2^-64, so over a few thousand seeded trials the
        // observed collision count must be exactly zero — one collision
        // here would mean a structural weakness (e.g. a fold that
        // cancels), not bad luck.
        let mut rng = StdRng::seed_from_u64(0x3153_0001);
        let mut collisions = 0usize;
        const TRIALS: usize = 4096;
        for _ in 0..TRIALS {
            let len = rng.gen_range(8usize..64);
            let stream: Vec<u64> = (0..len).map(|_| rng.gen::<u64>() & 0xFF).collect();
            let mut corrupted = stream.clone();
            for _ in 0..rng.gen_range(1usize..5) {
                let pos = rng.gen_range(0..len);
                let bit = rng.gen_range(0..8u32);
                corrupted[pos] ^= 1 << bit;
            }
            if corrupted == stream {
                continue; // double flips can cancel; only differing streams count
            }
            let mut clean = Misr::new();
            let mut dirty = Misr::new();
            for (&c, &d) in stream.iter().zip(&corrupted) {
                clean.absorb(&Word::from_u64(c, 8));
                dirty.absorb(&Word::from_u64(d, 8));
            }
            if clean.signature() == dirty.signature() {
                collisions += 1;
            }
        }
        assert_eq!(
            collisions, 0,
            "observed {collisions}/{TRIALS} aliasing collisions"
        );
    }

    #[test]
    fn signature_is_stable_across_fault_free_reruns() {
        // Repeated transparent sessions over unchanged contents must
        // produce the same (predicted, observed) signature pair every
        // time — the property that lets a field controller treat any
        // signature change as a detection event.
        for test in [march::mats_plus(), march::ifa9()] {
            let (mut ram, _) = loaded_ram();
            let first = run_transparent(&test, &mut ram, None);
            for run in 1..4 {
                let again = run_transparent(&test, &mut ram, None);
                assert_eq!(
                    (first.predicted, first.observed),
                    (again.predicted, again.observed),
                    "{} run {run}: signature drifted on a fault-free memory",
                    test.name()
                );
                assert!(!again.detected());
            }
        }
    }

    #[test]
    fn signatures_depend_on_contents() {
        // Different user data ⇒ different signatures (the transparent
        // test really is content-relative, not a fixed pattern).
        let (mut ram_a, _) = loaded_ram();
        let sig_a = run_transparent(&march::mats_plus(), &mut ram_a, None);
        let org = *ram_a.org();
        let mut ram_b = SramModel::new(org);
        for addr in 0..org.words() {
            ram_b.write_word(addr, Word::from_u64(addr as u64 & 0xFF, 8));
        }
        let sig_b = run_transparent(&march::mats_plus(), &mut ram_b, None);
        assert_ne!(sig_a.predicted, sig_b.predicted);
    }

    #[test]
    fn transparent_preserves_user_data_seeded_sweep() {
        // The regression demanded of `run_transparent`: across seeded
        // random contents and every library march, a fault-free memory
        // ends the session byte-identical to how it started.
        let mut rng = StdRng::seed_from_u64(0x3153_0002);
        for case in 0..24 {
            let org = ArrayOrg::new(64, 8, 4, 0).unwrap();
            let mut ram = SramModel::new(org);
            let contents: Vec<Word> = (0..org.words())
                .map(|addr| {
                    let w = Word::from_u64(rng.gen::<u64>() & 0xFF, 8);
                    ram.write_word(addr, w.clone());
                    w
                })
                .collect();
            for test in march::library() {
                let outcome = run_transparent(&test, &mut ram, None);
                assert!(!outcome.detected(), "case {case} {}: false alarm", test.name());
                for (addr, expect) in contents.iter().enumerate() {
                    assert_eq!(
                        &ram.read_word(addr),
                        expect,
                        "case {case} {}: clobbered addr {addr}",
                        test.name()
                    );
                }
            }
        }
    }

    #[test]
    fn diagnose_localizes_faulty_rows_and_preserves_data() {
        let (mut ram, contents) = loaded_ram();
        let c1 = ram.org().cell_at(9, 2, 3);
        let c2 = ram.org().cell_at(21, 0, 0);
        ram.inject(Fault::new(c1, FaultKind::TransitionUp));
        ram.inject(Fault::new(c2, FaultKind::TransitionDown));
        let diag = run_transparent_diagnose(&march::ifa9(), &mut ram, None);
        assert!(diag.detected());
        assert_eq!(diag.faulty_rows, vec![9, 21]);
        assert!(diag.reads > 0);
        // Mismatch records carry coherent address/row pairs and real
        // expected/got divergence.
        for m in &diag.mismatches {
            assert_eq!(m.row, ram.org().split(m.addr).0);
            assert_ne!(m.expected, m.got);
        }
        // Rows away from the fault sites keep their data.
        let safe = ram.org().join(30, 1);
        assert_eq!(ram.read_word(safe), contents[safe]);
    }

    #[test]
    fn diagnose_agrees_with_signature_screen() {
        // On a fault-free memory both modes are quiet; with a detectable
        // fault both raise — diagnosis is the exact-compare refinement of
        // the MISR screen.
        let (mut ram, _) = loaded_ram();
        let quiet = run_transparent_diagnose(&march::ifa9(), &mut ram, None);
        assert!(!quiet.detected());
        assert!(quiet.faulty_rows.is_empty());

        let cell = ram.org().cell_at(14, 1, 6);
        ram.inject(Fault::new(cell, FaultKind::TransitionUp));
        let screen_ram = &mut ram.clone();
        let screen = run_transparent(&march::ifa9(), screen_ram, None);
        let diag = run_transparent_diagnose(&march::ifa9(), &mut ram, None);
        assert_eq!(screen.detected(), diag.detected());
        assert_eq!(diag.faulty_rows, vec![14]);
    }

    #[test]
    fn diagnose_works_through_a_row_map() {
        struct Offset;
        impl RowMap for Offset {
            fn map_row(&self, row: usize) -> usize {
                if row == 0 {
                    32
                } else {
                    row
                }
            }
        }
        let org = ArrayOrg::new(128, 8, 4, 1).unwrap();
        let mut ram = SramModel::new(org);
        // Fault in physical row 32 (where logical 0 diverts).
        ram.inject(Fault::new(
            org.cell_at(32, 0, 0),
            FaultKind::TransitionUp,
        ));
        let diag = run_transparent_diagnose(&march::ifa9(), &mut ram, Some(&Offset));
        assert_eq!(
            diag.faulty_rows,
            vec![0],
            "diagnosis reports logical rows, the repair domain"
        );
    }
}
