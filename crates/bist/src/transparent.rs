//! Transparent BIST — the Kebichi–Nicolaidis technique of paper §III.
//!
//! "A RAM generator was described by Kebichi and Nicolaidis for RAMs
//! equipped with BIST and *transparent* BIST, i.e., BIST techniques that
//! result in the normal-mode contents of the RAM to remain unmodified at
//! the end of the self-test." BISRAMGEN's destructive IFA-9 is fine at
//! manufacturing time; for periodic *field* self-test of an embedded
//! cache, a transparent variant is the natural extension, so this module
//! implements the classical transformation:
//!
//! * data becomes content-relative — a `w0`/`r0` refers to each word's
//!   *initial* content `c`, a `w1`/`r1` to its complement `~c`;
//! * a **prediction phase** simulates the read sequence against the
//!   initial contents and compresses the expected read stream into a
//!   MISR signature;
//! * the **test phase** executes the march for real, compressing actual
//!   read data into a second signature; any mismatch signals a fault;
//! * if the march leaves the complement in memory, a restoring write
//!   element is appended so the contents end unmodified.
//!
//! The classical caveat applies: a fault that already corrupted the
//! initial contents consistently (e.g. a stuck-at cell already holding
//! its stuck value with matching writes) is invisible to a transparent
//! test, because "initial content" is read through the fault.

use crate::march::{MarchElement, MarchOp, MarchTest};
use crate::RowMap;
use bisram_mem::{SramModel, Word};

/// A multiple-input signature register compressing the read stream.
///
/// A 64-bit rotate-and-xor compactor — behaviourally equivalent to the
/// LFSR-based MISRs of the BIST literature for detection purposes (any
/// single differing word changes the signature).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Misr {
    state: u64,
}

impl Misr {
    /// A cleared signature register.
    pub fn new() -> Self {
        Misr { state: 0 }
    }

    /// Absorbs one read word.
    pub fn absorb(&mut self, word: &Word) {
        let mut fold: u64 = 0x9E37_79B9_7F4A_7C15;
        for (i, bit) in word.iter().enumerate() {
            if bit {
                fold ^= 0x0123_4567_89AB_CDEFu64.rotate_left(i as u32);
            }
        }
        self.state = self.state.rotate_left(7) ^ fold;
    }

    /// The current signature.
    pub fn signature(&self) -> u64 {
        self.state
    }
}

impl Default for Misr {
    fn default() -> Self {
        Misr::new()
    }
}

/// Outcome of a transparent self-test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransparentOutcome {
    /// Signature predicted from the initial contents.
    pub predicted: u64,
    /// Signature observed during the test phase.
    pub observed: u64,
    /// Reads compressed into each signature.
    pub reads: u64,
}

impl TransparentOutcome {
    /// True when the signatures disagree — a fault was exposed.
    pub fn detected(&self) -> bool {
        self.predicted != self.observed
    }
}

/// Runs the transparent version of `test` over the memory, through the
/// optional row mapping.
///
/// The memory's normal-mode contents are unmodified afterwards
/// (fault-free hardware; fault sites may of course end corrupted —
/// that is what the signature flags).
pub fn run_transparent(
    test: &MarchTest,
    ram: &mut SramModel,
    map: Option<&dyn RowMap>,
) -> TransparentOutcome {
    let org = *ram.org();
    let words = org.words();
    let phys = |row: usize| map.map_or(row, |m| m.map_row(row));

    // Phase 0: fetch the initial contents (real reads; a transparent
    // test's notion of "0" is whatever is stored right now).
    let mut initial: Vec<Word> = Vec::with_capacity(words);
    for addr in 0..words {
        let (row, col) = org.split(addr);
        initial.push(ram.read_word_at(phys(row), col));
    }

    // Effective element list: the test plus a restoring write if its
    // net effect leaves the complement stored.
    let mut elements: Vec<MarchElement> = test.elements().to_vec();
    if last_write_is_inverse(test) {
        elements.push(MarchElement::either(&[MarchOp::W0]));
    }

    // Phase 1: prediction — simulate against a virtual copy.
    let mut predictor = Misr::new();
    let mut reads: u64 = 0;
    {
        let mut virt: Vec<bool> = vec![false; words]; // false = holds c, true = holds ~c
        for element in &elements {
            let MarchElement::Sweep { order, ops } = element else {
                continue; // delays do not touch data
            };
            let sweep: Box<dyn Iterator<Item = usize>> = if order.effective_up() {
                Box::new(0..words)
            } else {
                Box::new((0..words).rev())
            };
            for addr in sweep {
                for op in ops {
                    match op {
                        MarchOp::W0 => virt[addr] = false,
                        MarchOp::W1 => virt[addr] = true,
                        MarchOp::R0 | MarchOp::R1 => {
                            reads += 1;
                            let expected = if virt[addr] {
                                !initial[addr].clone()
                            } else {
                                initial[addr].clone()
                            };
                            predictor.absorb(&expected);
                        }
                    }
                }
            }
        }
    }

    // Phase 2: the real test, content-relative data.
    let mut observer = Misr::new();
    for element in &elements {
        match element {
            MarchElement::Delay => ram.retention_pause(),
            MarchElement::Sweep { order, ops } => {
                let sweep: Box<dyn Iterator<Item = usize>> = if order.effective_up() {
                    Box::new(0..words)
                } else {
                    Box::new((0..words).rev())
                };
                for addr in sweep {
                    let (row, col) = org.split(addr);
                    let prow = phys(row);
                    for op in ops {
                        match op {
                            MarchOp::W0 => ram.write_word_at(prow, col, initial[addr].clone()),
                            MarchOp::W1 => {
                                ram.write_word_at(prow, col, !initial[addr].clone())
                            }
                            MarchOp::R0 | MarchOp::R1 => {
                                let got = ram.read_word_at(prow, col);
                                observer.absorb(&got);
                            }
                        }
                    }
                }
            }
        }
    }

    TransparentOutcome {
        predicted: predictor.signature(),
        observed: observer.signature(),
        reads,
    }
}

/// True when the last write of the march stores the complement — i.e.
/// the transparent run must append a restoring element.
fn last_write_is_inverse(test: &MarchTest) -> bool {
    for element in test.elements().iter().rev() {
        if let MarchElement::Sweep { ops, .. } = element {
            for op in ops.iter().rev() {
                match op {
                    MarchOp::W0 => return false,
                    MarchOp::W1 => return true,
                    _ => {}
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::march;
    use bisram_mem::{ArrayOrg, Fault, FaultKind};
    use bisram_rng::rngs::StdRng;
    use bisram_rng::{Rng, SeedableRng};

    fn loaded_ram() -> (SramModel, Vec<Word>) {
        let org = ArrayOrg::new(128, 8, 4, 0).unwrap();
        let mut ram = SramModel::new(org);
        let mut rng = StdRng::seed_from_u64(5);
        let mut contents = Vec::new();
        for addr in 0..org.words() {
            let w = Word::from_u64(rng.gen::<u64>() & 0xFF, 8);
            ram.write_word(addr, w.clone());
            contents.push(w);
        }
        (ram, contents)
    }

    #[test]
    fn fault_free_run_preserves_contents_and_signature() {
        for test in [march::ifa9(), march::march_c_minus(), march::mats_plus()] {
            let (mut ram, contents) = loaded_ram();
            let outcome = run_transparent(&test, &mut ram, None);
            assert!(!outcome.detected(), "{} false alarm", test.name());
            assert!(outcome.reads > 0);
            for (addr, expect) in contents.iter().enumerate() {
                assert_eq!(
                    &ram.read_word(addr),
                    expect,
                    "{}: contents clobbered at {addr}",
                    test.name()
                );
            }
        }
    }

    #[test]
    fn destructive_test_clobbers_what_transparent_preserves() {
        use crate::engine::{run_march, MarchConfig};
        let (mut ram, contents) = loaded_ram();
        let _ = run_march(&march::ifa9(), &mut ram, &MarchConfig::quick(), None);
        let clobbered = (0..contents.len())
            .filter(|&a| ram.read_word(a) != contents[a])
            .count();
        assert!(
            clobbered > contents.len() / 2,
            "the destructive run should wipe most contents"
        );
    }

    #[test]
    fn transition_fault_detected_transparently() {
        let (mut ram, _) = loaded_ram();
        let cell = ram.org().cell_at(9, 2, 3);
        ram.inject(Fault::new(cell, FaultKind::TransitionUp));
        let outcome = run_transparent(&march::ifa9(), &mut ram, None);
        assert!(outcome.detected());
    }

    #[test]
    fn coupling_fault_detected_and_distant_contents_survive() {
        let (mut ram, contents) = loaded_ram();
        let aggressor = ram.org().cell_at(3, 0, 0);
        let victim = ram.org().cell_at(20, 1, 5);
        ram.inject(Fault::new(
            victim,
            FaultKind::CouplingInv {
                aggressor,
                rising: true,
            },
        ));
        let outcome = run_transparent(&march::ifa9(), &mut ram, None);
        assert!(outcome.detected());
        // Words untouched by the fault pair keep their data.
        let safe_addr = ram.org().join(25, 2);
        assert_eq!(ram.read_word(safe_addr), contents[safe_addr]);
    }

    #[test]
    fn known_stuck_at_limitation_is_documented_behaviour() {
        // A stuck-at-1 cell whose initial content bit is read as 1: the
        // transparent test sees a consistent world on the r0 ops, but
        // the complement writes expose it, so IFA-9 still detects. The
        // truly invisible case is a memory whose faulty cell is never
        // driven to the opposite value — a single w0-only element.
        let org = ArrayOrg::new(64, 8, 4, 0).unwrap();
        let mut ram = SramModel::new(org);
        ram.inject(Fault::new(org.cell_at(2, 0, 0), FaultKind::StuckAt(true)));
        let blind = MarchTest::new(
            "blind",
            vec![MarchElement::up(&[MarchOp::R0])],
        );
        let outcome = run_transparent(&blind, &mut ram, None);
        assert!(
            !outcome.detected(),
            "a read-only transparent pass cannot see a settled stuck-at"
        );
        // The full IFA-9 does.
        let outcome = run_transparent(&march::ifa9(), &mut ram, None);
        assert!(outcome.detected());
    }

    #[test]
    fn restore_element_logic() {
        assert!(last_write_is_inverse(&MarchTest::new(
            "t",
            vec![MarchElement::up(&[MarchOp::W1]), MarchElement::up(&[MarchOp::R1])],
        )));
        assert!(!last_write_is_inverse(&march::march_c_minus()));
        assert!(last_write_is_inverse(&march::ifa9()));
        assert!(!last_write_is_inverse(&MarchTest::new(
            "reads",
            vec![MarchElement::up(&[MarchOp::R0])],
        )));
    }

    #[test]
    fn misr_distinguishes_streams() {
        let mut a = Misr::new();
        let mut b = Misr::new();
        for i in 0..50u64 {
            a.absorb(&Word::from_u64(i, 8));
            // One bit differs in one word.
            b.absorb(&Word::from_u64(if i == 20 { i ^ 4 } else { i }, 8));
        }
        assert_ne!(a.signature(), b.signature());
        // Identical streams agree.
        let mut c = Misr::new();
        for i in 0..50u64 {
            c.absorb(&Word::from_u64(i, 8));
        }
        assert_eq!(a.signature(), c.signature());
    }

    #[test]
    fn order_sensitivity_of_the_misr() {
        // Swapped words must change the signature (rotation makes the
        // compactor order-sensitive).
        let mut a = Misr::new();
        a.absorb(&Word::from_u64(1, 8));
        a.absorb(&Word::from_u64(2, 8));
        let mut b = Misr::new();
        b.absorb(&Word::from_u64(2, 8));
        b.absorb(&Word::from_u64(1, 8));
        assert_ne!(a.signature(), b.signature());
    }
}
