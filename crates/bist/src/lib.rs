//! Built-in self-test for the BISRAMGEN reproduction.
//!
//! Paper §V: BISRAMGEN uses a low-area-overhead, *microprogrammed* BIST
//! design applying the IFA-9 test to the RAM array. The microprogrammed
//! control unit — the Test and Repair Controller PLA (`TRPLA`) — is a
//! pseudo-NMOS NOR–NOR PLA whose control code is read at run time from
//! two input files (one per plane). The test circuitry further contains a
//! test address generator (`ADDGEN`, a binary up/down counter) and a test
//! data background generator (`DATAGEN`, a Johnson counter that also
//! compares read data against expectations with XOR gates and a wide OR).
//!
//! This crate models all of it:
//!
//! * [`march`] — march-test notation and the test library (IFA-9, IFA-13,
//!   MATS+, March C-, March B),
//! * [`addgen`] — the up/down address counter, bit-level,
//! * [`datagen`] — the Johnson counter, the background schedule and the
//!   comparator,
//! * [`trpla`] — the microprogram assembler, the PLA personality matrices
//!   (with the two-file export/import of the paper) and a PLA-driven FSM,
//! * [`engine`] — march execution against [`bisram_mem::SramModel`],
//!   through an optional row-address translation hook (the BISR TLB
//!   plugs in here),
//! * [`coverage`] — fault-injection campaigns measuring fault coverage
//!   per fault class,
//! * [`lane`] — lane-packed march and MISR evaluation: one walk advances
//!   64 device instances for the fleet lifetime simulator.
//!
//! # Examples
//!
//! ```
//! use bisram_bist::march;
//! use bisram_bist::engine::{run_march, MarchConfig};
//! use bisram_mem::{ArrayOrg, SramModel, Fault, FaultKind};
//!
//! let org = ArrayOrg::new(256, 8, 4, 0)?;
//! let mut ram = SramModel::new(org);
//! ram.inject(Fault::new(17, FaultKind::StuckAt(true)));
//!
//! let outcome = run_march(&march::ifa9(), &mut ram, &MarchConfig::default(), None);
//! assert!(outcome.detected());
//! # Ok::<(), bisram_mem::OrgError>(())
//! ```

// The field lifetime engine runs BIST sessions in a loop that must not
// abort; library code keeps its fallible paths panic-free (documented
// `# Panics` invariants excepted) and CI enforces it with `-D warnings`.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod addgen;
pub mod coverage;
pub mod datagen;
pub mod engine;
pub mod lane;
pub mod march;
pub mod parse;
pub mod transparent;
pub mod trpla;

/// Row-address translation hook.
///
/// During the second BIST pass — and during normal operation — the BISR
/// TLB diverts accesses aimed at faulty rows to spare rows. The engine
/// performs every memory access through this trait; `None` (or the
/// identity map) means no repair is active.
pub trait RowMap {
    /// Maps a logical row index to the physical row to access.
    fn map_row(&self, row: usize) -> usize;
}

/// The identity map: no repair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdentityMap;

impl RowMap for IdentityMap {
    fn map_row(&self, row: usize) -> usize {
        row
    }
}
