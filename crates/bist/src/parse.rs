//! Parsing march tests from their textual notation.
//!
//! The TRPLA's control code "is read in at runtime ... changing these
//! files to implement a different test algorithm is a simple and
//! straightforward matter" (paper §V). This module makes that workflow
//! ergonomic end-to-end: a march test written in the standard notation
//! parses into a [`MarchTest`], which assembles into a control program,
//! which synthesizes into the two personality files.
//!
//! Accepted grammar (ASCII or unicode arrows):
//!
//! ```text
//! test     := element (';' element)*
//! element  := arrow '(' op (',' op)* ')' | 'Delay'
//! arrow    := '^' | 'v' | '$' | '⇑' | '⇓' | '⇕'
//! op       := 'r0' | 'r1' | 'w0' | 'w1'
//! ```
//!
//! Whitespace is free; `Delay` is case-insensitive. The grammar is
//! strict: an empty element between two `;` separators (or a trailing
//! `;`) is a [`MarchParseError::EmptyElement`], never silently skipped —
//! a stray separator in a personality file usually means a hand edit
//! dropped an element, and the march that results would be shorter than
//! intended.

use crate::march::{AddrOrder, MarchElement, MarchOp, MarchTest};

/// Typed error produced when parsing march notation. Every variant
/// carries the byte offset of the offending token in the input text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MarchParseError {
    /// The input contains no elements at all.
    EmptyTest,
    /// Two `;` separators with nothing between them (or a trailing `;`).
    EmptyElement {
        /// Byte offset of the empty chunk.
        offset: usize,
    },
    /// The element does not start with an address-order arrow.
    UnknownSymbol {
        /// Byte offset of the element.
        offset: usize,
        /// The character found where an arrow was expected.
        symbol: char,
    },
    /// The op list after the arrow is not parenthesized.
    MissingParens {
        /// Byte offset of the element.
        offset: usize,
    },
    /// An operation token is not one of `r0`/`r1`/`w0`/`w1`.
    UnknownOperation {
        /// Byte offset of the element.
        offset: usize,
        /// The offending token text.
        op: String,
    },
}

impl MarchParseError {
    /// Byte offset of the offending token (0 for [`MarchParseError::EmptyTest`]).
    pub fn offset(&self) -> usize {
        match self {
            MarchParseError::EmptyTest => 0,
            MarchParseError::EmptyElement { offset }
            | MarchParseError::UnknownSymbol { offset, .. }
            | MarchParseError::MissingParens { offset }
            | MarchParseError::UnknownOperation { offset, .. } => *offset,
        }
    }
}

impl std::fmt::Display for MarchParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MarchParseError::EmptyTest => {
                write!(f, "march syntax error: test has no elements")
            }
            MarchParseError::EmptyElement { offset } => {
                write!(f, "march syntax error at byte {offset}: empty element between separators")
            }
            MarchParseError::UnknownSymbol { offset, symbol } => write!(
                f,
                "march syntax error at byte {offset}: expected an address-order arrow (^ v $), found {symbol:?}"
            ),
            MarchParseError::MissingParens { offset } => write!(
                f,
                "march syntax error at byte {offset}: element body must be parenthesized, e.g. ^(r0,w1)"
            ),
            MarchParseError::UnknownOperation { offset, op } => write!(
                f,
                "march syntax error at byte {offset}: unknown operation {op:?} (expected r0/r1/w0/w1)"
            ),
        }
    }
}

impl std::error::Error for MarchParseError {}

/// Parses a march test from its notation.
///
/// # Errors
///
/// Returns [`MarchParseError`] on malformed notation. Nothing is ever
/// skipped: every chunk between `;` separators must parse as an element.
///
/// ```
/// use bisram_bist::parse::parse_march;
/// let t = parse_march("mytest", "$(w0); ^(r0,w1); v(r1,w0)")?;
/// assert_eq!(t.ops_per_address(), 5);
/// # Ok::<(), bisram_bist::parse::MarchParseError>(())
/// ```
pub fn parse_march(name: &str, text: &str) -> Result<MarchTest, MarchParseError> {
    if text.trim().is_empty() {
        return Err(MarchParseError::EmptyTest);
    }
    let mut elements = Vec::new();
    for raw in text.split(';') {
        let chunk = raw.trim();
        let offset = offset_of(text, raw);
        if chunk.is_empty() {
            return Err(MarchParseError::EmptyElement { offset });
        }
        if chunk.eq_ignore_ascii_case("delay") {
            elements.push(MarchElement::Delay);
            continue;
        }
        let mut chars = chunk.char_indices();
        let (_, arrow) = chars
            .next()
            .ok_or(MarchParseError::EmptyElement { offset })?;
        let order = match arrow {
            '^' | '⇑' => AddrOrder::Up,
            'v' | 'V' | '⇓' => AddrOrder::Down,
            '$' | '⇕' => AddrOrder::Either,
            c => {
                return Err(MarchParseError::UnknownSymbol { offset, symbol: c });
            }
        };
        let rest = chars.as_str().trim();
        let body = rest
            .strip_prefix('(')
            .and_then(|s| s.strip_suffix(')'))
            .ok_or(MarchParseError::MissingParens { offset })?;
        let mut ops = Vec::new();
        for op_txt in body.split(',') {
            let op = match op_txt.trim() {
                "r0" | "R0" => MarchOp::R0,
                "r1" | "R1" => MarchOp::R1,
                "w0" | "W0" => MarchOp::W0,
                "w1" | "W1" => MarchOp::W1,
                other => {
                    return Err(MarchParseError::UnknownOperation {
                        offset,
                        op: other.to_owned(),
                    })
                }
            };
            ops.push(op);
        }
        elements.push(MarchElement::Sweep { order, ops });
    }
    if elements.is_empty() {
        return Err(MarchParseError::EmptyTest);
    }
    Ok(MarchTest::new(name, elements))
}

fn offset_of(haystack: &str, needle: &str) -> usize {
    // `needle` is a subslice of `haystack` by construction.
    needle.as_ptr() as usize - haystack.as_ptr() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::march;

    #[test]
    fn library_tests_roundtrip_through_their_notation() {
        for t in march::library() {
            // Display renders `NAME: body`; parse the body back.
            let s = t.to_string();
            let body = s.split_once(": ").expect("display format").1;
            let parsed = parse_march(t.name(), body).expect("library notation parses");
            assert_eq!(parsed, t, "{}", t.name());
        }
    }

    #[test]
    fn unicode_arrows_accepted() {
        let t = parse_march("u", "⇕(w0); ⇑(r0,w1); ⇓(r1)").unwrap();
        assert_eq!(t.elements().len(), 3);
        assert_eq!(t.ops_per_address(), 4);
    }

    #[test]
    fn delay_elements_and_case_insensitivity() {
        let t = parse_march("d", "$(w0); DELAY; ^(R1)").unwrap();
        assert_eq!(t.delay_count(), 1);
        assert_eq!(t.ops_per_address(), 2);
    }

    #[test]
    fn typed_errors_carry_position_and_token() {
        match parse_march("x", "^(r0); q(w1)").unwrap_err() {
            MarchParseError::UnknownSymbol { offset, symbol } => {
                assert_eq!(symbol, 'q');
                assert!(offset > 0);
            }
            e => panic!("wrong variant: {e:?}"),
        }

        match parse_march("x", "^(r2)").unwrap_err() {
            MarchParseError::UnknownOperation { op, .. } => assert_eq!(op, "r2"),
            e => panic!("wrong variant: {e:?}"),
        }

        match parse_march("x", "^r0").unwrap_err() {
            MarchParseError::MissingParens { offset } => assert_eq!(offset, 0),
            e => panic!("wrong variant: {e:?}"),
        }

        // An empty op list parses `""` as an unknown operation.
        match parse_march("x", "^()").unwrap_err() {
            MarchParseError::UnknownOperation { op, .. } => assert_eq!(op, ""),
            e => panic!("wrong variant: {e:?}"),
        }

        let e = parse_march("x", "   ").unwrap_err();
        assert_eq!(e, MarchParseError::EmptyTest);
        assert_eq!(e.offset(), 0);
        assert!(e.to_string().contains("no elements"));
    }

    #[test]
    fn empty_elements_are_errors_not_skips() {
        // A doubled separator used to be skipped silently, masking a
        // hand-edit that dropped an element from a personality file.
        match parse_march("x", "^(r0);; ^(w1)").unwrap_err() {
            MarchParseError::EmptyElement { offset } => assert_eq!(offset, 6),
            e => panic!("wrong variant: {e:?}"),
        }
        // Trailing separator: same rule.
        match parse_march("x", "^(r0); ").unwrap_err() {
            MarchParseError::EmptyElement { offset } => assert!(offset > 0),
            e => panic!("wrong variant: {e:?}"),
        }
        // Separators only: flagged at the first empty chunk.
        match parse_march("x", "  ;  ; ").unwrap_err() {
            MarchParseError::EmptyElement { offset } => assert_eq!(offset, 0),
            e => panic!("wrong variant: {e:?}"),
        }
        let shown = parse_march("x", "^(r0);;").unwrap_err().to_string();
        assert!(shown.contains("byte"), "{shown}");
        assert!(shown.contains("empty element"), "{shown}");
    }

    #[test]
    fn parsed_test_drives_the_whole_pipeline() {
        // Notation -> test -> controller -> PLA -> planes -> PLA again.
        let t = parse_march("custom", "$(w0); ^(r0,w1); ^(r1)").unwrap();
        let program = crate::trpla::assemble(&t);
        assert!(program.state_count() > 10);
        let pla = program.synthesize_pla();
        let (a, o) = pla.export_planes();
        let back = crate::trpla::Pla::import_planes(&a, &o).unwrap();
        assert_eq!(back, pla);
    }
}
