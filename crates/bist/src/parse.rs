//! Parsing march tests from their textual notation.
//!
//! The TRPLA's control code "is read in at runtime ... changing these
//! files to implement a different test algorithm is a simple and
//! straightforward matter" (paper §V). This module makes that workflow
//! ergonomic end-to-end: a march test written in the standard notation
//! parses into a [`MarchTest`], which assembles into a control program,
//! which synthesizes into the two personality files.
//!
//! Accepted grammar (ASCII or unicode arrows):
//!
//! ```text
//! test     := element (';' element)*
//! element  := arrow '(' op (',' op)* ')' | 'Delay'
//! arrow    := '^' | 'v' | '$' | '⇑' | '⇓' | '⇕'
//! op       := 'r0' | 'r1' | 'w0' | 'w1'
//! ```
//!
//! Whitespace is free; `Delay` is case-insensitive.

use crate::march::{AddrOrder, MarchElement, MarchOp, MarchTest};

/// Error produced when parsing march notation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMarchError {
    /// Byte offset of the offending token.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseMarchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "march syntax error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseMarchError {}

/// Parses a march test from its notation.
///
/// # Errors
///
/// Returns [`ParseMarchError`] on malformed notation.
///
/// ```
/// use bisram_bist::parse::parse_march;
/// let t = parse_march("mytest", "$(w0); ^(r0,w1); v(r1,w0)")?;
/// assert_eq!(t.ops_per_address(), 5);
/// # Ok::<(), bisram_bist::parse::ParseMarchError>(())
/// ```
pub fn parse_march(name: &str, text: &str) -> Result<MarchTest, ParseMarchError> {
    let mut elements = Vec::new();
    for raw in text.split(';') {
        let chunk = raw.trim();
        if chunk.is_empty() {
            continue;
        }
        let offset = offset_of(text, raw);
        if chunk.eq_ignore_ascii_case("delay") {
            elements.push(MarchElement::Delay);
            continue;
        }
        let mut chars = chunk.char_indices();
        let (_, arrow) = chars.next().ok_or_else(|| ParseMarchError {
            offset,
            message: "empty element".to_owned(),
        })?;
        let order = match arrow {
            '^' | '⇑' => AddrOrder::Up,
            'v' | 'V' | '⇓' => AddrOrder::Down,
            '$' | '⇕' => AddrOrder::Either,
            c => {
                return Err(ParseMarchError {
                    offset,
                    message: format!("expected an address-order arrow (^ v $), found {c:?}"),
                })
            }
        };
        let rest = chars.as_str().trim();
        let body = rest
            .strip_prefix('(')
            .and_then(|s| s.strip_suffix(')'))
            .ok_or_else(|| ParseMarchError {
                offset,
                message: "element body must be parenthesized, e.g. ^(r0,w1)".to_owned(),
            })?;
        let mut ops = Vec::new();
        for op_txt in body.split(',') {
            let op = match op_txt.trim() {
                "r0" | "R0" => MarchOp::R0,
                "r1" | "R1" => MarchOp::R1,
                "w0" | "W0" => MarchOp::W0,
                "w1" | "W1" => MarchOp::W1,
                other => {
                    return Err(ParseMarchError {
                        offset,
                        message: format!("unknown operation {other:?} (expected r0/r1/w0/w1)"),
                    })
                }
            };
            ops.push(op);
        }
        if ops.is_empty() {
            return Err(ParseMarchError {
                offset,
                message: "element has no operations".to_owned(),
            });
        }
        elements.push(MarchElement::Sweep { order, ops });
    }
    if elements.is_empty() {
        return Err(ParseMarchError {
            offset: 0,
            message: "march test has no elements".to_owned(),
        });
    }
    Ok(MarchTest::new(name, elements))
}

fn offset_of(haystack: &str, needle: &str) -> usize {
    // `needle` is a subslice of `haystack` by construction.
    needle.as_ptr() as usize - haystack.as_ptr() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::march;

    #[test]
    fn library_tests_roundtrip_through_their_notation() {
        for t in march::library() {
            // Display renders `NAME: body`; parse the body back.
            let s = t.to_string();
            let body = s.split_once(": ").expect("display format").1;
            let parsed = parse_march(t.name(), body).expect("library notation parses");
            assert_eq!(parsed, t, "{}", t.name());
        }
    }

    #[test]
    fn unicode_arrows_accepted() {
        let t = parse_march("u", "⇕(w0); ⇑(r0,w1); ⇓(r1)").unwrap();
        assert_eq!(t.elements().len(), 3);
        assert_eq!(t.ops_per_address(), 4);
    }

    #[test]
    fn delay_elements_and_case_insensitivity() {
        let t = parse_march("d", "$(w0); DELAY; ^(R1)").unwrap();
        assert_eq!(t.delay_count(), 1);
        assert_eq!(t.ops_per_address(), 2);
    }

    #[test]
    fn error_positions_and_messages() {
        let e = parse_march("x", "^(r0); q(w1)").unwrap_err();
        assert!(e.message.contains("arrow"), "{e}");
        assert!(e.offset > 0);

        let e = parse_march("x", "^(r2)").unwrap_err();
        assert!(e.message.contains("unknown operation"));

        let e = parse_march("x", "^r0").unwrap_err();
        assert!(e.message.contains("parenthesized"));

        let e = parse_march("x", "^()").unwrap_err();
        assert!(e.message.contains("unknown operation") || e.message.contains("no operations"));

        let e = parse_march("x", "  ;  ; ").unwrap_err();
        assert!(e.message.contains("no elements"));
        assert!(e.to_string().contains("byte"));
    }

    #[test]
    fn parsed_test_drives_the_whole_pipeline() {
        // Notation -> test -> controller -> PLA -> planes -> PLA again.
        let t = parse_march("custom", "$(w0); ^(r0,w1); ^(r1)").unwrap();
        let program = crate::trpla::assemble(&t);
        assert!(program.state_count() > 10);
        let pla = program.synthesize_pla();
        let (a, o) = pla.export_planes();
        let back = crate::trpla::Pla::import_planes(&a, &o).unwrap();
        assert_eq!(back, pla);
    }
}
