//! Integration: the whole stochastic surface of the tool is reproducible.
//!
//! The hermetic-build policy (see DESIGN.md) vendors a deterministic RNG
//! so that every randomized flow — fault injection, Monte-Carlo yield,
//! coverage campaigns — produces byte-identical results from the same
//! seed, on any host, forever. These tests pin that contract end to end:
//! each one runs the same experiment twice from independently constructed
//! generators and demands exact equality, not statistical closeness.

use bisram_bist::{coverage, march};
use bisram_mem::{random_faults, ArrayOrg, FaultClass, FaultMix};
use bisram_rng::rngs::StdRng;
use bisram_rng::SeedableRng;
use bisram_tech::Process;
use bisram_yield::montecarlo::{self, MonteCarloYield};
use bisram_yield::rare::{RareEngine, TrialKernel};
use bisramgen::diag::{Transport, TransportFaults};
use bisramgen::field::{
    heterogeneous_chip, simulate_fleet_golden_jobs, simulate_fleet_jobs, ChipConfig, ChipModel,
    FieldConfig,
};
use bisramgen::{compile_with, ChipSheet, CompileOptions, CompiledRam, RamParams, VerifyMode};

/// The four byte-exact textual outputs the cache-transparency contract
/// covers: floorplan SVG, the two PLA personality planes, the itemized
/// area report, and the datasheet.
fn output_bytes(ram: &CompiledRam) -> (String, (String, String), String, String) {
    (
        ram.floorplan_svg(),
        ram.pla_planes(),
        ram.areas().report().to_string(),
        ram.datasheet().to_string(),
    )
}

#[test]
fn same_seed_gives_byte_identical_fault_lists() {
    let org = ArrayOrg::new(256, 8, 4, 2).expect("valid organization");
    let mix = FaultMix::default();
    for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
        let run = || {
            let mut rng = StdRng::seed_from_u64(seed);
            random_faults(&mut rng, &org, 40, &mix)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "seed {seed}: fault lists diverged");
        // Byte-for-byte, not just structurally equal.
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
    }
}

#[test]
fn same_seed_gives_identical_monte_carlo_yield() {
    let org = ArrayOrg::new(256, 8, 4, 4).expect("valid organization");
    for (seed, clustering) in [(7u64, None), (8, Some(2.0))] {
        let run = || -> MonteCarloYield {
            let mut rng = StdRng::seed_from_u64(seed);
            montecarlo::simulate_yield(&mut rng, org, 2.5, 60, clustering)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "seed {seed} clustering {clustering:?}");
        assert_eq!(a.trials, 60);
        assert_eq!(a.already_good + a.repaired + a.unrepairable, a.trials);
    }
}

#[test]
fn same_seed_gives_identical_coverage_report() {
    let org = ArrayOrg::new(64, 8, 4, 0).expect("valid organization");
    let test = march::ifa13();
    let run = || {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        coverage::measure(&mut rng, org, &test, true, 24, false)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "coverage campaigns diverged");
    for class in [FaultClass::Saf, FaultClass::Tf] {
        let ca = a.class(class).expect("class present");
        let cb = b.class(class).expect("class present");
        assert_eq!(ca, cb, "class {class}");
        assert_eq!(ca.injected, 24);
    }
}

#[test]
fn warm_cache_recompiles_are_byte_identical_across_all_processes() {
    // Cache transparency: a warm recompile (every stage artifact served
    // from the cache) must produce byte-identical outputs to the cold
    // compile that populated it, for each built-in process.
    for name in ["CDA.5u3m1p", "mos.6u3m1pHP", "CDA.7u3m1p"] {
        let process = Process::by_name(name).expect("built-in process");
        let params = RamParams::builder()
            .words(512)
            .bits_per_word(8)
            .bits_per_column(4)
            .spare_rows(4)
            .process(process)
            .build()
            .expect("valid parameters");
        let options = CompileOptions::cold();
        let cold = compile_with(&params, &options).expect("cold compile");
        let warm = compile_with(&params, &options).expect("warm compile");
        assert!(
            warm.trace().cache_misses() == 0,
            "{name}: warm recompile rebuilt an artifact"
        );
        assert_eq!(
            output_bytes(&cold),
            output_bytes(&warm),
            "{name}: warm recompile diverged from cold"
        );
    }
}

#[test]
fn parallel_and_cached_compiles_match_the_serial_cold_path() {
    // The parallel executor and the artifact cache must both be
    // invisible in the output: serial cold is the reference, and
    // 2-way / 8-way parallel compiles — cold and cache-warm — must be
    // byte-identical to it.
    let params = RamParams::builder()
        .words(1024)
        .bits_per_word(16)
        .bits_per_column(4)
        .spare_rows(4)
        .build()
        .expect("valid parameters");
    let reference = compile_with(&params, &CompileOptions::cold().with_jobs(1))
        .expect("serial cold compile");
    let reference_bytes = output_bytes(&reference);
    for jobs in [2, 8] {
        let options = CompileOptions::cold().with_jobs(jobs);
        let cold = compile_with(&params, &options).expect("parallel cold compile");
        let warm = compile_with(&params, &options).expect("parallel warm compile");
        assert_eq!(
            output_bytes(&cold),
            reference_bytes,
            "jobs={jobs}: parallel cold diverged from serial"
        );
        assert_eq!(
            output_bytes(&warm),
            reference_bytes,
            "jobs={jobs}: parallel warm diverged from serial"
        );
        assert!(warm.trace().cache_hits() > 0, "jobs={jobs}: no cache hits");
    }
}

#[test]
fn verify_report_is_byte_identical_across_worker_counts() {
    // Physical verification fans out per-macrocell on the executor and
    // caches per-macro results; neither may leak into the report. The
    // serial cold compile is the reference; 2-way and 8-way compiles —
    // cold and cache-warm — must render the identical report.
    let params = RamParams::builder()
        .words(64)
        .bits_per_word(4)
        .bits_per_column(4)
        .spare_rows(4)
        .build()
        .expect("valid parameters");
    let reference = compile_with(
        &params,
        &CompileOptions::cold().with_jobs(1).with_verify(true),
    )
    .expect("serial verified compile");
    let reference_bytes = reference
        .verify_report()
        .expect("verification requested")
        .to_string();
    assert!(reference.verify_report().unwrap().is_clean());
    for jobs in [2, 8] {
        let options = CompileOptions::cold().with_jobs(jobs).with_verify(true);
        let cold = compile_with(&params, &options).expect("parallel verified compile");
        let warm = compile_with(&params, &options).expect("warm verified compile");
        assert_eq!(
            cold.verify_report().unwrap().to_string(),
            reference_bytes,
            "jobs={jobs}: parallel verify report diverged from serial"
        );
        assert_eq!(
            warm.verify_report().unwrap().to_string(),
            reference_bytes,
            "jobs={jobs}: warm verify report diverged from serial"
        );
        assert!(
            warm.trace().cache_misses() == 0,
            "jobs={jobs}: warm verified recompile rebuilt an artifact"
        );
    }
}

#[test]
fn hierarchical_verify_is_byte_identical_to_flat_everywhere() {
    // The hierarchical-mode contract: on a clean design the certificate
    // + boundary-window report must render byte-identically to the flat
    // one — for all twelve macrocells, in every built-in process, at
    // every worker count, from both a cold and a warm certificate
    // cache.
    for name in ["CDA.5u3m1p", "mos.6u3m1pHP", "CDA.7u3m1p"] {
        let process = Process::by_name(name).expect("built-in process");
        let params = RamParams::builder()
            .words(64)
            .bits_per_word(4)
            .bits_per_column(4)
            .spare_rows(4)
            .process(process)
            .build()
            .expect("valid parameters");
        let flat = compile_with(
            &params,
            &CompileOptions::cold().with_jobs(1).with_verify(true),
        )
        .expect("flat verified compile");
        let flat_report = flat.verify_report().expect("flat report");
        assert!(flat_report.is_clean(), "[{name}]\n{flat_report}");
        assert_eq!(flat_report.cells.len(), 12, "{name}");
        let flat_bytes = flat_report.to_string();
        for jobs in [1, 2, 8] {
            let options = CompileOptions::cold()
                .with_jobs(jobs)
                .with_verify(true)
                .with_verify_mode(VerifyMode::Hier);
            let cold = compile_with(&params, &options).expect("hier cold compile");
            let warm = compile_with(&params, &options).expect("hier warm compile");
            assert_eq!(
                cold.verify_report().expect("hier report").to_string(),
                flat_bytes,
                "[{name}] jobs={jobs}: cold hierarchical report diverged from flat"
            );
            assert_eq!(
                warm.verify_report().expect("hier report").to_string(),
                flat_bytes,
                "[{name}] jobs={jobs}: warm hierarchical report diverged from flat"
            );
            assert!(
                warm.trace().cache_misses() == 0,
                "[{name}] jobs={jobs}: warm hierarchical recompile rebuilt an artifact"
            );
        }
    }
}

#[test]
fn signoff_verification_is_clean_for_every_process() {
    // The end-to-end acceptance gate: a small module compiled with
    // verification on must pass DRC and LVS on all twelve macrocells in
    // every built-in process.
    for name in ["CDA.5u3m1p", "mos.6u3m1pHP", "CDA.7u3m1p"] {
        let process = Process::by_name(name).expect("built-in process");
        let params = RamParams::builder()
            .words(64)
            .bits_per_word(4)
            .bits_per_column(4)
            .spare_rows(4)
            .process(process)
            .build()
            .expect("valid parameters");
        let ram = compile_with(
            &params,
            &CompileOptions::cold().with_verify(true),
        )
        .expect("verified compile");
        let report = ram.verify_report().expect("verification requested");
        assert_eq!(report.cells.len(), 12, "{name}");
        assert!(report.is_clean(), "[{name}]\n{report}");
        assert_eq!(report.process, name);
    }
}

#[test]
fn chip_repair_report_is_byte_identical_across_workers_and_reruns() {
    // The chip-level diagnose→allocate→repair flow fans out per macro on
    // the executor and draws per-macro RNG streams; neither scheduling
    // nor worker count may leak into the report. A noisy transport makes
    // this a real test: retries and quarantines must land identically.
    let mut base = ChipConfig::new(heterogeneous_chip(12, 0xC41F), 512, 0xC41F);
    base.transport = Transport::with_faults(TransportFaults {
        drop_probability: 0.01,
        duplicate_probability: 0.005,
        timeout_probability: 0.15,
        ..TransportFaults::none()
    });
    let run = |jobs: usize| {
        let mut cfg = base.clone();
        cfg.jobs = Some(jobs);
        ChipModel::new(cfg).diagnose_and_repair()
    };
    // Serial is the reference; a second serial run is the "warm" rerun
    // (freshly constructed chip, same seed — nothing carries over).
    let reference = run(1);
    let rerun = run(1);
    assert_eq!(reference, rerun, "cold/warm serial chip runs diverged");
    let reference_bytes = reference.to_string();
    assert_eq!(rerun.to_string(), reference_bytes);
    for jobs in [2, 8] {
        let parallel = run(jobs);
        assert_eq!(parallel, reference, "jobs={jobs}: chip report diverged");
        assert_eq!(
            parallel.to_string(),
            reference_bytes,
            "jobs={jobs}: chip report bytes diverged"
        );
        let again = run(jobs);
        assert_eq!(
            again.to_string(),
            reference_bytes,
            "jobs={jobs}: rerun diverged"
        );
    }
    // The derived datasheet section is deterministic too, per process.
    for name in ["CDA.5u3m1p", "mos.6u3m1pHP", "CDA.7u3m1p"] {
        let process = Process::by_name(name).expect("built-in process");
        let a = ChipSheet::from_report(&reference, &process).to_string();
        let b = ChipSheet::from_report(&run(8), &process).to_string();
        assert_eq!(a, b, "{name}: chip sheet diverged");
    }
    // The noise actually exercised the retry path somewhere.
    assert!(
        reference.macros.iter().any(|m| m.transport_attempts > 1),
        "transport noise never fired — test lost its teeth"
    );
}

#[test]
fn lane_packed_fleet_is_byte_identical_to_golden_at_every_worker_count() {
    // The lane-packed engine (64 lifetimes per u64 word walk) and the
    // golden per-trial engine must produce byte-identical `FleetResult`s
    // for every worker count and for fleet sizes straddling the lane
    // width. `FleetResult::eq` compares floats via `to_bits`, so this is
    // bit-exactness, not approximate agreement.
    let org = ArrayOrg::new(32, 2, 2, 3).expect("valid organization");
    let mut cfg = FieldConfig::new(org, 2.0e-6, 10_000.0, 120_000.0);
    cfg.transient_upset_probability = 0.05;
    for lifetimes in [63usize, 64, 65, 130] {
        let reference = simulate_fleet_golden_jobs(&cfg, lifetimes, 0xF1EE7, 1);
        for jobs in [1usize, 2, 8] {
            let lane = simulate_fleet_jobs(&cfg, lifetimes, 0xF1EE7, jobs);
            assert_eq!(
                lane, reference,
                "lifetimes={lifetimes} jobs={jobs}: lane engine diverged from golden"
            );
            let golden = simulate_fleet_golden_jobs(&cfg, lifetimes, 0xF1EE7, jobs);
            assert_eq!(
                golden, reference,
                "lifetimes={lifetimes} jobs={jobs}: golden engine depends on worker count"
            );
        }
        // The run exercised real machinery, not a trivially immortal fleet.
        assert!(
            reference.deaths > 0,
            "lifetimes={lifetimes}: no deaths — test lost its teeth"
        );
    }
}

#[test]
fn rare_event_estimates_are_byte_identical_across_worker_counts() {
    // The rare-event engine's full surface — pilot statistics, the
    // deterministic shift pre-search, plain MC, mixture importance
    // sampling and statistical blockade — must not depend on the worker
    // count. `TailEstimate::eq` compares floats via `to_bits`, so the
    // f64 weight sums must merge in chunk order, not completion order.
    let mut engine = RareEngine::for_process(
        &Process::cda07(),
        TrialKernel::WriteMargin,
        0.0,
    );
    engine.threshold = engine.calibrate_threshold(0xBEEF, 120, 1e-2, 1);
    let shifts = engine.find_shifts();
    assert!(!shifts.is_empty(), "pre-search must find a failure mode");

    let stats = engine.metric_stats(0xBEEF, 120, 1);
    let mc = engine.run_mc(0x5EED, 96, 1);
    let is = engine.run_is_mixture(0x5EED, 96, 1, &shifts);
    let blockade = engine.run_blockade(0x5EED, 64, 96, 3.0, 1);
    for jobs in [2usize, 8] {
        let (mean, std) = engine.metric_stats(0xBEEF, 120, jobs);
        assert_eq!(stats.0.to_bits(), mean.to_bits(), "pilot mean at {jobs} workers");
        assert_eq!(stats.1.to_bits(), std.to_bits(), "pilot std at {jobs} workers");
        assert_eq!(
            mc,
            engine.run_mc(0x5EED, 96, jobs),
            "plain MC diverged at {jobs} workers"
        );
        assert_eq!(
            is,
            engine.run_is_mixture(0x5EED, 96, jobs, &shifts),
            "importance sampling diverged at {jobs} workers"
        );
        assert_eq!(
            blockade,
            engine.run_blockade(0x5EED, 64, 96, 3.0, jobs),
            "blockade diverged at {jobs} workers"
        );
    }
    // The pinned runs saw real failures — the equality had teeth.
    assert!(mc.failures > 0, "calibrated threshold must produce failures");
    assert!(is.failures > 0, "shifted run must hit the tail");
}

#[test]
fn different_seeds_actually_differ() {
    // Guard against a degenerate generator that ignores its seed: two
    // different seeds must not produce the same 40-fault list.
    let org = ArrayOrg::new(256, 8, 4, 2).expect("valid organization");
    let mix = FaultMix::default();
    let mut a_rng = StdRng::seed_from_u64(1);
    let mut b_rng = StdRng::seed_from_u64(2);
    let a = random_faults(&mut a_rng, &org, 40, &mix);
    let b = random_faults(&mut b_rng, &org, 40, &mix);
    assert_ne!(a, b, "independent seeds produced identical fault lists");
}

#[test]
fn serve_sections_are_byte_identical_across_services_and_worker_counts() {
    use bisram_serve::{JobSpec, Service};

    let spec = "job = characterize\nwords = 256\nbpw = 16\nbpc = 4\nspares = 3\nverify = hier\n";
    let job = JobSpec::parse(spec).expect("spec parses");
    let mut outputs = Vec::new();
    for jobs in [1usize, 2, 8] {
        let service = Service::with_cache(
            std::sync::Arc::new(bisramgen::CellCache::new()),
            Some(jobs),
        );
        let (outcome, dedup) = service.submit(&job);
        assert!(!dedup);
        let result = outcome.as_ref().as_ref().expect("job succeeds");
        let flat: String = result
            .sections
            .iter()
            .map(|s| format!("== {} ==\n{}", s.name, s.content))
            .collect();
        outputs.push((jobs, flat));
    }
    for (jobs, flat) in &outputs[1..] {
        assert_eq!(
            flat, &outputs[0].1,
            "service sections differ between jobs=1 and jobs={jobs}"
        );
    }
}

#[test]
fn sweep_report_is_byte_identical_across_jobs_and_backends() {
    use bisram_serve::{
        run_sweep, Daemon, DaemonConfig, Listen, Service, SweepBackend, SweepSpec,
    };
    use std::sync::Arc;

    let spec = SweepSpec::parse(
        "words = 128, 256\nbpw = 8\nbpc = 4\nspares = 1, 3\nverify = none\n",
    )
    .expect("sweep spec parses");

    // In-process at several concurrency levels...
    let mut reports = Vec::new();
    for jobs in [1usize, 2, 8] {
        let service = Service::cold();
        let backend = SweepBackend::InProcess(&service);
        let report = run_sweep(&spec, &backend, Some(jobs)).expect("sweep runs");
        reports.push((format!("in-process jobs={jobs}"), report.text));
    }

    // ...and through a live daemon.
    let daemon = Daemon::start_with_service(
        &DaemonConfig {
            listen: Listen::Tcp("127.0.0.1:0".to_owned()),
            jobs: Some(2),
        },
        Arc::new(Service::cold()),
    )
    .expect("daemon binds");
    let backend = SweepBackend::Daemon(daemon.listen().clone());
    let report = run_sweep(&spec, &backend, Some(4)).expect("daemon sweep runs");
    reports.push(("daemon jobs=4".to_owned(), report.text));
    daemon.stop();
    daemon.join();

    for (label, text) in &reports[1..] {
        assert_eq!(
            text, &reports[0].1,
            "sweep report differs: {} vs {label}",
            reports[0].0
        );
    }
    assert!(reports[0].1.contains("sweep points: 4"));
    assert!(reports[0].1.contains("sweep frontier: "));
}
