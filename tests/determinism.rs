//! Integration: the whole stochastic surface of the tool is reproducible.
//!
//! The hermetic-build policy (see DESIGN.md) vendors a deterministic RNG
//! so that every randomized flow — fault injection, Monte-Carlo yield,
//! coverage campaigns — produces byte-identical results from the same
//! seed, on any host, forever. These tests pin that contract end to end:
//! each one runs the same experiment twice from independently constructed
//! generators and demands exact equality, not statistical closeness.

use bisram_bist::{coverage, march};
use bisram_mem::{random_faults, ArrayOrg, FaultMix};
use bisram_rng::rngs::StdRng;
use bisram_rng::SeedableRng;
use bisram_yield::montecarlo::{self, MonteCarloYield};

#[test]
fn same_seed_gives_byte_identical_fault_lists() {
    let org = ArrayOrg::new(256, 8, 4, 2).expect("valid organization");
    let mix = FaultMix::default();
    for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
        let run = || {
            let mut rng = StdRng::seed_from_u64(seed);
            random_faults(&mut rng, &org, 40, &mix)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "seed {seed}: fault lists diverged");
        // Byte-for-byte, not just structurally equal.
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
    }
}

#[test]
fn same_seed_gives_identical_monte_carlo_yield() {
    let org = ArrayOrg::new(256, 8, 4, 4).expect("valid organization");
    for (seed, clustering) in [(7u64, None), (8, Some(2.0))] {
        let run = || -> MonteCarloYield {
            let mut rng = StdRng::seed_from_u64(seed);
            montecarlo::simulate_yield(&mut rng, org, 2.5, 60, clustering)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "seed {seed} clustering {clustering:?}");
        assert_eq!(a.trials, 60);
        assert_eq!(a.already_good + a.repaired + a.unrepairable, a.trials);
    }
}

#[test]
fn same_seed_gives_identical_coverage_report() {
    let org = ArrayOrg::new(64, 8, 4, 0).expect("valid organization");
    let test = march::ifa13();
    let run = || {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        coverage::measure(&mut rng, org, &test, true, 24, false)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "coverage campaigns diverged");
    for class in ["SAF", "TF"] {
        let ca = a.class(class).expect("class present");
        let cb = b.class(class).expect("class present");
        assert_eq!(ca, cb, "class {class}");
        assert_eq!(ca.injected, 24);
    }
}

#[test]
fn different_seeds_actually_differ() {
    // Guard against a degenerate generator that ignores its seed: two
    // different seeds must not produce the same 40-fault list.
    let org = ArrayOrg::new(256, 8, 4, 2).expect("valid organization");
    let mix = FaultMix::default();
    let mut a_rng = StdRng::seed_from_u64(1);
    let mut b_rng = StdRng::seed_from_u64(2);
    let a = random_faults(&mut a_rng, &org, 40, &mix);
    let b = random_faults(&mut b_rng, &org, 40, &mix);
    assert_ne!(a, b, "independent seeds produced identical fault lists");
}
