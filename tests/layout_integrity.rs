//! Integration: the generated layouts hold together — DRC-clean leaf
//! cells and arrays in every process, pitch-consistent macrocells,
//! exportable geometry, and area accounting that adds up.

use bisram_layout::{export, leaf, tile};
use bisram_tech::{drc, Process};
use bisramgen::{compile, RamParams};
use std::sync::Arc;

#[test]
fn compiled_module_core_is_drc_clean_in_every_process() {
    // Flatten a complete small module (array + periphery + BIST/BISR)
    // and run the checker. Macrocells are placed with clearance, so the
    // only possible violations are internal — and there must be none.
    for process in Process::builtin() {
        let params = RamParams::builder()
            .words(64)
            .bits_per_word(4)
            .bits_per_column(4)
            .spare_rows(4)
            .process(process.clone())
            .build()
            .expect("valid");
        let ram = compile(&params).expect("compiles");
        let shapes = ram.chip().flatten();
        assert!(shapes.len() > 500, "module is non-trivial: {}", shapes.len());
        // Note: route shapes (metal3) connect macros and may touch many
        // rects; the DRC treats touching shapes as connected.
        let violations = drc::check(process.rules(), shapes);
        assert!(
            violations.is_empty(),
            "{}: {} violations, first: {}",
            process.name(),
            violations.len(),
            violations[0]
        );
    }
}

#[test]
fn macrocell_areas_sum_close_to_floorplan_area() {
    let params = RamParams::builder()
        .words(1024)
        .bits_per_word(16)
        .bits_per_column(4)
        .build()
        .expect("valid");
    let ram = compile(&params).expect("compiles");
    let accounted = ram.areas().report().total() as f64;
    let bbox = ram.placement().bbox().area() as f64;
    let utilization = accounted / bbox;
    // RAM floorplans with tall skinny arrays and thin periphery strips
    // pack around 50%; anything below 40% would indicate a placer bug.
    assert!(
        utilization > 0.4,
        "placement wastes too much area: utilization {utilization:.3}"
    );
    assert!(utilization <= 1.0 + 1e-9);
}

#[test]
fn exports_are_consistent_with_geometry() {
    let p = Process::cda07();
    let array = tile::tile_grid("arr", Arc::new(leaf::sram6t(&p)), 2, 2);
    let flat = array.flatten();
    let cif = export::to_cif(&array);
    let svg = export::to_svg(&array);
    assert_eq!(cif.lines().filter(|l| l.starts_with("B ")).count(), flat.len());
    assert_eq!(svg.matches("<rect").count(), flat.len());
}

#[test]
fn pitch_contracts_hold_in_every_process() {
    for p in Process::builtin() {
        let l = p.rules().lambda();
        let sram = leaf::sram6t(&p);
        assert_eq!(sram.bbox().width(), leaf::SRAM_W * l);
        // The column-pitch family.
        for cell in [
            leaf::precharge(&p, 2),
            leaf::col_mux(&p),
            leaf::sense_amp(&p),
            leaf::write_driver(&p),
        ] {
            assert_eq!(
                cell.bbox().width(),
                sram.bbox().width(),
                "{} in {}",
                cell.name(),
                p.name()
            );
        }
        // The row-pitch family.
        for cell in [leaf::row_decoder(&p, 8), leaf::wordline_driver(&p, 2)] {
            assert_eq!(cell.bbox().height(), sram.bbox().height());
        }
    }
}

#[test]
fn bigger_user_knobs_grow_the_layout_monotonically() {
    let area_of = |gate_size: i64, strap: (usize, i64)| {
        let params = RamParams::builder()
            .words(256)
            .bits_per_word(8)
            .bits_per_column(4)
            .gate_size(gate_size)
            .strap(strap.0, strap.1)
            .build()
            .expect("valid");
        compile(&params).expect("compiles").area_mm2()
    };
    // Bigger critical gates grow the drivers; straps grow the array.
    assert!(area_of(4, (0, 0)) > area_of(1, (0, 0)));
    assert!(area_of(2, (8, 16)) > area_of(2, (0, 0)));
}

#[test]
fn floorplan_svg_covers_every_macro_and_is_parsable_xml() {
    let params = RamParams::builder().words(256).bits_per_word(8).build().unwrap();
    let ram = compile(&params).unwrap();
    let svg = ram.floorplan_svg();
    for m in ram.placement().placed() {
        assert!(svg.contains(&m.name), "missing macro {}", m.name);
    }
    // Minimal well-formedness: every rect/text self-closes or closes.
    assert_eq!(svg.matches("<svg").count(), 1);
    assert_eq!(svg.matches("</svg>").count(), 1);
    assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
}
