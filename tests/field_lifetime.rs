//! Integration: the in-field lifetime simulator driven end to end
//! through the top-level crate — compiled-parameter organizations, the
//! datasheet reliability section, and both spare policies exercised on
//! the same fault pressure.

use bisramgen::field::{
    simulate_fleet, simulate_lifetime, DegradationState, FieldConfig, SparePolicy,
};
use bisramgen::yield_model::reliability::ReliabilityModel;
use bisramgen::{Datasheet, RamParams};
use bisram_mem::ArrayOrg;

fn config(spares: usize) -> FieldConfig {
    let org = ArrayOrg::new(64, 4, 4, spares).expect("valid");
    // F(horizon) ≈ 0.3 over 10 sessions.
    FieldConfig::new(org, 2.2e-7, 10_000.0, 100_000.0)
}

#[test]
fn small_fleet_tracks_the_analytic_curve_loosely() {
    // The tight 3%/2500-lifetime validation lives in bisram-field's own
    // suite; here a small fleet just has to stay in the analytic
    // ballpark while running through the public facade.
    let cfg = config(4);
    let fleet = simulate_fleet(&cfg, 200, 0x1f1e1d);
    let model = ReliabilityModel {
        org: cfg.org,
        lambda_per_hour: cfg.lambda_per_hour,
    };
    let cmp = model.compare(&fleet.curve).expect("non-empty grid");
    assert!(
        cmp.max_abs_error < 0.10,
        "max |R̂−R| = {:.3} at {} h",
        cmp.max_abs_error,
        cmp.worst_time_hours
    );
}

#[test]
fn opportunistic_policy_outlives_pessimistic_accounting() {
    // The same seeds under the lenient policy must never die earlier:
    // recapture turns spare faults from fatal into a spare tax, and
    // exhaustion degrades instead of stopping the clock... at the same
    // session or later.
    let pess = config(2);
    let mut opp = config(2);
    opp.spare_policy = SparePolicy::Opportunistic;
    let mut improved = 0usize;
    for seed in 0..150u64 {
        let a = simulate_lifetime(&pess, seed);
        let b = simulate_lifetime(&opp, seed);
        let ta = a.failure_time_hours.unwrap_or(f64::INFINITY);
        let tb = b.failure_time_hours.unwrap_or(f64::INFINITY);
        assert!(
            tb >= ta,
            "seed {seed}: opportunistic died at {tb} before pessimistic at {ta}"
        );
        if tb > ta {
            improved += 1;
        }
        // Graceful degradation: a lifetime that ran out of spares keeps
        // its unrepairable map sorted and non-empty.
        if b.state == DegradationState::DetectOnly {
            assert!(!b.unrepairable_rows.is_empty());
            assert!(b.unrepairable_rows.windows(2).all(|w| w[0] < w[1]));
        }
    }
    assert!(
        improved > 0,
        "over 150 seeds the lenient policy should beat the pessimistic one at least once"
    );
}

#[test]
fn datasheet_reliability_section_comes_from_the_simulator() {
    let p = RamParams::builder()
        .words(256)
        .bits_per_word(4)
        .bits_per_column(4)
        .spare_rows(4)
        .build()
        .expect("valid params");
    let d = Datasheet::extrapolate(&p).with_simulated_reliability(&p, 1e-9, 16, 42);
    let r = d.reliability.as_ref().expect("filled");
    assert_eq!(r.lifetimes, 16);
    assert!(r.simulated_mttf_hours > 0.0);
    assert!(d.to_string().contains("MTTF (simul.)"));
}

#[test]
fn event_logs_are_bytewise_reproducible_across_policies() {
    for policy in [SparePolicy::Pessimistic, SparePolicy::Opportunistic] {
        let mut cfg = config(2);
        cfg.spare_policy = policy;
        cfg.transient_upset_probability = 0.1;
        let a = simulate_lifetime(&cfg, 0xABCDE);
        let b = simulate_lifetime(&cfg, 0xABCDE);
        assert_eq!(format!("{:?}", a.events), format!("{:?}", b.events));
        assert_eq!(a, b);
    }
}
