//! Golden diagnosis matrix: every fault kind in the behavioural model,
//! injected one at a time and diagnosed under IFA-13, March C- and
//! IFA-9, with the resulting candidate sets pinned exactly and
//! cross-validated against the injected ground truth.
//!
//! Two ambiguities are *behaviourally real* and must be reported as
//! candidate sets, never collapsed to a guess:
//!
//! * `SAF/0` vs `TF⟨↑⟩` — a cell that cannot rise is pinned at 0 under
//!   any march whose elements write the background first, bit-identical
//!   to stuck-at-0;
//! * `SAF/1` vs `TF⟨↓⟩` from a worn initial 1 — a cell that cannot fall
//!   and already holds 1 is pinned at 1.
//!
//! The matrix also pins each march's blind spots: March C- (no
//! retention delays, one read per element visit) misses DRF and the
//! stuck-open fault, and IFA-9 misses stuck-open — IFA-13's
//! read-after-write elements are what make SOF uniquely classifiable,
//! which is exactly why the paper's tool generates an IFA march.

use bisram_bist::march::{self, MarchTest};
use bisram_diag::{diagnose, validate, DiagnosisConfig};
use bisram_mem::{ArrayOrg, CellIndex, Fault, FaultClass, FaultKind, SramModel};

fn org() -> ArrayOrg {
    ArrayOrg::new(256, 8, 4, 4).expect("valid org")
}

/// The fixed victim every single-fault injection uses.
fn victim(o: &ArrayOrg) -> CellIndex {
    o.cell_at(11, 2, 3)
}

/// Coupling aggressor placements: same word (intra-word probe path) and
/// a different row (group-probe binary-search path).
fn couplings(o: &ArrayOrg) -> Vec<FaultKind> {
    let same_word = o.cell_at(11, 2, 6);
    let other_row = o.cell_at(40, 1, 3);
    vec![
        FaultKind::CouplingInv { aggressor: same_word, rising: true },
        FaultKind::CouplingInv { aggressor: other_row, rising: false },
        FaultKind::CouplingIdem { aggressor: same_word, rising: true, forced: false },
        FaultKind::CouplingIdem { aggressor: other_row, rising: false, forced: true },
        FaultKind::StateCoupling { aggressor: same_word, state: true, forced: false },
        FaultKind::StateCoupling { aggressor: other_row, state: false, forced: true },
    ]
}

/// Injects `kind` alone and diagnoses under `test`.
fn run(kind: FaultKind, test: MarchTest) -> (SramModel, bisram_diag::MacroDiagnosis) {
    let o = org();
    let mut m = SramModel::new(o);
    m.inject(Fault::new(victim(&o), kind));
    let d = diagnose(&mut m, &DiagnosisConfig::new(test));
    (m, d)
}

/// The golden candidate set for each non-coupling kind under a march
/// that detects it. Identical for IFA-13, March C- and IFA-9 wherever
/// the kind is detected at all.
fn golden_candidates(kind: FaultKind) -> Vec<FaultKind> {
    match kind {
        FaultKind::StuckAt(false) | FaultKind::TransitionUp => {
            vec![FaultKind::StuckAt(false), FaultKind::TransitionUp]
        }
        FaultKind::StuckAt(true) => {
            vec![FaultKind::StuckAt(true), FaultKind::TransitionDown]
        }
        other => vec![other],
    }
}

const NON_COUPLING: [FaultKind; 7] = [
    FaultKind::StuckAt(false),
    FaultKind::StuckAt(true),
    FaultKind::TransitionUp,
    FaultKind::TransitionDown,
    FaultKind::StuckOpen,
    FaultKind::Retention { leaks_to: false },
    FaultKind::Retention { leaks_to: true },
];

/// Asserts that the diagnosis names exactly the victim, pins the golden
/// candidate set, and survives ground-truth validation.
fn assert_golden(kind: FaultKind, test: MarchTest, expected: &[FaultKind]) {
    let name = test.name().to_owned();
    let (m, d) = run(kind, test);
    let o = org();
    assert_eq!(d.faults.len(), 1, "{name}/{kind}: exactly one suspect");
    let f = &d.faults[0];
    assert_eq!(f.cell, victim(&o), "{name}/{kind}: localized to the victim");
    assert_eq!((f.row, f.col, f.bit), (11, 2, 3), "{name}/{kind}: coords");
    assert_eq!(f.candidates, expected, "{name}/{kind}: candidate set");
    let report = validate(&d.faults, &m);
    assert!(report.is_perfect(), "{name}/{kind}: {report:?}");
}

#[test]
fn ifa13_classifies_every_fault_kind() {
    for kind in NON_COUPLING {
        assert_golden(kind, march::ifa13(), &golden_candidates(kind));
    }
}

#[test]
fn ifa13_recovers_every_coupling_aggressor() {
    // Coupling faults fall through the dictionary to the active probe,
    // which must localize the aggressor cell and recover the subtype
    // parameters exactly — the candidate set is the injected kind alone.
    for kind in couplings(&org()) {
        let (m, d) = run(kind, march::ifa13());
        assert_eq!(d.faults.len(), 1, "{kind}: exactly one suspect");
        assert_eq!(d.faults[0].candidates, vec![kind], "{kind}: exact recovery");
        assert!(d.probe_writes > 0, "{kind}: resolved by probing, not guessing");
        assert!(validate(&d.faults, &m).is_perfect(), "{kind}");
    }
}

#[test]
fn march_c_minus_matrix_with_pinned_blind_spots() {
    for kind in NON_COUPLING {
        match kind {
            // March C- has no retention delays, and its single-read
            // element visits re-arm the sense amplifier at every
            // address, so a stuck-open cell echoes the right value.
            // Undetected is the honest golden outcome — never a
            // misclassification.
            FaultKind::StuckOpen | FaultKind::Retention { .. } => {
                let (_, d) = run(kind, march::march_c_minus());
                assert!(d.faults.is_empty(), "{kind}: March C- blind spot");
            }
            detected => {
                assert_golden(detected, march::march_c_minus(), &golden_candidates(detected));
            }
        }
    }
    // Coupling aggressors still resolve exactly (probing is march-
    // independent once the suspect is named).
    for kind in couplings(&org()) {
        let (m, d) = run(kind, march::march_c_minus());
        assert_eq!(d.faults[0].candidates, vec![kind], "{kind}");
        assert!(validate(&d.faults, &m).is_perfect(), "{kind}");
    }
}

#[test]
fn ifa9_reports_ambiguity_as_a_candidate_set_not_a_guess() {
    // Both members of each indistinguishable pair must produce the SAME
    // two-candidate set — the diagnosis refuses to pick a winner.
    for kind in [FaultKind::StuckAt(false), FaultKind::TransitionUp] {
        let (_, d) = run(kind, march::ifa9());
        let f = &d.faults[0];
        assert!(!f.is_exact(), "{kind}: must not guess");
        assert_eq!(
            f.candidates,
            vec![FaultKind::StuckAt(false), FaultKind::TransitionUp],
            "{kind}"
        );
        assert_eq!(f.classes(), vec![FaultClass::Saf, FaultClass::Tf], "{kind}");
    }
    // IFA-9 detects retention faults (it has the two delays) but not
    // stuck-open; IFA-13 pins SOF exactly. This gap is the reason the
    // generated BIST prefers the 13-operation IFA march for diagnosis.
    let (_, d9) = run(FaultKind::StuckOpen, march::ifa9());
    assert!(d9.faults.is_empty(), "IFA-9 cannot sensitize SOF");
    let (_, d13) = run(FaultKind::StuckOpen, march::ifa13());
    assert_eq!(d13.faults[0].candidates, vec![FaultKind::StuckOpen]);
    for leaks_to in [false, true] {
        let kind = FaultKind::Retention { leaks_to };
        assert_golden(kind, march::ifa9(), &golden_candidates(kind));
    }
}

#[test]
fn multi_fault_population_validates_perfectly_under_ifa13() {
    // Several independent faults in distinct words: each must still be
    // localized and classified, with no cross-talk between suspects.
    let o = org();
    let mut m = SramModel::new(o);
    let plant = [
        (o.cell_at(2, 0, 1), FaultKind::StuckAt(true)),
        (o.cell_at(17, 3, 6), FaultKind::TransitionDown),
        (o.cell_at(33, 1, 0), FaultKind::StuckOpen),
        (o.cell_at(48, 2, 4), FaultKind::Retention { leaks_to: true }),
    ];
    for (cell, kind) in plant {
        m.inject(Fault::new(cell, kind));
    }
    let d = diagnose(&mut m, &DiagnosisConfig::new(march::ifa13()));
    assert_eq!(d.faults.len(), plant.len());
    let report = validate(&d.faults, &m);
    assert!(report.is_perfect(), "{report:?}");
    for (cell, kind) in plant {
        let f = d.faults.iter().find(|f| f.cell == cell).expect("cell named");
        assert!(f.candidates.contains(&kind), "{kind}: {:?}", f.candidates);
    }
}
