//! End-to-end integration: compile a RAM, damage it, self-test,
//! self-repair, and use the repaired memory — the full life of a
//! BISRAMGEN part.

use bisram_bist::engine::{run_march, MarchConfig};
use bisram_bist::march;
use bisram_bist::trpla::ControllerSim;
use bisram_bist::{IdentityMap, RowMap};
use bisram_mem::{random_faults, row_failure, FaultMix, Word};
use bisram_repair::flow::{self, RepairOutcome, RepairSetup};
use bisram_repair::Tlb;
use bisramgen::{compile, RamParams};
use bisram_rng::rngs::StdRng;
use bisram_rng::SeedableRng;

fn compiled() -> bisramgen::CompiledRam {
    let params = RamParams::builder()
        .words(512)
        .bits_per_word(16)
        .bits_per_column(4)
        .spare_rows(4)
        .build()
        .expect("valid parameters");
    compile(&params).expect("compiles")
}

#[test]
fn manufactured_good_part_passes_self_test() {
    let ram = compiled();
    let mut memory = ram.behavioural_model();
    let report = flow::self_test_and_repair(&mut memory, &RepairSetup::default());
    assert_eq!(report.outcome, RepairOutcome::AlreadyGood);
}

#[test]
fn damaged_part_repairs_and_then_behaves_fault_free() {
    let ram = compiled();
    let org = *ram.params().org();
    let mut memory = ram.behavioural_model();
    // A word-line failure plus two random cell defects.
    memory.inject_all(row_failure(&org, 40, true));
    let mut rng = StdRng::seed_from_u64(99);
    memory.inject_all(random_faults(&mut rng, &org, 2, &FaultMix::stuck_at_only()));

    let report = flow::self_test_and_repair(&mut memory, &RepairSetup::default());
    assert!(report.outcome.is_repaired(), "outcome: {:?}", report.outcome);

    // The repaired part must behave like a fault-free memory through the
    // TLB: write/read every word with two patterns.
    let tlb = &report.tlb;
    for addr in 0..org.words() {
        let (row, col) = org.split(addr);
        let phys = tlb.map_row(row);
        let pattern = Word::from_u64((addr as u64).wrapping_mul(0x9E37) & 0xFFFF, 16);
        memory.write_word_at(phys, col, pattern.clone());
        assert_eq!(memory.read_word_at(phys, col), pattern, "addr {addr}");
    }
    // And a whole IFA-9 run through the map stays clean.
    let verify = run_march(&march::ifa9(), &mut memory, &MarchConfig::default(), Some(tlb));
    assert!(!verify.detected());
}

#[test]
fn microprogrammed_controller_reaches_the_same_verdict_as_the_flow() {
    // The TRPLA-driven cycle-accurate controller and the functional
    // two-pass flow must agree: same captured rows, and the controller's
    // pass 2 succeeds through the TLB the captures built.
    let ram = compiled();
    let org = *ram.params().org();

    let mut functional = ram.behavioural_model();
    functional.inject_all(row_failure(&org, 7, true));
    let report = flow::self_test_and_repair(&mut functional, &RepairSetup::default());
    assert!(report.outcome.is_repaired());

    let mut hardware = ram.behavioural_model();
    hardware.inject_all(row_failure(&org, 7, true));
    let mut tlb = Tlb::new(org.rows(), org.spare_rows());
    let sim = ControllerSim::new(ram.control_program(), org.bpw());
    // First, captures land in the TLB...
    let outcome = sim.run(&mut hardware, &tlb.clone(), |row| {
        tlb.capture(row).expect("spares available");
    });
    // ...but the mapping used during that same run was the (stale)
    // initial TLB, so run once more with the programmed TLB, as the
    // 2k-pass hardware iteration does.
    assert_eq!(outcome.captured_rows, report.pass1_faulty_rows);
    let mut hardware = ram.behavioural_model();
    hardware.inject_all(row_failure(&org, 7, true));
    let second = sim.run(&mut hardware, &tlb, |_| {});
    assert!(
        !second.repair_unsuccessful,
        "controller pass through the programmed TLB must be clean"
    );
    assert_eq!(tlb.map_row(7), org.rows(), "row 7 -> first spare");
}

#[test]
fn controller_without_mapping_raises_repair_unsuccessful() {
    let ram = compiled();
    let org = *ram.params().org();
    let mut memory = ram.behavioural_model();
    memory.inject_all(row_failure(&org, 3, true));
    let sim = ControllerSim::new(ram.control_program(), org.bpw());
    let outcome = sim.run(&mut memory, &IdentityMap, |_| {});
    assert!(outcome.repair_unsuccessful);
    assert_eq!(outcome.captured_rows, vec![3]);
}

#[test]
fn compiled_outputs_are_mutually_consistent() {
    let ram = compiled();
    // The datasheet's TLB delay matches the circuit model for the same
    // spares/row-bits.
    let d = ram.datasheet();
    let t = bisram_circuit::campath::tlb_delay(
        ram.params().process(),
        ram.params().org().row_bits(),
        ram.params().org().spare_rows(),
    );
    assert_eq!(d.tlb, t);
    // The control program drives the same march the coverage claims are
    // made for (IFA-9).
    assert!(ram.control_program().name().contains("IFA-9"));
    // The exported planes describe the same PLA the layout was built
    // from.
    let (and_s, or_s) = ram.pla_planes();
    let parsed = bisram_bist::trpla::Pla::import_planes(&and_s, &or_s).expect("parses");
    assert_eq!(&parsed, ram.pla());
}

#[test]
fn address_decoder_faults_are_detected_and_row_repaired() {
    // Paper-adjacent extension: decoder faults (AF) act on whole rows,
    // which is exactly the granularity row repair handles. A no-access
    // row floats on the sense amplifiers — row-wide stuck-open
    // behaviour — so, like SOF, it needs IFA-13's read-after-write to
    // be observed (see EXPERIMENTS.md); the aliased pair is visible to
    // IFA-9 as well.
    use bisram_mem::RowFault;

    let ram = compiled();
    let ifa13_setup = RepairSetup {
        test: march::ifa13(),
        ..RepairSetup::default()
    };

    // No-access row: invisible to IFA-9, caught and repaired by IFA-13.
    let mut memory = ram.behavioural_model();
    memory.inject_row_fault(11, RowFault::NoAccess);
    let blind = flow::self_test_and_repair(&mut memory, &RepairSetup::default());
    assert_eq!(blind.outcome, RepairOutcome::AlreadyGood, "IFA-9 is blind to it");
    let mut memory = ram.behavioural_model();
    memory.inject_row_fault(11, RowFault::NoAccess);
    let report = flow::self_test_and_repair(&mut memory, &ifa13_setup);
    assert!(report.outcome.is_repaired(), "{:?}", report.outcome);
    assert!(report.pass1_faulty_rows.contains(&11));

    // Aliased pair: both rows misbehave; the flow may need to map both.
    let mut memory = ram.behavioural_model();
    memory.inject_row_fault(20, RowFault::AliasedWith { other: 33 });
    let report = flow::self_test_and_repair(&mut memory, &RepairSetup::iterated(6));
    assert!(
        report.outcome.is_repaired(),
        "aliased decoder fault: {:?}",
        report.outcome
    );
}
