//! Integration: the wide-word regime (bpw > 64 — multi-limb words, the
//! Fig. 7 configuration family). Narrow-word tests dominate the suite
//! because they are fast; this file makes sure the 128/256-bit paths —
//! word algebra, background schedules, march execution, coupling faults
//! across limb boundaries, repair, transparent BIST — behave identically.

use bisram_bist::engine::{run_march, MarchConfig};
use bisram_bist::march;
use bisram_bist::transparent::run_transparent;
use bisram_bist::{datagen, RowMap};
use bisram_mem::{ArrayOrg, Fault, FaultKind, SramModel, Word};
use bisram_repair::flow::{self, RepairSetup};

fn wide_org() -> ArrayOrg {
    // 64 words of 128 bits, bpc 4 — a miniature Fig. 6-class geometry.
    ArrayOrg::new(64, 128, 4, 4).expect("valid wide geometry")
}

fn wide_word(seed: u64) -> Word {
    Word::from_bits((0..128).map(|i| (seed.wrapping_mul(i as u64 + 3) >> (i % 7)) & 1 == 1))
}

#[test]
fn wide_words_read_back_exactly() {
    let mut ram = SramModel::new(wide_org());
    let words: Vec<Word> = (0..64).map(|a| wide_word(a as u64 + 17)).collect();
    for (addr, w) in words.iter().enumerate() {
        ram.write_word(addr, w.clone());
    }
    for (addr, w) in words.iter().enumerate() {
        assert_eq!(&ram.read_word(addr), w, "addr {addr}");
    }
}

#[test]
fn background_schedule_has_wide_width_and_distinguishes_cross_limb_pairs() {
    let bgs = datagen::backgrounds(128);
    assert_eq!(bgs.len(), 128 / 2 + 2);
    for b in &bgs {
        assert_eq!(b.len(), 128);
    }
    // Pairs straddling the 64-bit limb boundary must be separated too.
    for (i, j) in [(63usize, 64usize), (0, 127), (62, 65), (64, 127)] {
        assert!(
            bgs.iter().any(|b| b.get(i) != b.get(j)),
            "pair ({i},{j}) never differs"
        );
    }
}

#[test]
fn ifa9_detects_faults_in_high_limbs() {
    // One fault per limb of the word: bits 1, 65, and 127.
    for bit in [1usize, 65, 127] {
        let org = wide_org();
        let mut ram = SramModel::new(org);
        ram.inject(Fault::new(
            org.cell_at(5, 2, bit),
            FaultKind::StuckAt(true),
        ));
        let out = run_march(&march::ifa9(), &mut ram, &MarchConfig::quick(), None);
        assert!(out.detected(), "bit {bit} missed");
    }
}

#[test]
fn cross_limb_state_coupling_needs_johnson_backgrounds() {
    // Aggressor in limb 0, victim in limb 1 of the same word, with the
    // forced value equal to the sensitizing state (the single-background
    // blind spot), exactly as in the narrow-word test — but across the
    // 64-bit storage boundary.
    let build = || {
        let org = wide_org();
        let mut ram = SramModel::new(org);
        let aggressor = org.cell_at(9, 1, 10);
        let victim = org.cell_at(9, 1, 100);
        ram.inject(Fault::new(
            victim,
            FaultKind::StateCoupling {
                aggressor,
                state: true,
                forced: true,
            },
        ));
        ram
    };
    let single = run_march(
        &march::ifa9(),
        &mut build(),
        &MarchConfig {
            schedule: bisram_bist::engine::BackgroundSchedule::Single,
            stop_at_first: false,
        },
        None,
    );
    let johnson = run_march(&march::ifa9(), &mut build(), &MarchConfig::default(), None);
    assert!(!single.detected(), "single background must be blind");
    assert!(johnson.detected(), "johnson schedule must expose it");
}

#[test]
fn wide_word_repair_flow_round_trips() {
    let org = wide_org();
    let mut ram = SramModel::new(org);
    ram.inject(Fault::new(org.cell_at(3, 0, 90), FaultKind::StuckAt(false)));
    ram.inject(Fault::new(org.cell_at(12, 3, 127), FaultKind::TransitionUp));
    let report = flow::self_test_and_repair(&mut ram, &RepairSetup::default());
    assert!(report.outcome.is_repaired(), "{:?}", report.outcome);

    // The repaired memory holds arbitrary 128-bit data through the TLB.
    for addr in 0..org.words() {
        let (row, col) = org.split(addr);
        let phys = report.tlb.map_row(row);
        let w = wide_word(addr as u64 * 31 + 7);
        ram.write_word_at(phys, col, w.clone());
        assert_eq!(ram.read_word_at(phys, col), w, "addr {addr}");
    }
}

#[test]
fn transparent_bist_preserves_wide_contents() {
    let org = wide_org();
    let mut ram = SramModel::new(org);
    let contents: Vec<Word> = (0..org.words())
        .map(|a| {
            let w = wide_word(a as u64 + 1000);
            ram.write_word(a, w.clone());
            w
        })
        .collect();
    let outcome = run_transparent(&march::march_c_minus(), &mut ram, None);
    assert!(!outcome.detected());
    for (addr, w) in contents.iter().enumerate() {
        assert_eq!(&ram.read_word(addr), w, "addr {addr} clobbered");
    }
}
