//! Integration: the BIST claims of paper §V measured end-to-end —
//! microprogrammed controller, Johnson backgrounds, comparator — against
//! the fault classes of the memory model.

use bisram_bist::coverage;
use bisram_bist::engine::{run_march, BackgroundSchedule, MarchConfig};
use bisram_bist::march;
use bisram_bist::trpla::{assemble, ControllerSim};
use bisram_bist::IdentityMap;
use bisram_mem::{random_faults, ArrayOrg, FaultClass, FaultMix, SramModel};
use bisram_rng::rngs::StdRng;
use bisram_rng::SeedableRng;

fn org() -> ArrayOrg {
    ArrayOrg::new(128, 8, 4, 0).expect("valid")
}

#[test]
fn ifa9_covers_the_paper_classes() {
    // SAF, TF, CF (all three), DRF at 100% with the Johnson schedule.
    let mut rng = StdRng::seed_from_u64(5);
    let report = coverage::measure(&mut rng, org(), &march::ifa9(), true, 30, true);
    for class in [
        FaultClass::Saf,
        FaultClass::Tf,
        FaultClass::CfIn,
        FaultClass::CfId,
        FaultClass::CfSt,
        FaultClass::Drf,
    ] {
        assert_eq!(
            report.class(class).expect("measured").fraction(),
            1.0,
            "IFA-9 must fully cover {class}"
        );
    }
}

#[test]
fn background_count_scales_as_the_paper_says() {
    // §V: bpw/2-ish backgrounds instead of log2(bpw)-many — more time,
    // less hardware. Verify the schedule length and the resulting
    // operation count scale.
    let mut ram = SramModel::new(ArrayOrg::new(64, 16, 4, 0).unwrap());
    let out = run_march(&march::ifa9(), &mut ram, &MarchConfig::default(), None);
    assert_eq!(out.backgrounds_run(), 16 / 2 + 2);
    let expected_ops = (16 / 2 + 2) as u64 * march::ifa9().operation_count(64);
    assert_eq!(out.reads() + out.writes(), expected_ops);
}

#[test]
fn controller_and_engine_agree_over_random_fault_soups() {
    // For many random multi-fault memories, the TRPLA-driven controller
    // captures exactly the rows the functional engine reports faulty.
    let program = assemble(&march::ifa9());
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let faults = random_faults(&mut rng, &org(), 5, &FaultMix::default());

        let mut m1 = SramModel::new(org());
        m1.inject_all(faults.clone());
        let functional = run_march(&march::ifa9(), &mut m1, &MarchConfig::default(), None);

        let mut m2 = SramModel::new(org());
        m2.inject_all(faults);
        let sim = ControllerSim::new(&program, org().bpw());
        let outcome = sim.run(&mut m2, &IdentityMap, |_| {});

        // The controller captures in sweep order (descending during down
        // elements); compare as sets.
        let mut captured = outcome.captured_rows.clone();
        captured.sort_unstable();
        assert_eq!(functional.faulty_rows(), captured, "seed {seed}");
    }
}

#[test]
fn single_background_equals_johnson_on_inter_word_faults() {
    // The schedules only differ for intra-word couplings: over a
    // stuck-at-only soup both must detect everything.
    let mut rng = StdRng::seed_from_u64(3);
    let faults = random_faults(&mut rng, &org(), 10, &FaultMix::stuck_at_only());
    for schedule in [BackgroundSchedule::Single, BackgroundSchedule::Johnson] {
        let mut m = SramModel::new(org());
        m.inject_all(faults.clone());
        let config = MarchConfig {
            schedule,
            stop_at_first: false,
        };
        let out = run_march(&march::ifa9(), &mut m, &config, None);
        assert!(out.detected());
    }
}

#[test]
fn test_time_cost_of_the_johnson_schedule_is_linear_in_word_width() {
    // The paper accepts "a greater test application time" for the
    // smaller generator; measure it: ops grow ~linearly in bpw through
    // the background count.
    let ops = |bpw: usize| {
        let mut ram = SramModel::new(ArrayOrg::new(64, bpw, 4, 0).unwrap());
        let out = run_march(&march::ifa9(), &mut ram, &MarchConfig::default(), None);
        out.reads() + out.writes()
    };
    let o8 = ops(8);
    let o32 = ops(32);
    // backgrounds: 6 vs 18 -> 3x the operations.
    assert_eq!(o32, o8 * 3);
}
