//! Integration: the analytic yield/repairability models against
//! Monte-Carlo fault injection through the real BIST + BISR machinery.

use bisram_mem::ArrayOrg;
use bisram_yield::montecarlo::{self, MonteCarloYield};
use bisram_yield::repairability::{repair_probability, repair_probability_clustered, YieldModel};
use bisram_yield::stapper;
use bisram_rng::rngs::StdRng;
use bisram_rng::SeedableRng;

fn org(spares: usize) -> ArrayOrg {
    ArrayOrg::new(512, 8, 4, spares).expect("valid")
}

#[test]
fn analytic_and_empirical_repairability_agree_across_defect_counts() {
    for (seed, defects) in [(1u64, 1.0f64), (2, 3.0), (3, 6.0)] {
        let o = org(4);
        let mut rng = StdRng::seed_from_u64(seed);
        let mc: MonteCarloYield = montecarlo::simulate_yield(&mut rng, o, defects, 250, None);
        let analytic = repair_probability(&o, defects);
        let empirical = mc.usable_fraction();
        assert!(
            (empirical - analytic).abs() < 0.09,
            "defects {defects}: empirical {empirical:.3} vs analytic {analytic:.3}"
        );
    }
}

#[test]
fn bisr_multiplies_usable_dies_in_the_interesting_regime() {
    // Around 2-6 defects the nonredundant yield has collapsed but the
    // BISR'ed yield holds — the production-economics core of the paper.
    let o = org(4);
    let mut rng = StdRng::seed_from_u64(7);
    let mc = montecarlo::simulate_yield(&mut rng, o, 3.0, 300, None);
    assert!(
        mc.usable_fraction() > 2.0 * mc.good_fraction(),
        "usable {:.3} should at least double the born-good {:.3}",
        mc.usable_fraction(),
        mc.good_fraction()
    );
}

#[test]
fn clustered_monte_carlo_tracks_the_clustered_analytic_model() {
    let o = org(4);
    let alpha = 2.0;
    let defects = 5.0;
    let mut rng = StdRng::seed_from_u64(11);
    let mc = montecarlo::simulate_yield(&mut rng, o, defects, 300, Some(alpha));
    let analytic = repair_probability_clustered(&o, defects, alpha);
    assert!(
        (mc.usable_fraction() - analytic).abs() < 0.09,
        "clustered: empirical {:.3} vs analytic {:.3}",
        mc.usable_fraction(),
        analytic
    );
}

#[test]
fn born_good_fraction_tracks_the_stapper_baseline() {
    // Without clustering, the born-good fraction follows the Poisson
    // yield; with clustering, the Stapper yield.
    let o = org(0);
    let defects = 2.0;
    let mut rng = StdRng::seed_from_u64(21);
    let poisson_mc = montecarlo::simulate_yield(&mut rng, o, defects, 400, None);
    let expect = stapper::poisson_yield(defects);
    assert!(
        (poisson_mc.good_fraction() - expect).abs() < 0.07,
        "poisson: {:.3} vs {:.3}",
        poisson_mc.good_fraction(),
        expect
    );

    let mut rng = StdRng::seed_from_u64(22);
    let clustered_mc = montecarlo::simulate_yield(&mut rng, o, defects, 400, Some(1.0));
    let expect = stapper::stapper_yield(defects, 1.0);
    assert!(
        (clustered_mc.good_fraction() - expect).abs() < 0.07,
        "stapper: {:.3} vs {:.3}",
        clustered_mc.good_fraction(),
        expect
    );
}

#[test]
fn fig4_model_is_internally_consistent_with_its_pieces() {
    let model = YieldModel::new(org(4), 0.05);
    // At zero defects everything is unity.
    assert!((model.yield_with_bisr(0.0) - 1.0).abs() < 1e-9);
    assert!((model.yield_without_bisr(0.0) - 1.0).abs() < 1e-12);
    // The BISR yield is bounded by the clustered repairability of the
    // array alone (the circuitry factor can only lower it).
    let n = 6.0;
    let array_only = repair_probability_clustered(&org(4), n * model.growth_factor * (model.growth_factor - model.overhead_fraction) / model.growth_factor, model.alpha);
    assert!(model.yield_with_bisr(n) <= array_only + 1e-9);
}
